"""Ablation: cache-scale invariance (the DESIGN.md §2 substitution)."""

from repro.analysis import ablation_cache_scale


def test_ablation_cache_scale(benchmark, record_experiment):
    result = benchmark.pedantic(ablation_cache_scale, rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
