"""Ablation: per-tuple engine instruction-mix sensitivity."""

from repro.analysis import ablation_instruction_mix


def test_ablation_instruction_mix(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: ablation_instruction_mix(lab),
                                rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
