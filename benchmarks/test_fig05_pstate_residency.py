"""Figure 5: query-count distribution over top-P-state residency (EIST on)."""

from repro.analysis import fig05


def test_fig05_pstate_residency(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: fig05(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
