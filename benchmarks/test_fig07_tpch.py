"""Figure 7: Active-energy breakdown of TPC-H Q1-Q22 x 3 engines."""

from repro.analysis import fig07


def test_fig07_tpch(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: fig07(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
