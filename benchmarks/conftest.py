"""Benchmark harness plumbing.

One benchmark module per paper table/figure (DESIGN.md §4).  Each runs
its experiment once through pytest-benchmark (the timing is the cost of
regenerating the artefact), asserts the DESIGN.md §5 shape checks, and
records the regenerated table so it is printed in the terminal summary
and written under ``benchmarks/results/``.

The shared Lab uses a 16x-scaled machine and the 100MB-tier dataset;
see DESIGN.md §2 for why scaling caches and data together preserves the
paper's regimes.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import Lab, LabConfig

_RESULTS: list = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def lab() -> Lab:
    return Lab(LabConfig(scale=16, tier="100MB"))


@pytest.fixture(scope="session")
def record_experiment():
    """Record an ExperimentResult for the terminal summary + results/."""

    def _record(result):
        from repro.analysis import experiment_to_svg

        _RESULTS.append(result)
        _RESULTS_DIR.mkdir(exist_ok=True)
        status = "PASS" if result.all_checks_pass else (
            f"FAIL: {', '.join(result.failed_checks())}"
        )
        path = _RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(
            f"{result.title}\nshape checks: {status}\n\n{result.text}\n"
        )
        svg = experiment_to_svg(result)
        if svg is not None:
            (_RESULTS_DIR / f"{result.experiment_id}.svg").write_text(svg)
        return result

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("REGENERATED PAPER TABLES AND FIGURES")
    write("=" * 78)
    for result in _RESULTS:
        status = "PASS" if result.all_checks_pass else (
            "FAIL: " + ", ".join(result.failed_checks())
        )
        write("")
        write("-" * 78)
        write(f"[{result.experiment_id}] {result.title}   (shape checks: {status})")
        write("-" * 78)
        for line in result.text.splitlines():
            write(line)
