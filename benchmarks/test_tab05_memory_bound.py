"""Table 5: B_mem's energy bottleneck across P-states (stall collapses, time doesn't)."""

from repro.analysis import tab05


def test_tab05_memory_bound(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: tab05(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
