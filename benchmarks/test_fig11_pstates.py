"""Figure 11: impact of CPU frequency and voltage on the breakdown."""

from repro.analysis import fig11


def test_fig11_pstates(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: fig11(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
