"""Table 1: runtime behaviour of the micro-benchmarks (BLI, miss rates, IPC)."""

from repro.analysis import tab01


def test_tab01_microbench_behaviour(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: tab01(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
