"""Ablation: verification accuracy vs measurement noise."""

from repro.analysis import ablation_noise


def test_ablation_noise(benchmark, record_experiment):
    result = benchmark.pedantic(ablation_noise, rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
