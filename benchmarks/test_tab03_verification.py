"""Table 3: verification accuracy of the calibrated dE_m (paper avg 93.47%)."""

from repro.analysis import tab03


def test_tab03_verification(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: tab03(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
