"""Figure 8: impact of data size (100MB/500MB/1GB tiers) on the breakdown."""

from repro.analysis import fig08


def test_fig08_data_size(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: fig08(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
