"""Table 2: per-micro-operation energy at P-states 36/24/12."""

from repro.analysis import tab02


def test_tab02_delta_e(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: tab02(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
