"""Figure 13: DTCM proof-of-concept on ARM1176JZF-S (energy saving + perf gain)."""

from repro.analysis import fig13


def test_fig13_tcm_poc(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: fig13(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
