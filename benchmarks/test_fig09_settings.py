"""Figure 9: impact of the Table 4 knob settings (small/baseline/large)."""

from repro.analysis import fig09


def test_fig09_settings(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: fig09(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
