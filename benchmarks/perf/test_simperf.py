"""Simulator-throughput benchmarks (``repro bench`` primitives).

Unlike the figure benchmarks one directory up — which time how long it
takes to *regenerate a paper artefact* — these time the simulator
itself: micro-ops simulated per wall-clock second in each execution
mode.  They wrap the same primitives ``repro bench`` uses
(repro.bench), so numbers here line up with ``BENCH_simperf.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/perf -q

Every comparison benchmark also asserts the batched executor's
equivalence contract: identical PMU counters against the reference
path for the measured workload.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    _cold_scan_mops,
    _compare,
    _row_load_run_mops,
    _warm_scan_mops,
)

WARM_REPS = 60
COLD_REPS = 1
ROWS = 20_000


@pytest.mark.parametrize("mode", ("reference", "batched"))
def test_warm_scan_throughput(benchmark, mode):
    """Steady-state L1D-resident sequential scan (the fig07/fig08 hot loop)."""
    rate, _ = benchmark.pedantic(
        lambda: _warm_scan_mops(mode, WARM_REPS), rounds=1, iterations=1
    )
    benchmark.extra_info["mops_per_s"] = round(rate / 1e6, 2)
    assert rate > 0


@pytest.mark.parametrize("mode", ("reference", "batched"))
def test_cold_stream_throughput(benchmark, mode):
    """DRAM-streaming scan: every line misses all levels (worst case)."""
    rate, _ = benchmark.pedantic(
        lambda: _cold_scan_mops(mode, COLD_REPS), rounds=1, iterations=1
    )
    benchmark.extra_info["mops_per_s"] = round(rate / 1e6, 2)
    assert rate > 0


@pytest.mark.parametrize("mode", ("reference", "batched"))
def test_row_load_run_throughput(benchmark, mode):
    """The repro.db seq_scan row shape: one short load_run per row."""
    rate, _ = benchmark.pedantic(
        lambda: _row_load_run_mops(mode, ROWS), rounds=1, iterations=1
    )
    benchmark.extra_info["mops_per_s"] = round(rate / 1e6, 2)
    assert rate > 0


def test_batched_scan_is_faster_and_exact(benchmark):
    """The acceptance property: the batched scan path is dramatically
    faster than reference with bit-identical counters."""
    result = benchmark.pedantic(
        lambda: _compare(_warm_scan_mops, WARM_REPS), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    assert result["counters_identical"]
    assert result["speedup"] >= 5.0
