"""Figure 6: Active-energy breakdown of the 7 basic query operations x 3 engines."""

from repro.analysis import fig06


def test_fig06_basic_ops(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: fig06(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
