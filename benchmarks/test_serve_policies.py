"""Serving-policy comparison: locality batching vs FIFO vs SJF.

A cache-thrashing mix (clients cycling scans over lineitem, orders and
partsupp with a 16-frame buffer pool) is served under each scheduling
policy.  Interleaving tables FIFO-style forces lineitem's 51-page pass
to evict the small tables between every visit; batching by hot table
keeps them resident, so locality must come in at or below FIFO on
energy per query.  The whole run is simulated and seeded, so the
numbers are exact and reproducible.
"""

from repro.analysis.experiments import ExperimentResult
from repro.serve import ServeConfig, run_serve

POLICIES = ("fifo", "sjf", "locality")


def _config(policy: str) -> ServeConfig:
    return ServeConfig(
        workload="thrash",
        policy=policy,
        mode="open",
        rate_qps=5000.0,
        clients=6,
        queries=18,
        tenants=2,
        cores=1,
        mpl=1,
        seed=7,
        tier="100MB",
        setting="small",  # 16-frame pool: the paper's cache-pressure regime
    )


def serve_policies_experiment() -> ExperimentResult:
    reports = {policy: run_serve(_config(policy)) for policy in POLICIES}
    epq = {p: r["energy"]["energy_per_query_j"] for p, r in reports.items()}
    mean = {p: r["latency_s"]["mean_s"] for p, r in reports.items()}
    edp = {p: r["energy"]["edp_js"] for p, r in reports.items()}

    lines = [
        f"{'policy':<10} {'J/query':>12} {'mean lat (s)':>13} {'EDP (J*s)':>12}",
    ]
    for policy in POLICIES:
        lines.append(f"{policy:<10} {epq[policy]:>12.6e} "
                     f"{mean[policy]:>13.6e} {edp[policy]:>12.6e}")
    checks = {
        "locality_epq_le_fifo": epq["locality"] <= epq["fifo"],
        "all_queries_completed": all(
            r["counts"]["completed"] == r["counts"]["issued"]
            for r in reports.values()
        ),
        "energy_attribution_balances": all(
            abs(r["energy"]["check_sum_j"] - r["energy"]["total_active_j"])
            <= 1e-12 * r["energy"]["total_active_j"]
            for r in reports.values()
        ),
    }
    return ExperimentResult(
        experiment_id="serve_policies",
        title="Energy per query under serving policies (thrash mix)",
        text="\n".join(lines),
        data={"energy_per_query_j": epq, "mean_latency_s": mean,
              "edp_js": edp},
        checks=checks,
    )


def test_serve_policies(benchmark, record_experiment):
    result = benchmark.pedantic(serve_policies_experiment,
                                rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
