"""Figure 10: breakdown of the CPU2006-like contrast workloads."""

from repro.analysis import fig10


def test_fig10_cpu2006(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: fig10(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
