"""Ablation: stream prefetcher on/off (see repro.analysis.ablations)."""

from repro.analysis import ablation_prefetcher


def test_ablation_prefetcher(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: ablation_prefetcher(lab),
                                rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
