"""§7 future work: energy distribution of an LSM (NoSQL) store."""

from repro.analysis import ext_nosql


def test_ext_nosql(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: ext_nosql(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
