"""§2.3's open question: the energy distribution of write queries."""

from repro.analysis import ext_writes


def test_ext_writes(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: ext_writes(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
