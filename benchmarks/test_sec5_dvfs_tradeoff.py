"""Section 5: DVFS trade-off for index scan vs table scan on PostgreSQL."""

from repro.analysis import sec5


def test_sec5_dvfs_tradeoff(benchmark, lab, record_experiment):
    result = benchmark.pedantic(lambda: sec5(lab), rounds=1, iterations=1)
    record_experiment(result)
    assert result.all_checks_pass, result.failed_checks()
