#!/usr/bin/env python3
"""Run ad-hoc SQL against the instrumented engine and see where the
energy goes, statement by statement.

This is the "downstream user" view of the library: load data once, then
issue SELECTs through the SQL front-end while the profiler attributes
every nanojoule to a micro-operation class.

Run:  python examples/sql_energy.py
"""

from repro import Machine, intel_i7_4790
from repro.core import calibrate, profile_workload, render_breakdown_bar
from repro.db import Database, sqlite_like
from repro.workloads.tpch import TpchData, load_into

STATEMENTS = [
    # a selective scan
    "SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 10",
    # a join + aggregation
    """
    SELECT n_name, SUM(o_totalprice) AS volume
    FROM orders, customer, nation
    WHERE o_custkey = c_custkey AND c_nationkey = n_nationkey
    GROUP BY n_name ORDER BY volume DESC LIMIT 5
    """,
    # a date-ranged revenue query (Q6-shaped)
    """
    SELECT SUM(l_extendedprice * l_discount) AS revenue
    FROM lineitem
    WHERE l_shipdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'
      AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24
    """,
    # string matching + grouping
    """
    SELECT l_shipmode, COUNT(*) AS n
    FROM lineitem WHERE l_shipinstruct LIKE 'DELIVER%'
    GROUP BY l_shipmode ORDER BY n DESC
    """,
]

machine = Machine(intel_i7_4790(scale=16))
print("calibrating the energy model ...")
cal = calibrate(machine)

db = Database(machine, sqlite_like(), name="sqlshell")
load_into(db, TpchData("100MB"))

for text in STATEMENTS:
    sql = " ".join(text.split())
    workload = lambda sql=sql: db.sql(sql)
    rows = workload()  # also serves as warm-up
    profile = profile_workload(
        machine, sql[:40], workload, cal.delta_e, background=cal.background
    )
    b = profile.breakdown
    print(f"\nsql> {sql}")
    for row in rows[:5]:
        print(f"     {row}")
    if len(rows) > 5:
        print(f"     ... ({len(rows)} rows)")
    print(f"     energy {b.active_energy_j:.2e} J over {profile.busy_s:.2e} s"
          f"  |  L1D+store share {b.l1d_share_pct:.1f}%")
    print(f"     {render_breakdown_bar(b)}")
