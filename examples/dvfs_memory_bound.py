#!/usr/bin/env python3
"""The §5 observation: memory-bound work should be downclocked.

Sweeps the P-state for (a) the memory-bound micro-benchmark B_mem and
(b) PostgreSQL's table scan vs index scan, showing that the stall energy
collapses ultra-linearly with frequency while the elapsed time barely
moves when memory latency dominates — the opportunity for a customised
DVFS policy (Table 5 / §5).

Run:  python examples/dvfs_memory_bound.py
"""

from repro import Machine, intel_i7_4790
from repro.core import calibrate, price_counters, profile_workload
from repro.db import Database, postgres_like
from repro.micro import RuntimeConfig, run_microbenchmark
from repro.workloads.basic_ops import run_basic_operation
from repro.workloads.tpch import TpchData, load_into

machine = Machine(intel_i7_4790(scale=16))
pstates = (36, 24, 12)

print("== B_mem: the memory-bound extreme (Table 5) ==")
print(f"{'P-state':>8} {'E_mem%':>8} {'E_stall%':>9} {'E_active (J)':>13} "
      f"{'busy (s)':>10}")
calibrations = {p: calibrate(machine, pstate=p) for p in pstates}
for pstate in pstates:
    cal = calibrations[pstate]
    result = run_microbenchmark(
        machine, "B_mem", background=cal.background,
        runtime=RuntimeConfig(pstate=pstate),
    )
    b = price_counters(result.measurement.counters, cal.delta_e,
                       result.measurement.active_energy_j)
    shares = b.shares_pct()
    print(f"{pstate:>8} {shares['E_mem']:>8.1f} {shares['E_stall']:>9.1f} "
          f"{b.active_energy_j:>13.3e} {result.measurement.busy_s:>10.3e}")

print("\n== PostgreSQL scans: who tolerates downclocking? (§5) ==")
db = Database(machine, postgres_like(), name="pg")
load_into(db, TpchData("500MB"))
for op in ("table_scan", "index_scan"):
    baseline = None
    print(f"\n  {op}:")
    for pstate in (36, 24):
        cal = calibrations[pstate]
        workload = lambda op=op: run_basic_operation(db, op)
        profile = profile_workload(
            machine, f"{op}@P{pstate}", workload, cal.delta_e,
            background=cal.background, pstate=pstate, warmup=workload,
        )
        energy = profile.breakdown.active_energy_j
        if baseline is None:
            baseline = (profile.busy_s, energy)
            print(f"    P{pstate}: t={profile.busy_s:.3e}s  E={energy:.3e}J")
        else:
            time_delta = 100 * (profile.busy_s / baseline[0] - 1)
            energy_delta = 100 * (1 - energy / baseline[1])
            efficiency = 100 * (
                baseline[0] * baseline[1] / (profile.busy_s * energy) - 1
            )
            print(f"    P{pstate}: t={profile.busy_s:.3e}s (+{time_delta:.0f}%)"
                  f"  E={energy:.3e}J (-{energy_delta:.0f}%)"
                  f"  efficiency {efficiency:+.1f}%")
print("\nconclusion: downclock index-intensive (memory-bound) plans; "
      "keep table scans at full speed.")
