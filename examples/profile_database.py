#!/usr/bin/env python3
"""Profile the energy of TPC-H queries on the three engine flavours.

Reproduces the heart of the paper's §3: the L1D cache load/store energy
dominates the Active energy of read queries, across PostgreSQL-,
SQLite-, and MySQL-like engines (Figure 7's finding).

Run:  python examples/profile_database.py [query_number ...]
"""

import sys

from repro import Machine, intel_i7_4790
from repro.core import calibrate, profile_workload, render_breakdown_bar
from repro.db import Database, engine_profile
from repro.workloads.tpch import ALL_QUERY_NUMBERS, TpchData, load_into, run_query

queries = [int(a) for a in sys.argv[1:]] or [1, 3, 6, 13]
for q in queries:
    if q not in ALL_QUERY_NUMBERS:
        raise SystemExit(f"Q{q} is not a TPC-H query (1-22)")

machine = Machine(intel_i7_4790(scale=16))
print("calibrating ...")
cal = calibrate(machine)
data = TpchData("100MB")

for engine in ("postgresql", "sqlite", "mysql"):
    db = Database(machine, engine_profile(engine), name=engine)
    load_into(db, data)
    print(f"\n== {engine} ==")
    print("  bar: #=L1D  ==Reg2L1D  +=L2  *=L3  M=mem  p=pf  .=stall  ' '=other")
    for number in queries:
        workload = lambda number=number: run_query(db, number)
        profile = profile_workload(
            machine, f"Q{number}", workload, cal.delta_e,
            background=cal.background, warmup=workload,
        )
        b = profile.breakdown
        print(
            f"  Q{number:<2} {render_breakdown_bar(b)} "
            f"L1D+st {b.l1d_share_pct:4.1f}%  "
            f"movement {b.data_movement_share_pct:4.1f}%  "
            f"E_active {b.active_energy_j:.2e} J"
        )
