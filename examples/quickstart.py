#!/usr/bin/env python3
"""Quickstart: calibrate per-micro-operation energies and verify them.

Reproduces the paper's §2 pipeline end to end on a scaled-down machine:

1. build a simulated i7-4790,
2. run the micro-benchmark set MBS and solve dE_m (Table 2's column),
3. run the verification set VMBS and score the model (Table 3),
4. break one arbitrary workload down along Eq. (1).

Run:  python examples/quickstart.py
"""

from repro import Machine, intel_i7_4790
from repro.core import (
    calibrate,
    profile_workload,
    render_breakdown_bar,
    render_delta_e,
    render_microbench_behaviour,
    render_verification,
    verify,
)

# A 16x-scaled machine keeps this demo to a few seconds; drop scale for
# full-size caches.
machine = Machine(intel_i7_4790(scale=16))

print("== calibrating dE_m from the micro-benchmark set ==")
cal = calibrate(machine)
print(render_microbench_behaviour(cal.results))
print()
print(render_delta_e({cal.pstate: cal.delta_e.nanojoules()}))
print()

print("== verifying against the composite benchmarks ==")
report = verify(machine, cal.delta_e, background=cal.background)
print(render_verification(report))
print()

print("== breaking down an arbitrary workload ==")

# Any callable that drives the machine can be profiled.  Here: a tiny
# pointer-chasing loop mixed with arithmetic.
region = machine.address_space.alloc_lines(4096, "demo")


def demo_workload() -> None:
    for i in range(0, 4096, 3):
        machine.load(region.line(i % 4096), dependent=True)
        machine.add(4)


profile = profile_workload(
    machine, "demo", demo_workload, cal.delta_e, background=cal.background
)
shares = profile.breakdown.shares_pct()
print(f"Active energy: {profile.breakdown.active_energy_j:.2e} J")
print(f"breakdown bar: {render_breakdown_bar(profile.breakdown)}")
for name, share in shares.items():
    print(f"  {name:<10} {share:5.1f}%")
