#!/usr/bin/env python3
"""Define a custom CPU architecture and re-run the paper's methodology.

The README claims the methodology is architecture-agnostic: build a
`MachineConfig` and every layer above (calibration, verification, the
engines, the breakdown) works unchanged.  This example proves it with a
made-up *efficiency core* — narrower issue, smaller caches, lower
voltage, cheaper-but-slower DRAM — and compares its per-micro-op
energies and a TPC-H Q1 breakdown against the i7-4790 preset.

Run:  python examples/custom_architecture.py
"""

from repro import CacheConfig, Machine, MachineConfig, intel_i7_4790
from repro.core import calibrate, profile_workload, render_delta_e
from repro.db import Database, sqlite_like
from repro.sim import (
    BackgroundPower,
    EventCost,
    EventEnergyTable,
    PstateTable,
    TimingConfig,
    VoltageLaw,
)
from repro.workloads.tpch import TpchData, load_into, run_query


def efficiency_core() -> MachineConfig:
    """A little in-orderish core: 2-wide-nothing, tiny caches, 1.8 GHz."""
    return MachineConfig(
        name="little-e-core",
        l1d=CacheConfig(size=8 * 1024, assoc=4),
        l2=CacheConfig(size=64 * 1024, assoc=8),
        l3=CacheConfig(size=1024 * 1024, assoc=8),
        timing=TimingConfig(
            lat_l1=3, lat_l2=10, lat_l3=30, dram_lat_ns=90.0,
            mlp=2,                      # shallow miss overlap
            load_issue=1.0,             # one load per cycle
            store_issue=1.0,
            alu_issue=1.0,
            nop_issue=0.5,
        ),
        pstates=PstateTable(lowest=6, highest=18,
                            law=VoltageLaw(0.55, 1.0 / 6.0)),
        energy_table=EventEnergyTable(
            load_l1d=EventCost(0.0, 0.55),
            store_l1d=EventCost(0.0, 1.00),
            xfer_l2=EventCost(0.1, 1.70),
            xfer_l3=EventCost(2.0, 0.80),
            mem_ctl=EventCost(4.0, 2.00),
            dram_access=EventCost(60.0, 1.50),
            pf_l2=EventCost(1.8, 0.75),
            pf_l3_dram=EventCost(57.0, 1.40),
            stall_cycle=EventCost(0.02, 0.55),
            add=EventCost(0.0, 0.40),
            nop=EventCost(0.0, 0.25),
            mul=EventCost(0.0, 0.75),
            cmp=EventCost(0.0, 0.35),
            branch=EventCost(0.0, 0.45),
            other=EventCost(0.0, 0.40),
        ),
        background=BackgroundPower(core=1.2, package_total=2.2, dram=0.8),
    )


def breakdown_of_q1(machine: Machine, label: str) -> None:
    cal = calibrate(machine)
    print(render_delta_e({cal.pstate: cal.delta_e.nanojoules()}))
    db = Database(machine, sqlite_like(), name=label)
    load_into(db, TpchData("10MB"))
    workload = lambda: run_query(db, 1)
    profile = profile_workload(
        machine, "Q1", workload, cal.delta_e,
        background=cal.background, warmup=workload,
    )
    shares = profile.breakdown.shares_pct()
    print(f"\nTPC-H Q1 on {label}: L1D+store share "
          f"{profile.breakdown.l1d_share_pct:.1f}%  "
          f"(E_active {profile.breakdown.active_energy_j:.2e} J, "
          f"busy {profile.busy_s:.2e} s)")
    for name, share in shares.items():
        print(f"  {name:<10} {share:5.1f}%")


print("==== reference: scaled i7-4790 ====")
breakdown_of_q1(Machine(intel_i7_4790(scale=16)), "i7-4790/16")

print("\n==== custom: little efficiency core ====")
breakdown_of_q1(Machine(efficiency_core()), "little-e-core")

print("\nThe same calibration/verification/profiling pipeline ran on both;"
      "\nonly the MachineConfig changed.")
