#!/usr/bin/env python3
"""The §4 proof-of-concept: SQLite with hot data in ARM DTCM.

Applies the paper's three co-design strategies (database buffer,
sqlite3VdbeExec "special variables", B-tree top layers) to a SQLite-like
engine on the ARM1176JZF-S preset, and reports per-query energy saving
and performance improvement (Figure 13).

Run:  python examples/tcm_poc.py
"""

from repro.tcm import run_poc

print("running the DTCM proof-of-concept (22 TPC-H queries, 10MB tier) ...")
result = run_poc()

print(f"\nDTCM peak saving (B_DTCM_array vs B_L1D_array): "
      f"{result.peak_saving_pct:.1f}%   (paper: 10%)")
print(f"co-design placement: {result.codesign.state_bytes} B of VDBE state, "
      f"{result.codesign.btree_nodes_relocated} B-tree nodes, "
      f"{result.codesign.leaf_nodes_relocated} buffer pages")
print()
print("query   energy saving   perf improvement")
for comparison in result.comparisons:
    print(f"  Q{comparison.number:<4} {comparison.energy_saving_pct:8.2f}%"
          f"       {comparison.perf_improvement_pct:8.2f}%")
print()
print(f"average energy saving:     {result.average_energy_saving_pct:5.2f}%  "
      "(paper: ~6%)")
print(f"average perf improvement:  {result.average_perf_improvement_pct:5.2f}%  "
      "(paper: ~1.5%)")
print(f"fraction of peak achieved: {result.fraction_of_peak_pct:5.0f}%  "
      "(paper: 60%)")
print(f"queries with perf gain:    {result.queries_improved_pct:5.0f}%  "
      "(paper: 64%)")
