"""The simulated machine: CPU + caches + DVFS + RAPL + clock + disk.

This is the single object workloads run against.  It exposes

* the **workload-facing** micro-op API (``load``/``store``/``add``/...),
  delegated to :class:`repro.sim.cpu.Cpu`;
* the **runtime-configuration** knobs the paper tunes in §2.5.3 —
  P-state pinning, EIST on/off, hardware prefetcher on/off (the MSR
  analogue), C-states on/off;
* the **measurement** surface — PMU snapshots, RAPL domain reads,
  wall-clock time, P-state residency.

Energy settling: PMU counters are priced lazily.  Whenever the P-state
changes, the machine idles, or a measurement is read, :meth:`settle`
prices the counter delta since the previous settle at the P-state that
was active in between and advances the wall clock by
``delta_cycles / frequency``.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigError, TransientDiskError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config -> sim)
    from repro.config import MachineConfig
from repro.sim.address_space import AddressSpace
from repro.sim.batch import EXEC_MODES, BatchExecutor, ReferenceExecutor
from repro.sim.cache import CacheLevel
from repro.sim.cpu import Cpu
from repro.sim.disk import DiskModel
from repro.sim.dvfs import EistGovernor, ResidencyRecorder
from repro.sim.energy import RaplCounters
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.pmu import Pmu, PmuCounters
from repro.sim.prefetcher import StreamPrefetcher
from repro.sim.tcm import TcmAllocator

#: How many micro-ops pass between EIST epoch checks (keeps the hot path
#: branch-cheap while bounding governor latency).
_EIST_CHECK_OPS = 256

logger = logging.getLogger(__name__)


@dataclass
class MachineStats:
    """A coherent snapshot of counters, energy, and time."""

    counters: PmuCounters
    energy_core_j: float
    energy_package_j: float
    energy_dram_j: float
    time_s: float
    busy_s: float
    idle_s: float


class Machine:
    """A complete simulated platform built from a :class:`MachineConfig`."""

    def __init__(self, config: "MachineConfig", pstate: Optional[int] = None,
                 seed: int = 0, exec_mode: str = "batched"):
        self.config = config
        self.address_space = AddressSpace()
        self.pmu = Pmu()
        self.rapl = RaplCounters(config.energy_table, config.background)
        self.disk = DiskModel()
        self.residency = ResidencyRecorder()
        self.rng = random.Random(seed)

        l1d = CacheLevel("L1D", config.l1d.size, config.l1d.assoc)
        l2 = (CacheLevel("L2", config.l2.size, config.l2.assoc)
              if config.l2 is not None else None)
        l3 = (CacheLevel("L3", config.l3.size, config.l3.assoc)
              if config.l3 is not None else None)
        self.prefetcher = StreamPrefetcher(
            n_streams=config.prefetcher_streams,
            degree=config.prefetcher_degree,
            l3_extra=config.prefetcher_l3_extra,
        )
        tcm_region = config.tcm.region() if config.tcm is not None else None
        self.tcm = TcmAllocator(tcm_region) if tcm_region is not None else None
        self.hierarchy = MemoryHierarchy(
            l1d=l1d, l2=l2, l3=l3,
            prefetcher=self.prefetcher,
            counters=self.pmu.counters,
            tcm_region=tcm_region,
        )
        self.cpu = Cpu(config.timing, self.hierarchy, self.pmu.counters)

        self.cstates_enabled = False
        self._eist: Optional[EistGovernor] = None
        self._epoch_start_time = 0.0
        self._epoch_busy = 0.0
        self._ops_since_check = 0

        self.time_s = 0.0
        self.busy_s = 0.0
        self.idle_s = 0.0
        self._settled = PmuCounters()

        initial = config.pstates.highest if pstate is None else pstate
        self.pstate = config.pstates.validate(initial)
        self._vf2 = config.pstates.vf2(self.pstate)
        self.cpu.set_frequency(config.pstates.freq_ghz(self.pstate))

        #: Observability: the active span tracer (a no-op by default so
        #: the micro-op path pays nothing) and the metrics registry fed
        #: by component collectors at snapshot time.
        self.tracer = NULL_TRACER
        self.metrics = MetricsRegistry()
        self.metrics.add_collector(self._collect_metrics)
        #: Optional :class:`~repro.obs.timeline.TimelineRecorder` fed a
        #: window-accounting hook whenever simulated time advances.
        #: None (the default) keeps settle/idle at one extra branch.
        self.timeline = None
        #: Optional :class:`~repro.faults.FaultInjector` consulted by
        #: fault-aware components (buffer pools look it up here so
        #: lazily-created pools need no wiring).  None outside chaos runs.
        self.fault_injector = None

        # Re-export the hot-path micro-op methods: workloads call
        # machine.load(...) etc. without an extra attribute hop.
        # (load/store themselves are bound by set_exec_mode: in batched
        # mode they go through a thin wrapper that invalidates the
        # executor's scan-replay memo.)
        self.hot_loads = self.cpu.hot_loads
        self.hot_stores = self.cpu.hot_stores
        self.add = self.cpu.add
        self.nop = self.cpu.nop
        self.mul = self.cpu.mul
        self.cmp = self.cpu.cmp
        self.branch = self.cpu.branch
        self.other = self.cpu.other

        # Run-level execution engine: "batched" inlines whole runs of
        # line accesses (bit-identical counters/energy/clock, see
        # repro.sim.batch); "reference" keeps the per-op model path.
        # scan_lines/load_bytes/store_bytes re-exports follow the mode.
        self._executors = {
            "reference": ReferenceExecutor(self.cpu),
            "batched": BatchExecutor(self.cpu),
        }
        self.set_exec_mode(exec_mode)

    # ------------------------------------------------------------ exec engine

    def set_exec_mode(self, mode: str) -> None:
        """Select the execution engine: ``reference`` or ``batched``."""
        if mode not in EXEC_MODES:
            raise ConfigError(
                f"unknown exec mode {mode!r}; expected one of {EXEC_MODES}"
            )
        self.exec_mode = mode
        ex = self._executors[mode]
        self.exec = ex
        self.scan_lines = ex.scan_lines
        self.load_bytes = ex.load_bytes
        self.store_bytes = ex.store_bytes
        # Direct per-op load/store mutate cache state behind the batched
        # executor's back, so in batched mode they bump the hierarchy's
        # mutation epoch (which invalidates the scan-replay memo).  The
        # reference path stays raw — zero added overhead.
        self._executors["batched"]._scan_memo = None
        if mode == "batched":
            # Single-frame per-op paths: they bump the hierarchy's
            # mutation epoch themselves (which invalidates the
            # scan-replay memo) and inline the L1D-hit fast case.
            self.load = ex.load_one
            self.store = ex.store_one
        else:
            self.load = self.cpu.load
            self.store = self.cpu.store

    # ------------------------------------------------------------ knobs

    def set_pstate(self, pstate: int) -> None:
        """Pin the CPU to a P-state (disables nothing; EIST may move it)."""
        pstate = self.config.pstates.validate(pstate)
        if pstate == self.pstate:
            return
        self.settle()
        self.pstate = pstate
        self._vf2 = self.config.pstates.vf2(pstate)
        self.cpu.set_frequency(self.config.pstates.freq_ghz(pstate))
        if self.timeline is not None:
            self.timeline.note_pstate_switch()

    def enable_eist(self, governor: Optional[EistGovernor] = None) -> None:
        """Turn the DVFS governor on (paper default for real deployments)."""
        self._eist = governor or EistGovernor(table=self.config.pstates)
        self._epoch_start_time = self.time_s
        self._epoch_busy = 0.0
        self._ops_since_check = 0

    def disable_eist(self) -> None:
        self._eist = None

    @property
    def eist_enabled(self) -> bool:
        return self._eist is not None

    def set_prefetcher(self, enabled: bool) -> None:
        """MSR-style hardware prefetcher switch (§2.5.3)."""
        self.prefetcher.enabled = enabled

    def set_cstates(self, enabled: bool) -> None:
        """C-states allow deep idle; the paper disables them to measure
        Background energy (§2.6)."""
        self.cstates_enabled = enabled

    # ------------------------------------------------------------ time/energy

    def settle(self) -> None:
        """Price all un-priced work at the current P-state."""
        delta = self.pmu.counters.minus(self._settled)
        if delta.cycles > 0 or delta.instructions > 0:
            freq_hz = self.cpu.freq_ghz * 1e9
            busy = delta.cycles / freq_hz
            self.rapl.settle_active(delta, self._vf2)
            self.rapl.settle_background(busy)
            self.time_s += busy
            self.busy_s += busy
            self._epoch_busy += busy
            self.residency.record(self.pstate, busy)
            if self.timeline is not None:
                self.timeline.on_advance()
        self._settled = self.pmu.counters.copy()

    def idle(self, seconds: float) -> None:
        """CPU-idle wall-clock time (disk waits, sleeps)."""
        if seconds < 0:
            raise ConfigError("idle seconds must be non-negative")
        self.settle()
        self.time_s += seconds
        self.idle_s += seconds
        self.rapl.settle_background(seconds, deep_idle=self.cstates_enabled)
        self.residency.record(self.pstate, seconds)
        if self.timeline is not None:
            self.timeline.on_advance()
        self._maybe_run_governor()

    def disk_read(self, block: int, nbytes: int) -> None:
        """A synchronous disk read: the CPU idles for the device time.

        An injected transient failure still burned device time; that
        time is charged (inside a ``fault`` span tagged as wasted) and
        the fault re-raised for the caller's retry policy.
        """
        try:
            seconds = self.disk.read_time(block, nbytes)
        except TransientDiskError as fault:
            with self.tracer.span("disk.fault", category="fault",
                                  fault="disk.error", wasted="disk_error"):
                self.idle(fault.elapsed_s)
            raise
        self.idle(seconds)

    def disk_write(self, block: int, nbytes: int) -> None:
        self.idle(self.disk.write_time(block, nbytes))

    def governor_tick(self) -> None:
        """Give the EIST governor a chance to act.  Workload loops call
        this every few thousand operations; it is a no-op when EIST is
        off or the current epoch has not elapsed."""
        self._ops_since_check += 1
        if self._ops_since_check < _EIST_CHECK_OPS:
            return
        self._ops_since_check = 0
        self._maybe_run_governor()

    def _maybe_run_governor(self) -> None:
        if self._eist is None:
            return
        self.settle()
        elapsed = self.time_s - self._epoch_start_time
        if elapsed < self._eist.epoch_seconds:
            return
        busy_fraction = self._epoch_busy / elapsed if elapsed > 0 else 1.0
        new_pstate = self._eist.next_pstate(self.pstate, busy_fraction)
        self._epoch_start_time = self.time_s
        self._epoch_busy = 0.0
        if new_pstate != self.pstate:
            direction = "up" if new_pstate > self.pstate else "down"
            self.metrics.counter(
                "dvfs.governor.transitions", {"direction": direction}
            ).inc()
            logger.debug(
                "EIST transition P%d -> P%d (busy %.0f%%)",
                self.pstate, new_pstate, 100.0 * busy_fraction,
            )
            self.set_pstate(new_pstate)

    # ------------------------------------------------------------ metrics

    def _collect_metrics(self) -> None:
        """Refresh the machine-level gauges from component stat fields.

        Runs only at :meth:`MetricsRegistry.snapshot` time, so the hot
        paths keep their plain-integer stats.
        """
        # Price any outstanding work so clock/RAPL gauges are current.
        self.settle()
        metrics = self.metrics
        hierarchy = self.hierarchy
        for level in (hierarchy.l1d, hierarchy.l2, hierarchy.l3):
            if level is None:
                continue
            labels = {"level": level.name}
            metrics.gauge("cache.hits", labels).set(level.hits)
            metrics.gauge("cache.misses", labels).set(level.misses)
            metrics.gauge("cache.evictions", labels).set(level.evictions)
            metrics.gauge("cache.dirty_evictions", labels).set(
                level.dirty_evictions
            )
            metrics.gauge("cache.hit_rate", labels).set(level.hit_rate())
            metrics.gauge("cache.occupancy_lines", labels).set(
                level.occupancy
            )
        pf = self.prefetcher
        metrics.gauge("prefetcher.streams_trained").set(pf.n_trained)
        metrics.gauge("prefetcher.l2_lines_issued").set(pf.n_pf_l2_issued)
        metrics.gauge("prefetcher.l3_lines_issued").set(pf.n_pf_l3_issued)
        metrics.gauge("dvfs.pstate").set(self.pstate)
        metrics.gauge("dvfs.eist_enabled").set(1.0 if self.eist_enabled else 0.0)
        for pstate, seconds in self.residency.seconds.items():
            metrics.gauge(
                "dvfs.residency_s", {"pstate": f"P{pstate}"}
            ).set(seconds)
        metrics.gauge("clock.time_s").set(self.time_s)
        metrics.gauge("clock.busy_s").set(self.busy_s)
        metrics.gauge("clock.idle_s").set(self.idle_s)
        metrics.gauge("rapl.core_j").set(self.rapl.energy_core())
        metrics.gauge("rapl.package_j").set(self.rapl.energy_package())
        metrics.gauge("rapl.dram_j").set(self.rapl.energy_dram())
        metrics.gauge("disk.reads").set(self.disk.reads)
        metrics.gauge("disk.writes").set(self.disk.writes)
        metrics.gauge("disk.bytes_read").set(self.disk.bytes_read)
        metrics.gauge("disk.bytes_written").set(self.disk.bytes_written)
        metrics.gauge("disk.fault_errors").set(self.disk.fault_errors)
        metrics.gauge("disk.fault_slowdowns").set(self.disk.fault_slowdowns)

    # ------------------------------------------------------------ measurement

    def stats(self) -> MachineStats:
        """Settle and return a coherent snapshot."""
        self.settle()
        return MachineStats(
            counters=self.pmu.snapshot(),
            energy_core_j=self.rapl.energy_core(),
            energy_package_j=self.rapl.energy_package(),
            energy_dram_j=self.rapl.energy_dram(),
            time_s=self.time_s,
            busy_s=self.busy_s,
            idle_s=self.idle_s,
        )

    def measurement_noise_factor(self) -> float:
        """One draw of the multiplicative measurement-noise factor."""
        sigma = self.config.measurement_noise
        if sigma <= 0:
            return 1.0
        return max(0.0, self.rng.gauss(1.0, sigma))

    def reset_measurements(self) -> None:
        """Zero counters, energy, clocks, and residency — keep cache
        contents (a warmed-up machine, the common measurement setup)."""
        self.settle()
        self.pmu.reset()
        self.hierarchy.set_counters(self.pmu.counters)
        self.cpu.set_counters(self.pmu.counters)
        self._settled = PmuCounters()
        self.rapl.reset()
        self.residency.reset()
        self.disk.reset_stats()
        self.time_s = 0.0
        self.busy_s = 0.0
        self.idle_s = 0.0
        self._epoch_start_time = 0.0
        self._epoch_busy = 0.0

    def cold_reset(self) -> None:
        """Like :meth:`reset_measurements` but also flushes every cache."""
        self.reset_measurements()
        self.hierarchy.flush()

    def frequency_ghz(self) -> float:
        return self.cpu.freq_ghz
