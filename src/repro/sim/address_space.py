"""Simulated flat address space with a bump-pointer allocator.

Workloads in this package do not touch real memory through the simulator;
they operate on *simulated addresses*.  The address space hands out
non-overlapping address ranges so that distinct data structures (database
pages, B-tree nodes, temporary buffers, micro-benchmark arrays) map to
distinct cache lines, which is all the cache hierarchy cares about.

Two kinds of regions exist:

* ordinary DRAM-backed regions, served by :class:`AddressSpace.alloc`;
* tightly-coupled-memory (TCM) regions at fixed physical addresses, which
  the memory hierarchy treats specially (see :mod:`repro.sim.tcm`).

Addresses are plain integers.  The allocator aligns every allocation to the
cache line size so that two allocations never share a line unless the
caller asks for sub-line packing explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError

#: Cache line size used throughout the simulator, in bytes.  The paper's
#: i7-4790 uses 64-byte lines and the micro-benchmarks are built around
#: 64-byte items, so this is a module constant rather than a knob.
LINE_SIZE = 64

#: log2(LINE_SIZE); used for fast address -> line-number conversion.
LINE_SHIFT = 6


@dataclass(frozen=True)
class Region:
    """A contiguous allocated address range ``[base, base + size)``."""

    base: int
    size: int
    label: str = ""

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def n_lines(self) -> int:
        """Number of cache lines the region spans (it is line-aligned)."""
        return (self.size + LINE_SIZE - 1) // LINE_SIZE

    def line(self, index: int) -> int:
        """Address of the ``index``-th cache line inside the region."""
        return self.base + index * LINE_SIZE

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    remainder = value % alignment
    if remainder == 0:
        return value
    return value + alignment - remainder


class AddressSpace:
    """Bump-pointer allocator over a simulated physical address range.

    Parameters
    ----------
    size:
        Total DRAM bytes available (default 32 GiB worth of address room;
        nothing is actually allocated, so a large default is free).
    base:
        First usable address.  Kept non-zero so that address 0 never
        aliases a real allocation.
    """

    def __init__(self, size: int = 32 << 30, base: int = 1 << 20):
        if size <= 0:
            raise AllocationError("address space size must be positive")
        self._base = base
        self._limit = base + size
        self._cursor = base
        self._regions: list[Region] = []

    @property
    def bytes_allocated(self) -> int:
        return self._cursor - self._base

    @property
    def regions(self) -> tuple[Region, ...]:
        return tuple(self._regions)

    def alloc(self, size: int, label: str = "") -> Region:
        """Allocate ``size`` bytes, line-aligned.

        Raises :class:`AllocationError` when the space is exhausted —
        which, with the 32 GiB default, signals a workload bug rather
        than genuine memory pressure.
        """
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        base = align_up(self._cursor, LINE_SIZE)
        end = base + align_up(size, LINE_SIZE)
        if end > self._limit:
            raise AllocationError(
                f"address space exhausted: need {size} bytes, "
                f"{self._limit - self._cursor} remain"
            )
        self._cursor = end
        region = Region(base=base, size=size, label=label)
        self._regions.append(region)
        return region

    def alloc_lines(self, n_lines: int, label: str = "") -> Region:
        """Allocate ``n_lines`` whole cache lines."""
        return self.alloc(n_lines * LINE_SIZE, label=label)
