"""P-states, the voltage/frequency law, and an EIST-like governor.

The i7-4790 exposes 29 P-states, numbered by frequency in units of
100 MHz: P-state 36 is 3.6 GHz (highest), P-state 8 is 800 MHz (lowest)
(§2.7).  A P-state is a (frequency, voltage) operating point; the paper
models per-micro-op energy as a function of the point (Table 2) and
samples residency while EIST is on (Figure 5).

The governor here is a plain demand/ondemand policy: every epoch it looks
at the busy fraction and steps the P-state up aggressively on high load
and down gradually on low load — enough to reproduce the paper's
observation that CPU-bound queries sit at P-state 36 almost all the time
while I/O-interleaved ones spread out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class VoltageLaw:
    """Linear V(f) law: ``V = v0 + slope * f_ghz``.

    Defaults give 1.2 V at 3.6 GHz, 1.0 V at 2.4 GHz, 0.8 V at 1.2 GHz —
    the three operating points the paper evaluates.
    """

    v0: float = 0.6
    slope: float = 1.0 / 6.0

    def voltage(self, freq_ghz: float) -> float:
        return self.v0 + self.slope * freq_ghz


@dataclass(frozen=True)
class PstateTable:
    """The set of available P-states for a machine.

    P-state ``p`` runs at ``p * 100 MHz``; valid states span
    ``[lowest, highest]`` inclusive.
    """

    lowest: int = 8
    highest: int = 36
    law: VoltageLaw = field(default_factory=VoltageLaw)

    def __post_init__(self) -> None:
        if self.lowest <= 0 or self.highest < self.lowest:
            raise ConfigError(
                f"invalid P-state range [{self.lowest}, {self.highest}]"
            )

    def validate(self, pstate: int) -> int:
        if not self.lowest <= pstate <= self.highest:
            raise ConfigError(
                f"P-state {pstate} outside [{self.lowest}, {self.highest}]"
            )
        return pstate

    def clamp(self, pstate: int) -> int:
        return max(self.lowest, min(self.highest, pstate))

    def freq_ghz(self, pstate: int) -> float:
        self.validate(pstate)
        return pstate / 10.0

    def voltage(self, pstate: int) -> float:
        return self.law.voltage(self.freq_ghz(pstate))

    def vf2(self, pstate: int, reference: int | None = None) -> float:
        """``(V/Vref)**2`` — the dynamic-energy scale factor of a P-state."""
        ref = self.highest if reference is None else reference
        return (self.voltage(pstate) / self.voltage(ref)) ** 2

    def states(self) -> range:
        return range(self.lowest, self.highest + 1)


@dataclass
class ResidencyRecorder:
    """Accumulates wall-clock seconds spent in each P-state.

    Figure 5 is computed from the *percent of time at P-state 36* per
    query; this recorder provides that as :meth:`fraction_at`.
    """

    seconds: dict[int, float] = field(default_factory=dict)

    def record(self, pstate: int, seconds: float) -> None:
        if seconds < 0:
            raise ConfigError("residency seconds must be non-negative")
        self.seconds[pstate] = self.seconds.get(pstate, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def fraction_at(self, pstate: int) -> float:
        total = self.total
        return self.seconds.get(pstate, 0.0) / total if total else 0.0

    def snapshot(self) -> dict[int, float]:
        """A point-in-time copy (timeline windows diff two of these)."""
        return dict(self.seconds)

    def reset(self) -> None:
        self.seconds.clear()


@dataclass
class EistGovernor:
    """Demand-based DVFS governor (EIST analogue).

    Every ``epoch_seconds`` of simulated time the machine reports the
    busy fraction of the elapsed epoch; the governor answers with the
    next P-state.  High load jumps straight to the highest state (like
    ondemand); low load walks down one step per epoch.

    Fault injection: with an :class:`~repro.faults.FaultInjector` set,
    each epoch may start a *stuck-DVFS* episode — the governor freezes
    at the current P-state for ``dvfs_stuck_epochs`` epochs, modelling
    a firmware/driver hang.  A CPU-bound phase stuck at a low state
    runs slower (more background joules per query); an idle phase stuck
    high wastes dynamic energy — both show up in the energy report.
    """

    table: PstateTable
    epoch_seconds: float = 0.01
    up_threshold: float = 0.80
    down_threshold: float = 0.40
    down_step: int = 4
    #: Optional :class:`~repro.faults.FaultInjector` (chaos runs only).
    injector: object = None
    #: Remaining epochs of the current stuck episode (internal state).
    stuck_epochs_left: int = 0

    def next_pstate(self, current: int, busy_fraction: float) -> int:
        if self.injector is not None:
            if self.stuck_epochs_left > 0:
                self.stuck_epochs_left -= 1
                return current
            if self.injector.dvfs_stuck():
                self.stuck_epochs_left = (
                    self.injector.plan.dvfs_stuck_epochs - 1
                )
                return current
        if busy_fraction >= self.up_threshold:
            return self.table.highest
        if busy_fraction <= self.down_threshold:
            return self.table.clamp(current - self.down_step)
        return self.table.clamp(current)
