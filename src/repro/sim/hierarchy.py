"""Multi-level memory hierarchy with step-by-step replication.

Models the data-movement behaviour of §2.3 / Figure 2:

* a demand load probes L1D, then L2, then L3, then DRAM, and the line is
  *replicated into every level on the way back* (step-by-step replication
  strategy);
* stores are write-back + write-allocate; a store hit dirties the L1D
  line, a (rare) store miss pulls the line in like a load first;
* dirty victims are written back one level down and counted;
* the L2 hardware prefetcher watches **demand-load misses only** and
  stages sequential lines into L2 (from L3) and into L3 (from DRAM),
  per the paper's two countable prefetch kinds.  Store (RFO) misses are
  deliberately *not* fed to the prefetcher: the paper only counts the
  two L2-prefetch kinds, and the modelled streamer does not train on
  write-allocate traffic (see :mod:`repro.sim.prefetcher`).  Both
  execution engines implement this identically — the reference
  :meth:`MemoryHierarchy.store` and the batched
  ``BatchExecutor._store_addrs`` — pinned by
  ``tests/sim/test_hierarchy.py::TestPrefetcher::test_store_misses_do_not_train``;
* an optional TCM region (§4) bypasses the cache hierarchy entirely at
  L1 speed and its own (lower) energy price.

The hierarchy updates the PMU counters; it knows nothing about time or
energy — the CPU model turns service levels into cycles and the RAPL
model turns counters into joules.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.address_space import LINE_SHIFT, Region
from repro.sim.cache import CacheLevel
from repro.sim.pmu import PmuCounters
from repro.sim.prefetcher import StreamPrefetcher

#: Service-level constants returned by :meth:`MemoryHierarchy.load`.
LEVEL_TCM = 0
LEVEL_L1D = 1
LEVEL_L2 = 2
LEVEL_L3 = 3
LEVEL_MEM = 4

LEVEL_NAMES = {
    LEVEL_TCM: "TCM",
    LEVEL_L1D: "L1D",
    LEVEL_L2: "L2",
    LEVEL_L3: "L3",
    LEVEL_MEM: "mem",
}


class MemoryHierarchy:
    """L1D (+ optional L2, L3) over DRAM, plus optional TCM bypass."""

    def __init__(
        self,
        l1d: CacheLevel,
        l2: Optional[CacheLevel],
        l3: Optional[CacheLevel],
        prefetcher: StreamPrefetcher,
        counters: PmuCounters,
        tcm_region: Optional[Region] = None,
    ):
        self.l1d = l1d
        self.l2 = l2
        self.l3 = l3
        self.prefetcher = prefetcher
        self.counters = counters
        self.tcm_region = tcm_region
        #: Bumped by every entry point that can mutate cache/LRU state;
        #: the batched executor's scan-replay memo keys on it (see
        #: repro.sim.batch.BatchExecutor.scan_lines).
        self.mut_epoch = 0

    # ------------------------------------------------------------ helpers

    def set_counters(self, counters: PmuCounters) -> None:
        """Re-point the hierarchy at a fresh counter block (PMU reset)."""
        self.counters = counters

    def in_tcm(self, addr: int) -> bool:
        region = self.tcm_region
        return region is not None and region.contains(addr)

    def flush(self) -> None:
        """Drop all cached lines (a cold start between measurements)."""
        self.mut_epoch += 1
        self.l1d.flush()
        if self.l2 is not None:
            self.l2.flush()
        if self.l3 is not None:
            self.l3.flush()
        self.prefetcher.reset()

    # ------------------------------------------------------------ hot path

    def load(self, addr: int) -> int:
        """Perform one demand load; returns the service LEVEL_* constant."""
        c = self.counters
        tcm = self.tcm_region
        if tcm is not None and tcm.base <= addr < tcm.base + tcm.size:
            c.n_tcm_load += 1
            return LEVEL_TCM
        line = addr >> LINE_SHIFT
        c.n_l1d += 1
        if self.l1d.lookup(line):
            c.l1d_hits += 1
            return LEVEL_L1D
        level = self._fetch_from_below(line)
        self._run_prefetcher(line)
        return level

    def store(self, addr: int) -> bool:
        """Perform one store; returns True when it hit in L1D (or TCM)."""
        c = self.counters
        tcm = self.tcm_region
        if tcm is not None and tcm.base <= addr < tcm.base + tcm.size:
            c.n_tcm_store += 1
            return True
        line = addr >> LINE_SHIFT
        c.n_store += 1
        if self.l1d.lookup(line, write=True):
            c.n_store_l1d_hit += 1
            return True
        # Write-allocate: fetch the line (counted as demand traffic below
        # L1D, like an RFO), then dirty it in L1D.  Deliberately no
        # _run_prefetcher call — the prefetcher trains on demand-load
        # misses only (see the module docstring).
        self._fetch_from_below(line, dirty=True)
        return False

    # ------------------------------------------------------------ internals

    def _fetch_from_below(self, line: int, dirty: bool = False) -> int:
        """Service an L1D miss; fills every level on the way (Figure 2)."""
        c = self.counters
        if self.l2 is not None:
            c.n_l2 += 1
            if self.l2.lookup(line):
                c.l2_hits += 1
                self._fill_l1(line, dirty)
                return LEVEL_L2
        if self.l3 is not None:
            c.n_l3 += 1
            if self.l3.lookup(line):
                c.l3_hits += 1
                self._fill_l2(line)
                self._fill_l1(line, dirty)
                return LEVEL_L3
        c.n_mem += 1
        self._fill_l3(line)
        self._fill_l2(line)
        self._fill_l1(line, dirty)
        return LEVEL_MEM

    def _fill_l1(self, line: int, dirty: bool = False) -> None:
        victim = self.l1d.fill(line, dirty)
        if victim is not None and victim[1]:
            self.counters.n_writeback += 1
            if self.l2 is not None:
                self._fill_l2(victim[0], dirty=True)
            elif self.l3 is not None:
                self._fill_l3(victim[0], dirty=True)
            # else: written straight to DRAM; the writeback counter covers it.

    def _fill_l2(self, line: int, dirty: bool = False) -> None:
        if self.l2 is None:
            return
        victim = self.l2.fill(line, dirty)
        if victim is not None and victim[1]:
            self.counters.n_writeback += 1
            self._fill_l3(victim[0], dirty=True)

    def _fill_l3(self, line: int, dirty: bool = False) -> None:
        if self.l3 is None:
            return
        victim = self.l3.fill(line, dirty)
        if victim is not None and victim[1]:
            self.counters.n_writeback += 1
            # Dirty L3 victims drain to DRAM; counted, not cached.

    def _run_prefetcher(self, miss_line: int) -> None:
        l2_lines, l3_lines = self.prefetcher.observe(miss_line)
        c = self.counters
        for line in l2_lines:
            if self.l2 is not None and not self.l2.contains(line):
                if self.l3 is not None and self.l3.contains(line):
                    c.n_pf_l2 += 1
                    self._fill_l2(line)
                else:
                    # Not on chip yet: fetched from DRAM into L3 (the
                    # paper's "prefetch into L3" kind).
                    c.n_pf_l3 += 1
                    self._fill_l3(line)
        for line in l3_lines:
            if self.l3 is not None and not self.l3.contains(line):
                c.n_pf_l3 += 1
                self._fill_l3(line)
