"""Trace-driven CPU timing model.

The paper's stall analysis (§2.5.1, Figure 3) rests on two execution
behaviours:

* **dependent loads** (list traversal): the address of the next load is
  produced by the previous one, so the pipeline is forced to break — a
  load costs its full load-to-use latency: 1 busy cycle plus
  ``latency - 1`` stall cycles;
* **independent loads** (array traversal): addresses are known up front,
  speculation/out-of-order execution hides the latency, and the i7-4790's
  dual-issue front end retires two loads per cycle with no stall.

This model implements exactly that dichotomy, plus a memory-level-
parallelism (MLP) bound for independent *misses*: an out-of-order window
can only overlap ``mlp`` outstanding misses, so a stream of independent
DRAM misses still exposes ``latency / mlp`` cycles each.  In-order cores
(the ARM1176 preset) use ``mlp = 1``: a miss stalls regardless.

The CPU mutates the shared PMU counter block; energy is priced later from
those counters (see :mod:`repro.sim.energy`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.address_space import LINE_SHIFT, LINE_SIZE
from repro.sim.hierarchy import (
    LEVEL_L1D,
    LEVEL_L2,
    LEVEL_L3,
    LEVEL_MEM,
    LEVEL_TCM,
    MemoryHierarchy,
)
from repro.sim.pmu import PmuCounters


@dataclass(frozen=True)
class TimingConfig:
    """Latency and issue-width parameters of a core.

    Latencies are load-to-use, in core cycles, except DRAM which is in
    nanoseconds (DRAM latency is fixed in wall-clock time, so its cycle
    cost *grows* with frequency — the effect behind Table 5's stall
    behaviour).
    """

    lat_l1: int = 4
    lat_l2: int = 12
    lat_l3: int = 34
    dram_lat_ns: float = 60.0
    lat_tcm: int = 4
    mlp: int = 8
    load_issue: float = 0.5    # dual-issue loads
    store_issue: float = 1.0   # one store port
    alu_issue: float = 0.5
    nop_issue: float = 0.25
    mul_issue: float = 1.0
    cmp_issue: float = 0.5
    branch_issue: float = 1.0
    other_issue: float = 1.0

    def __post_init__(self) -> None:
        if self.mlp < 1:
            raise ConfigError("mlp must be >= 1")
        if min(self.lat_l1, self.lat_l2, self.lat_l3, self.lat_tcm) < 1:
            raise ConfigError("latencies must be >= 1 cycle")


class Cpu:
    """Executes the workload-facing micro-op stream against a hierarchy."""

    def __init__(
        self,
        timing: TimingConfig,
        hierarchy: MemoryHierarchy,
        counters: PmuCounters,
    ):
        self.timing = timing
        self.hierarchy = hierarchy
        self.counters = counters
        self._latency = [0.0] * 5  # indexed by LEVEL_* constants
        self.set_frequency(1.0)

    def set_counters(self, counters: PmuCounters) -> None:
        self.counters = counters

    def set_frequency(self, freq_ghz: float) -> None:
        """Recompute per-level latencies for a new core frequency."""
        if freq_ghz <= 0:
            raise ConfigError("frequency must be positive")
        self.freq_ghz = freq_ghz
        t = self.timing
        self._latency[LEVEL_TCM] = float(t.lat_tcm)
        self._latency[LEVEL_L1D] = float(t.lat_l1)
        self._latency[LEVEL_L2] = float(t.lat_l2)
        self._latency[LEVEL_L3] = float(t.lat_l3)
        self._latency[LEVEL_MEM] = t.lat_l3 + t.dram_lat_ns * freq_ghz

    # ------------------------------------------------------------ loads/stores

    def load(self, addr: int, dependent: bool = False) -> int:
        """One 8-byte (or smaller) load instruction; returns service level."""
        level = self.hierarchy.load(addr)
        c = self.counters
        c.n_load_inst += 1
        latency = self._latency[level]
        if dependent:
            c.cycles += latency
            c.stall_cycles += latency - 1.0
        else:
            issue = self.timing.load_issue
            c.cycles += issue
            if level > LEVEL_L1D:
                exposed = latency / self.timing.mlp - issue
                if exposed > 0.0:
                    c.cycles += exposed
                    c.stall_cycles += exposed
        return level

    def load_bytes(self, addr: int, nbytes: int, dependent: bool = False) -> None:
        """A multi-word read: one load instruction per 8 bytes, first one
        dependent if requested, the rest independent.

        Only the first word of each touched cache line goes through the
        hierarchy; trailing same-line words are guaranteed L1D hits (the
        first access filled the line and made it MRU, and the words are
        consecutive) so they are accounted in bulk — ``scan_lines``'
        trick, applied to every multi-word access.
        """
        n_words = max(1, (nbytes + 7) // 8)
        last = addr + 8 * (n_words - 1)
        tcm = self.hierarchy.tcm_region
        if tcm is not None and addr < tcm.end and last >= tcm.base:
            if tcm.base <= addr and last < tcm.end:
                # Whole run inside the TCM region: bulk TCM accounting.
                c = self.counters
                c.n_tcm_load += n_words
                c.n_load_inst += n_words
                if dependent:
                    latency = self._latency[LEVEL_TCM]
                    c.cycles += latency
                    c.stall_cycles += latency - 1.0
                    c.cycles += (n_words - 1) * self.timing.load_issue
                else:
                    c.cycles += n_words * self.timing.load_issue
                return
            # Run straddles the TCM boundary: rare — take the exact
            # per-word path.
            self.load(addr, dependent=dependent)
            for i in range(1, n_words):
                self.load(addr + 8 * i)
            return
        self.load(addr, dependent=dependent)
        if n_words == 1:
            return
        first_line = addr >> LINE_SHIFT
        extra_lines = (last >> LINE_SHIFT) - first_line
        word0 = addr & 7
        for i in range(1, extra_lines + 1):
            self.load(((first_line + i) << LINE_SHIFT) | word0)
        bulk = n_words - 1 - extra_lines
        if bulk > 0:
            c = self.counters
            c.n_load_inst += bulk
            c.n_l1d += bulk
            c.l1d_hits += bulk
            c.cycles += bulk * self.timing.load_issue

    def scan_lines(self, base_addr: int, n_lines: int, loads_per_line: int = 1) -> None:
        """Sequentially read ``n_lines`` cache lines starting at ``base_addr``.

        The first load of each line goes through the hierarchy; the
        remaining ``loads_per_line - 1`` loads are same-line and therefore
        guaranteed L1D hits — they are accounted in bulk, which keeps
        table scans fast to simulate without changing any counter value.
        """
        if n_lines <= 0:
            return
        extra = loads_per_line - 1
        c = self.counters
        t_issue = self.timing.load_issue
        for i in range(n_lines):
            self.load(base_addr + i * LINE_SIZE)
        if extra > 0:
            bulk = n_lines * extra
            c.n_load_inst += bulk
            c.n_l1d += bulk
            c.l1d_hits += bulk
            c.cycles += bulk * t_issue

    def hot_loads(self, addr: int, n: int) -> None:
        """``n`` loads against a known-hot working set at ``addr``.

        Interpretive database engines issue hundreds of loads per tuple
        against their own state (tuple slots, operator nodes, the VDBE
        program).  That working set is touched continuously — hundreds of
        times between any two data accesses — so it is L1D-resident in
        steady state regardless of what the data scan evicts.  All ``n``
        loads are therefore accounted as L1D hits in bulk, which keeps
        the simulation O(rows) instead of O(instructions).

        If ``addr`` sits in a TCM region, all ``n`` loads are TCM loads
        (the §4.2 co-design moves exactly this state into DTCM).
        """
        if n <= 0:
            return
        c = self.counters
        if self.hierarchy.in_tcm(addr):
            c.n_tcm_load += n
            c.n_load_inst += n
            c.cycles += n * self.timing.load_issue
            return
        c.n_load_inst += n
        c.n_l1d += n
        c.l1d_hits += n
        c.cycles += n * self.timing.load_issue

    def hot_stores(self, addr: int, n: int) -> None:
        """``n`` stores against a known-hot working set (see hot_loads)."""
        if n <= 0:
            return
        c = self.counters
        if self.hierarchy.in_tcm(addr):
            c.n_tcm_store += n
            c.n_store_inst += n
            c.cycles += n * self.timing.store_issue
            return
        c.n_store_inst += n
        c.n_store += n
        c.n_store_l1d_hit += n
        c.cycles += n * self.timing.store_issue

    def store(self, addr: int) -> None:
        """One store instruction (write-back, 1-cycle via store buffer)."""
        self.hierarchy.store(addr)
        c = self.counters
        c.n_store_inst += 1
        c.cycles += self.timing.store_issue

    def store_bytes(self, addr: int, nbytes: int) -> None:
        """A multi-word write; same bulk trailing-word treatment as
        :meth:`load_bytes` (the first store write-allocates and dirties
        the line, so trailing same-line stores are guaranteed L1D hits).
        """
        n_words = max(1, (nbytes + 7) // 8)
        last = addr + 8 * (n_words - 1)
        tcm = self.hierarchy.tcm_region
        if tcm is not None and addr < tcm.end and last >= tcm.base:
            if tcm.base <= addr and last < tcm.end:
                c = self.counters
                c.n_tcm_store += n_words
                c.n_store_inst += n_words
                c.cycles += n_words * self.timing.store_issue
                return
            for i in range(n_words):
                self.store(addr + 8 * i)
            return
        self.store(addr)
        if n_words == 1:
            return
        first_line = addr >> LINE_SHIFT
        extra_lines = (last >> LINE_SHIFT) - first_line
        word0 = addr & 7
        for i in range(1, extra_lines + 1):
            self.store(((first_line + i) << LINE_SHIFT) | word0)
        bulk = n_words - 1 - extra_lines
        if bulk > 0:
            c = self.counters
            c.n_store_inst += bulk
            c.n_store += bulk
            c.n_store_l1d_hit += bulk
            c.cycles += bulk * self.timing.store_issue

    # ------------------------------------------------------------ compute ops

    def add(self, n: int = 1) -> None:
        self.counters.n_add += n
        self.counters.cycles += n * self.timing.alu_issue

    def nop(self, n: int = 1) -> None:
        self.counters.n_nop += n
        self.counters.cycles += n * self.timing.nop_issue

    def mul(self, n: int = 1) -> None:
        self.counters.n_mul += n
        self.counters.cycles += n * self.timing.mul_issue

    def cmp(self, n: int = 1) -> None:
        self.counters.n_cmp += n
        self.counters.cycles += n * self.timing.cmp_issue

    def branch(self, n: int = 1) -> None:
        self.counters.n_branch += n
        self.counters.cycles += n * self.timing.branch_issue

    def other(self, n: int = 1) -> None:
        self.counters.n_other += n
        self.counters.cycles += n * self.timing.other_issue
