"""Tightly-coupled memory (TCM / scratchpad) support.

ARM1176JZF-S provides DTCM: programmable on-chip memory at a *fixed
physical address*, as fast as the L1 cache but cheaper per access, and
never swapped in or out of the cache hierarchy (§4.1, Figure 12).  The
simulator models a DTCM region as an address range that the memory
hierarchy serves directly (see :class:`repro.sim.hierarchy.MemoryHierarchy`).

:class:`TcmAllocator` is the user-space API the paper had to build a
kernel driver for: a tiny first-fit allocator over the fixed region, so
the database co-design (§4.2) can place its hot structures explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError
from repro.sim.address_space import LINE_SIZE, Region, align_up

#: Fixed physical base of the DTCM region, far away from DRAM allocations.
TCM_BASE = 1 << 40


@dataclass(frozen=True)
class TcmConfig:
    """Size of the data TCM, in bytes (ARM1176JZF-S: 32 KiB)."""

    size: int = 32 * 1024

    def region(self) -> Region:
        return Region(base=TCM_BASE, size=self.size, label="DTCM")


class TcmAllocator:
    """First-fit allocator over a fixed TCM region.

    Supports ``alloc`` and ``free`` so the database buffer can be
    re-partitioned between queries (the paper divides the B-tree budget
    evenly across the tables of the current query).
    """

    def __init__(self, region: Region):
        self.region = region
        self._free: list[tuple[int, int]] = [(region.base, region.size)]
        self._live: dict[int, int] = {}

    @property
    def bytes_free(self) -> int:
        return sum(size for _, size in self._free)

    @property
    def bytes_live(self) -> int:
        return sum(self._live.values())

    def alloc(self, size: int, label: str = "") -> Region:
        if size <= 0:
            raise AllocationError("TCM allocation size must be positive")
        need = align_up(size, LINE_SIZE)
        for index, (base, avail) in enumerate(self._free):
            if avail >= need:
                if avail == need:
                    del self._free[index]
                else:
                    self._free[index] = (base + need, avail - need)
                self._live[base] = need
                return Region(base=base, size=size, label=label)
        raise AllocationError(
            f"DTCM exhausted: need {need} bytes, {self.bytes_free} free"
        )

    def free(self, region: Region) -> None:
        size = self._live.pop(region.base, None)
        if size is None:
            raise AllocationError(f"double free / unknown TCM region {region}")
        self._free.append((region.base, size))
        self._coalesce()

    def free_all(self) -> None:
        self._live.clear()
        self._free = [(self.region.base, self.region.size)]

    def _coalesce(self) -> None:
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for base, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == base:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((base, size))
        self._free = merged
