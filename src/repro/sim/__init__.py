"""Simulation substrate: CPU, cache hierarchy, energy, DVFS, disk, TCM.

This package replaces the paper's physical measurement platform (Intel
i7-4790 + RAPL + PMU; ARM1176JZF-S + power meter).  See DESIGN.md §2 for
the substitution argument.
"""

from repro.sim.address_space import LINE_SHIFT, LINE_SIZE, AddressSpace, Region
from repro.sim.cache import CacheLevel
from repro.sim.cpu import Cpu, TimingConfig
from repro.sim.disk import DiskModel
from repro.sim.dvfs import EistGovernor, PstateTable, ResidencyRecorder, VoltageLaw
from repro.sim.energy import (
    BackgroundPower,
    EventCost,
    EventEnergyTable,
    RaplCounters,
)
from repro.sim.hierarchy import (
    LEVEL_L1D,
    LEVEL_L2,
    LEVEL_L3,
    LEVEL_MEM,
    LEVEL_TCM,
    MemoryHierarchy,
)
from repro.sim.machine import Machine, MachineStats
from repro.sim.pmu import Pmu, PmuCounters
from repro.sim.prefetcher import StreamPrefetcher
from repro.sim.tcm import TcmAllocator, TcmConfig

__all__ = [
    "LINE_SHIFT",
    "LINE_SIZE",
    "AddressSpace",
    "Region",
    "CacheLevel",
    "Cpu",
    "TimingConfig",
    "DiskModel",
    "EistGovernor",
    "PstateTable",
    "ResidencyRecorder",
    "VoltageLaw",
    "BackgroundPower",
    "EventCost",
    "EventEnergyTable",
    "RaplCounters",
    "LEVEL_L1D",
    "LEVEL_L2",
    "LEVEL_L3",
    "LEVEL_MEM",
    "LEVEL_TCM",
    "MemoryHierarchy",
    "Machine",
    "MachineStats",
    "Pmu",
    "PmuCounters",
    "StreamPrefetcher",
    "TcmAllocator",
    "TcmConfig",
]
