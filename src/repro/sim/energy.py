"""Ground-truth energy model and RAPL-style counters.

The real i7-4790 exposes energy only through RAPL's three domains (core,
package, dram) — the paper's whole methodology exists because per-
micro-operation energy is *not* directly observable.  The simulator keeps
that property: workloads and the measurement code only ever see

* PMU counts (:mod:`repro.sim.pmu`), and
* cumulative RAPL domain energies (:class:`RaplCounters`).

Internally the simulator prices every micro-event with a hidden
:class:`EventEnergyTable`.  Calibration (:mod:`repro.core.calibration`)
then has to *recover* those prices from aggregate measurements, exactly
as §2.5 does on hardware.  The recovered values will not be identical to
the hidden ones (loop-control instructions, write-backs, and the paper's
prefetch-energy assumption all introduce error), which is what makes the
Table 3 verification accuracy a meaningful number here.

Scaling with the P-state follows the classic CMOS split: each event price
is ``fixed + var * (V/Vref)**2``.  Core-located events are almost fully
voltage-scaled; DRAM-located events are almost fully fixed — reproducing
the Table 2 pattern (dE_L1D falls ~54% from P36 to P12, dE_mem ~4%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.pmu import PmuCounters

NANOJOULE = 1e-9


@dataclass(frozen=True)
class EventCost:
    """Price of one micro-event in nanojoules: ``fixed + var * vf2``.

    ``vf2`` is ``(V/Vref)**2`` for the current P-state, so at the
    reference P-state the price is ``fixed + var``.
    """

    fixed: float
    var: float

    def at(self, vf2: float) -> float:
        return self.fixed + self.var * vf2


@dataclass(frozen=True)
class EventEnergyTable:
    """Hidden per-event prices, split by RAPL domain.

    ``core`` events land in the core domain (and therefore also in
    package, which physically contains the core); ``uncore`` events land
    in package only (L3, memory controller, prefetch logic); ``dram``
    events land in the dram domain.

    Default values are chosen so that the *recovered* dE_m at the
    reference P-state is close to the paper's Table 2 (L1D 1.30 nJ,
    L2 4.37, L3 6.64, mem 103.1, store 2.42, stall 1.72, add 1.03,
    nop 0.65).  The prefetch prices intentionally deviate a little from
    the paper's equal-cost assumption (dE_pf_l2 = dE_L3) so that the
    assumption is an approximation here too.
    """

    # ---- core domain
    load_l1d: EventCost = EventCost(0.0, 1.30)
    store_l1d: EventCost = EventCost(0.0, 2.42)
    xfer_l2: EventCost = EventCost(0.30, 4.07)
    stall_cycle: EventCost = EventCost(0.05, 1.67)
    add: EventCost = EventCost(0.0, 1.03)
    nop: EventCost = EventCost(0.0, 0.65)
    mul: EventCost = EventCost(0.0, 1.80)
    cmp: EventCost = EventCost(0.0, 0.88)
    branch: EventCost = EventCost(0.0, 1.15)
    other: EventCost = EventCost(0.0, 1.00)
    tcm_load: EventCost = EventCost(0.0, 1.17)
    tcm_store: EventCost = EventCost(0.0, 2.18)
    # ---- uncore (package minus core)
    xfer_l3: EventCost = EventCost(5.00, 1.64)
    pf_l2: EventCost = EventCost(4.50, 1.48)   # paper assumes == xfer_l3
    mem_ctl: EventCost = EventCost(8.00, 4.00)
    writeback: EventCost = EventCost(1.00, 1.00)
    # ---- dram
    dram_access: EventCost = EventCost(89.0, 2.10)
    pf_l3_dram: EventCost = EventCost(84.0, 2.00)  # paper assumes == mem


@dataclass(frozen=True)
class BackgroundPower:
    """Fixed activation power per RAPL domain, in watts.

    ``core`` is contained in ``package_total``; the paper measures the
    Background energy of each domain with an only-blocked program
    (``sleep 1``) while C-states are disabled (§2.6) — the simulator's
    analogue is :meth:`repro.sim.machine.Machine.idle` with C-states off.
    The ``idle_fraction`` applies when C-states are *enabled*: deep idle
    drops background power to that fraction.
    """

    core: float = 4.0
    package_total: float = 7.0
    dram: float = 1.5
    idle_fraction: float = 0.3

    def package_extra(self) -> float:
        return self.package_total - self.core


@dataclass
class EnergyAccount:
    """Joules accumulated so far, per RAPL domain component."""

    core_active: float = 0.0
    uncore_active: float = 0.0
    dram_active: float = 0.0
    core_background: float = 0.0
    uncore_background: float = 0.0
    dram_background: float = 0.0

    def copy(self) -> "EnergyAccount":
        return EnergyAccount(
            self.core_active, self.uncore_active, self.dram_active,
            self.core_background, self.uncore_background, self.dram_background,
        )


def active_energy_joules(
    counters: PmuCounters, table: EventEnergyTable, vf2: float
) -> EnergyAccount:
    """Price a counter delta at a single P-state.

    This is the hidden ground truth: total active energy equals the sum of
    per-event counts times per-event prices.  Only :class:`RaplCounters`
    calls this; measurement code must work from domain totals.
    """
    account = EnergyAccount()
    t = table
    account.core_active = NANOJOULE * (
        counters.n_l1d * t.load_l1d.at(vf2)
        + counters.n_store_l1d_hit * t.store_l1d.at(vf2)
        + counters.n_l2 * t.xfer_l2.at(vf2)
        + counters.stall_cycles * t.stall_cycle.at(vf2)
        + counters.n_add * t.add.at(vf2)
        + counters.n_nop * t.nop.at(vf2)
        + counters.n_mul * t.mul.at(vf2)
        + counters.n_cmp * t.cmp.at(vf2)
        + counters.n_branch * t.branch.at(vf2)
        + counters.n_other * t.other.at(vf2)
        + counters.n_tcm_load * t.tcm_load.at(vf2)
        + counters.n_tcm_store * t.tcm_store.at(vf2)
    )
    account.uncore_active = NANOJOULE * (
        counters.n_l3 * t.xfer_l3.at(vf2)
        + counters.n_pf_l2 * t.pf_l2.at(vf2)
        + (counters.n_mem + counters.n_pf_l3) * t.mem_ctl.at(vf2)
        + counters.n_writeback * t.writeback.at(vf2)
    )
    account.dram_active = NANOJOULE * (
        counters.n_mem * t.dram_access.at(vf2)
        + counters.n_pf_l3 * t.pf_l3_dram.at(vf2)
    )
    return account


class RaplCounters:
    """RAPL-like cumulative energy counters over three domains.

    The machine calls :meth:`settle` whenever enough state changed (a
    P-state switch, an idle period, a measurement read); settling prices
    the PMU-count delta since the previous settle at the P-state that was
    active in between.  Reads therefore always reflect all work done.
    """

    def __init__(self, table: EventEnergyTable, background: BackgroundPower):
        self._table = table
        self._background = background
        self._account = EnergyAccount()

    # -- the machine drives these -----------------------------------------

    def settle_active(self, delta: PmuCounters, vf2: float) -> None:
        """Fold a PMU counter delta executed entirely at ``vf2``."""
        priced = active_energy_joules(delta, self._table, vf2)
        self._account.core_active += priced.core_active
        self._account.uncore_active += priced.uncore_active
        self._account.dram_active += priced.dram_active

    def settle_background(self, seconds: float, deep_idle: bool = False) -> None:
        """Accrue background energy for ``seconds`` of wall-clock time."""
        if seconds <= 0.0:
            return
        scale = self._background.idle_fraction if deep_idle else 1.0
        self._account.core_background += self._background.core * scale * seconds
        self._account.uncore_background += (
            self._background.package_extra() * scale * seconds
        )
        self._account.dram_background += self._background.dram * scale * seconds

    # -- measurement-facing reads ------------------------------------------

    def energy_core(self) -> float:
        """Cumulative core-domain joules (like RAPL PP0)."""
        return self._account.core_active + self._account.core_background

    def energy_package(self) -> float:
        """Cumulative package-domain joules (core + L3 + memory ctl)."""
        return (
            self.energy_core()
            + self._account.uncore_active
            + self._account.uncore_background
        )

    def energy_dram(self) -> float:
        """Cumulative dram-domain joules."""
        return self._account.dram_active + self._account.dram_background

    def snapshot(self) -> EnergyAccount:
        return self._account.copy()

    def reset(self) -> None:
        self._account = EnergyAccount()
