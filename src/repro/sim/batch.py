"""Batched micro-op execution engine.

Every simulated micro-op normally pays three Python call frames
(``Cpu.load`` → ``MemoryHierarchy.load`` → ``CacheLevel.lookup``), so
scan-heavy workloads — exactly the access patterns the paper's
micro-analysis decomposes — are bounded by interpreter overhead rather
than by the model.  This module provides two interchangeable executors:

* :class:`ReferenceExecutor` — the per-op path.  Every access takes the
  full ``Cpu``/``MemoryHierarchy`` call chain; this *is* the model.
* :class:`BatchExecutor` — executes whole runs of line accesses in one
  call, with the hierarchy walk, fill/evict cascade, and prefetcher
  update inlined into a single loop over local variables.

The batched path is **bit-identical** to the reference path: it performs
the same set/LRU mutations in the same order and applies the same cycle
and stall additions in the same order, so PMU counters, cache state,
energy, and wall-clock agree exactly (see
``tests/sim/test_batch_equivalence.py``).  The only accounting shortcut
it takes — folding a run of guaranteed L1D hits into one bulk update —
adds the same dyadic issue widths the reference path adds one at a
time; for issue widths that are multiples of 0.25 cycles (both machine
presets) those additions are exact in IEEE-754 doubles at any realistic
cycle count, so even the floating-point results are identical.

Executors are swapped via ``Machine.set_exec_mode("reference" |
"batched")``; the run-level entry points (``load_run``, ``load_list``,
``store_repeat``) share one signature across both so callers never
branch on the mode.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.sim.address_space import LINE_SHIFT, LINE_SIZE
from repro.sim.cpu import Cpu
from repro.sim.hierarchy import (
    LEVEL_L1D,
    LEVEL_L2,
    LEVEL_L3,
    LEVEL_MEM,
    LEVEL_TCM,
)

EXEC_MODES = ("reference", "batched")


class ReferenceExecutor:
    """Per-op execution: every access takes the full model call chain."""

    mode = "reference"

    def __init__(self, cpu: Cpu):
        self.cpu = cpu

    def scan_lines(self, base_addr: int, n_lines: int, loads_per_line: int = 1) -> None:
        self.cpu.scan_lines(base_addr, n_lines, loads_per_line)

    def load_bytes(self, addr: int, nbytes: int, dependent: bool = False) -> None:
        self.cpu.load_bytes(addr, nbytes, dependent)

    def store_bytes(self, addr: int, nbytes: int) -> None:
        self.cpu.store_bytes(addr, nbytes)

    def load_run(self, base: int, offsets: Sequence[int], dependent: bool = False) -> None:
        """Loads at ``base + off`` for ascending word ``offsets``; only
        the first load is dependent (when requested)."""
        load = self.cpu.load
        for off in offsets:
            load(base + off, dependent)
            dependent = False

    def load_list(self, addrs: Iterable[int], dependent: bool = False) -> None:
        """One load per address, each with the given dependence."""
        load = self.cpu.load
        for addr in addrs:
            load(addr, dependent)

    def store_repeat(self, addr: int, n: int) -> None:
        """``n`` stores to the same address."""
        store = self.cpu.store
        for _ in range(n):
            store(addr)


class BatchExecutor:
    """Run-level execution with the hierarchy walk inlined.

    The workhorses are :meth:`_load_addrs` and :meth:`_store_addrs`:
    one Python loop over an address iterable, with cache sets, masks,
    latencies, and counters bound to locals, and the fill/evict cascade
    of ``MemoryHierarchy._fetch_from_below`` written out inline.  Dirty
    victim cascades (the rare path) fall back to the hierarchy's own
    ``_fill_l2``/``_fill_l3`` so the write-back logic lives in exactly
    one place.
    """

    mode = "batched"

    def __init__(self, cpu: Cpu):
        self.cpu = cpu
        #: ``(base, n_lines, mut_epoch)`` of the last ``scan_lines`` call
        #: that hit L1D on every line, or None.  See :meth:`scan_lines`.
        self._scan_memo = None

    # ------------------------------------------------------------ public API

    def scan_lines(self, base_addr: int, n_lines: int, loads_per_line: int = 1) -> None:
        if n_lines <= 0:
            return
        cpu = self.cpu
        hier = cpu.hierarchy
        memo = self._scan_memo
        if (memo is not None and memo[0] == base_addr and memo[1] == n_lines
                and memo[2] == hier.mut_epoch):
            # The previous scan_lines call covered this exact range, hit
            # L1D on every line, and nothing has touched cache state
            # since.  Replaying it re-orders each set into the ascending
            # order the previous scan already left it in — a no-op on
            # cache state — so the whole scan folds into one bulk hit
            # update.  (All-hit loads add only `issue` cycles, which is
            # dyadic, so the bulk add is bit-identical to n single adds.)
            c = cpu.counters
            n = n_lines * loads_per_line
            hier.l1d.hits += n_lines
            c.n_load_inst += n
            c.n_l1d += n
            c.l1d_hits += n
            c.cycles += n * cpu.timing.load_issue
            return
        hier.mut_epoch += 1
        impure = self._load_addrs(
            range(base_addr, base_addr + n_lines * LINE_SIZE, LINE_SIZE)
        )
        self._scan_memo = (
            (base_addr, n_lines, hier.mut_epoch) if impure == 0 else None
        )
        extra = loads_per_line - 1
        if extra > 0:
            c = cpu.counters
            bulk = n_lines * extra
            c.n_load_inst += bulk
            c.n_l1d += bulk
            c.l1d_hits += bulk
            c.cycles += bulk * cpu.timing.load_issue

    def load_bytes(self, addr: int, nbytes: int, dependent: bool = False) -> None:
        n_words = max(1, (nbytes + 7) // 8)
        last = addr + 8 * (n_words - 1)
        cpu = self.cpu
        cpu.hierarchy.mut_epoch += 1
        tcm = cpu.hierarchy.tcm_region
        if tcm is not None and addr < tcm.end and last >= tcm.base:
            # TCM bulk / boundary-straddle handling is identical in both
            # modes; reuse the reference implementation.
            cpu.load_bytes(addr, nbytes, dependent)
            return
        first_line = addr >> LINE_SHIFT
        extra_lines = (last >> LINE_SHIFT) - first_line
        if extra_lines == 0:
            addrs = (addr,)
        else:
            word0 = addr & 7
            addrs = [addr]
            for i in range(1, extra_lines + 1):
                addrs.append(((first_line + i) << LINE_SHIFT) | word0)
        self._load_addrs(addrs, dependent, first_only=True)
        bulk = n_words - 1 - extra_lines
        if bulk > 0:
            c = cpu.counters
            c.n_load_inst += bulk
            c.n_l1d += bulk
            c.l1d_hits += bulk
            c.cycles += bulk * cpu.timing.load_issue

    def store_bytes(self, addr: int, nbytes: int) -> None:
        n_words = max(1, (nbytes + 7) // 8)
        last = addr + 8 * (n_words - 1)
        cpu = self.cpu
        cpu.hierarchy.mut_epoch += 1
        tcm = cpu.hierarchy.tcm_region
        if tcm is not None and addr < tcm.end and last >= tcm.base:
            cpu.store_bytes(addr, nbytes)
            return
        first_line = addr >> LINE_SHIFT
        extra_lines = (last >> LINE_SHIFT) - first_line
        if extra_lines == 0:
            addrs = (addr,)
        else:
            word0 = addr & 7
            addrs = [addr]
            for i in range(1, extra_lines + 1):
                addrs.append(((first_line + i) << LINE_SHIFT) | word0)
        self._store_addrs(addrs)
        bulk = n_words - 1 - extra_lines
        if bulk > 0:
            c = cpu.counters
            c.n_store_inst += bulk
            c.n_store += bulk
            c.n_store_l1d_hit += bulk
            c.cycles += bulk * cpu.timing.store_issue

    def load_run(self, base: int, offsets: Sequence[int], dependent: bool = False) -> None:
        if not offsets:
            return
        cpu = self.cpu
        cpu.hierarchy.mut_epoch += 1
        tcm = cpu.hierarchy.tcm_region
        if tcm is not None:
            first = base + offsets[0]
            last = base + offsets[-1]
            if first < tcm.end and last >= tcm.base:
                if tcm.base <= first and last < tcm.end:
                    # Whole run in TCM: bulk accounting.
                    c = cpu.counters
                    n = len(offsets)
                    c.n_tcm_load += n
                    c.n_load_inst += n
                    if dependent:
                        latency = cpu._latency[LEVEL_TCM]
                        c.cycles += latency
                        c.stall_cycles += latency - 1.0
                        c.cycles += (n - 1) * cpu.timing.load_issue
                    else:
                        c.cycles += n * cpu.timing.load_issue
                else:
                    # Straddles the TCM boundary: exact per-op fallback.
                    load = cpu.load
                    for off in offsets:
                        load(base + off, dependent)
                        dependent = False
                return
        # The first word of each touched line takes the full path; the
        # trailing same-line words are guaranteed L1D hits (ascending
        # offsets keep the line MRU) — the reference path probes them
        # one by one, so the bulk update mirrors a probe: it counts
        # CacheLevel hits as well as the PMU counters.
        #
        # Optimistic pass: probe line-first words in order while they
        # hit L1D (the warm-database common case), bailing to the full
        # inlined walk at the first miss.  The probes before the miss
        # happen in reference order; everything from the miss on is
        # handed to _load_addrs, which also runs in order.
        l1 = cpu.hierarchy.l1d
        s1 = l1._sets
        m1 = l1._set_mask
        c = cpu.counters
        issue = cpu.timing.load_issue
        n = 0
        n_first = 0
        hits = 0
        prev_line = -1
        rest = None
        for off in offsets:
            a = base + off
            line = a >> LINE_SHIFT
            n += 1
            if line == prev_line:
                continue
            prev_line = line
            n_first += 1
            if rest is not None:
                rest.append(a)
                continue
            set1 = s1[line & m1]
            if line in set1:
                set1.move_to_end(line)
                hits += 1
            else:
                rest = [a]
        if hits:
            l1.hits += hits
            c.n_l1d += hits
            c.l1d_hits += hits
            c.n_load_inst += hits
            if dependent:
                # The run's first word hit; it alone carries the
                # dependent-load latency.
                lat_l1 = cpu._latency[LEVEL_L1D]
                c.cycles += lat_l1
                c.stall_cycles += lat_l1 - 1.0
                if hits > 1:
                    c.cycles += (hits - 1) * issue
                dependent = False
            else:
                c.cycles += hits * issue
        if rest is not None:
            self._load_addrs(rest, dependent, first_only=True)
        bulk = n - n_first
        if bulk > 0:
            l1.hits += bulk
            c.n_l1d += bulk
            c.l1d_hits += bulk
            c.n_load_inst += bulk
            c.cycles += bulk * issue

    def load_list(self, addrs: Iterable[int], dependent: bool = False) -> None:
        cpu = self.cpu
        hier = cpu.hierarchy
        hier.mut_epoch += 1
        # Optimistic pass, as in load_run: L1D hits (the resident-list
        # pointer-chase case) are applied inline and in order; the first
        # miss — or any TCM address — hands the remainder to the full
        # walk.  ``dependent`` applies to every load here, so the hit
        # bulk prices each hit at the dependent L1 latency.
        l1 = hier.l1d
        s1 = l1._sets
        m1 = l1._set_mask
        tcm = hier.tcm_region
        if tcm is not None:
            tbase = tcm.base
            tend = tcm.base + tcm.size
        else:
            tbase = 1
            tend = 0
        hits = 0
        rest = None
        for a in addrs:
            if rest is not None:
                rest.append(a)
                continue
            line = a >> LINE_SHIFT
            if tbase <= a < tend:
                rest = [a]
                continue
            set1 = s1[line & m1]
            if line in set1:
                set1.move_to_end(line)
                hits += 1
            else:
                rest = [a]
        if hits:
            c = cpu.counters
            l1.hits += hits
            c.n_l1d += hits
            c.l1d_hits += hits
            c.n_load_inst += hits
            if dependent:
                lat_l1 = cpu._latency[LEVEL_L1D]
                c.cycles += hits * lat_l1
                c.stall_cycles += hits * (lat_l1 - 1.0)
            else:
                c.cycles += hits * cpu.timing.load_issue
        if rest is not None:
            self._load_addrs(rest, dependent)

    def store_repeat(self, addr: int, n: int) -> None:
        if n <= 0:
            return
        cpu = self.cpu
        cpu.hierarchy.mut_epoch += 1
        c = cpu.counters
        tcm = cpu.hierarchy.tcm_region
        if tcm is not None and tcm.base <= addr < tcm.end:
            c.n_tcm_store += n
            c.n_store_inst += n
            c.cycles += n * cpu.timing.store_issue
            return
        self._store_addrs((addr,))
        if n > 1:
            # Repeat stores to one address hit the (now dirty, MRU) L1D
            # line; the reference path probes each one.
            bulk = n - 1
            cpu.hierarchy.l1d.hits += bulk
            c.n_store += bulk
            c.n_store_l1d_hit += bulk
            c.n_store_inst += bulk
            c.cycles += bulk * cpu.timing.store_issue

    # ------------------------------------------------------------ workhorses

    def _load_addrs(self, addrs: Iterable[int], dependent: bool = False,
                    first_only: bool = False) -> int:
        """Demand loads for every address in ``addrs``, inlined.

        ``dependent`` applies to all loads, or — with ``first_only`` —
        to just the first one (the ``load_run`` contract).  Returns the
        number of "impure" accesses (L1D misses + TCM hits); a zero
        return means the run was pure L1D hits, which is what the
        ``scan_lines`` replay memo needs to know.
        """
        cpu = self.cpu
        c = cpu.counters
        hier = cpu.hierarchy
        l1 = hier.l1d
        l2 = hier.l2
        l3 = hier.l3
        s1 = l1._sets
        m1 = l1._set_mask
        a1 = l1.assoc
        if l2 is not None:
            s2 = l2._sets
            m2 = l2._set_mask
            a2 = l2.assoc
            fill_l2 = hier._fill_l2
        if l3 is not None:
            s3 = l3._sets
            m3 = l3._set_mask
            a3 = l3.assoc
            fill_l3 = hier._fill_l3
        tcm = hier.tcm_region
        if tcm is not None:
            tbase = tcm.base
            tend = tcm.base + tcm.size
        else:
            tbase = 1
            tend = 0
        observe = hier.prefetcher.observe
        lat = cpu._latency
        lat_tcm = lat[LEVEL_TCM]
        lat_l1 = lat[LEVEL_L1D]
        lat_l2 = lat[LEVEL_L2]
        lat_l3 = lat[LEVEL_L3]
        lat_mem = lat[LEVEL_MEM]
        timing = cpu.timing
        issue = timing.load_issue
        mlp = timing.mlp
        # Same expression the reference path evaluates per op.
        exp_l2 = lat_l2 / mlp - issue
        exp_l3 = lat_l3 / mlp - issue
        exp_mem = lat_mem / mlp - issue

        n_inst = 0
        n_l1d = 0
        l1d_hits = 0
        n_l2 = 0
        l2_hits = 0
        n_l3 = 0
        l3_hits = 0
        n_mem = 0
        n_tcm = 0
        n_wb = 0
        n_pf_l2 = 0
        n_pf_l3 = 0
        h1 = mis1 = f1 = ev1 = dev1 = occ1 = 0
        h2 = mis2 = f2 = ev2 = dev2 = occ2 = 0
        h3 = mis3 = f3 = ev3 = dev3 = occ3 = 0
        cyc = c.cycles
        stall = c.stall_cycles
        dep = dependent

        for addr in addrs:
            n_inst += 1
            if tbase <= addr < tend:
                n_tcm += 1
                if dep:
                    cyc += lat_tcm
                    stall += lat_tcm - 1.0
                    if first_only:
                        dep = False
                else:
                    cyc += issue
                continue
            line = addr >> LINE_SHIFT
            set1 = s1[line & m1]
            if line in set1:
                set1.move_to_end(line)
                h1 += 1
                n_l1d += 1
                l1d_hits += 1
                if dep:
                    cyc += lat_l1
                    stall += lat_l1 - 1.0
                    if first_only:
                        dep = False
                else:
                    cyc += issue
                continue
            # ---------------- L1D miss: walk down, fill on the way back
            n_l1d += 1
            mis1 += 1
            if l2 is None:
                n_mem += 1
                lvl_lat = lat_mem
                exp = exp_mem
            else:
                n_l2 += 1
                set2 = s2[line & m2]
                if line in set2:
                    set2.move_to_end(line)
                    h2 += 1
                    l2_hits += 1
                    lvl_lat = lat_l2
                    exp = exp_l2
                else:
                    mis2 += 1
                    if l3 is None:
                        n_mem += 1
                        lvl_lat = lat_mem
                        exp = exp_mem
                    else:
                        n_l3 += 1
                        set3 = s3[line & m3]
                        if line in set3:
                            set3.move_to_end(line)
                            h3 += 1
                            l3_hits += 1
                            lvl_lat = lat_l3
                            exp = exp_l3
                        else:
                            mis3 += 1
                            n_mem += 1
                            lvl_lat = lat_mem
                            exp = exp_mem
                            # fill L3 (line known absent)
                            f3 += 1
                            if len(set3) >= a3:
                                v, vd = set3.popitem(last=False)
                                ev3 += 1
                                if vd:
                                    dev3 += 1
                                    n_wb += 1
                            else:
                                occ3 += 1
                            set3[line] = False
                    # fill L2 (line known absent)
                    f2 += 1
                    if len(set2) >= a2:
                        v, vd = set2.popitem(last=False)
                        ev2 += 1
                        if vd:
                            dev2 += 1
                            n_wb += 1
                            if l3 is not None:
                                fill_l3(v, True)
                    else:
                        occ2 += 1
                    set2[line] = False
            # fill L1 (line known absent)
            f1 += 1
            if len(set1) >= a1:
                v, vd = set1.popitem(last=False)
                ev1 += 1
                if vd:
                    dev1 += 1
                    n_wb += 1
                    if l2 is not None:
                        fill_l2(v, True)
                    elif l3 is not None:
                        fill_l3(v, True)
            else:
                occ1 += 1
            set1[line] = False
            # prefetcher (demand loads only, after the fills — same
            # order as MemoryHierarchy.load)
            pf2, pf3 = observe(line)
            for pline in pf2:
                if l2 is not None and pline not in s2[pline & m2]:
                    if l3 is not None and pline in s3[pline & m3]:
                        n_pf_l2 += 1
                        pset = s2[pline & m2]
                        f2 += 1
                        if len(pset) >= a2:
                            v, vd = pset.popitem(last=False)
                            ev2 += 1
                            if vd:
                                dev2 += 1
                                n_wb += 1
                                fill_l3(v, True)
                        else:
                            occ2 += 1
                        pset[pline] = False
                    else:
                        n_pf_l3 += 1
                        if l3 is not None:
                            pset = s3[pline & m3]
                            f3 += 1
                            if len(pset) >= a3:
                                v, vd = pset.popitem(last=False)
                                ev3 += 1
                                if vd:
                                    dev3 += 1
                                    n_wb += 1
                            else:
                                occ3 += 1
                            pset[pline] = False
            for pline in pf3:
                if l3 is not None and pline not in s3[pline & m3]:
                    n_pf_l3 += 1
                    pset = s3[pline & m3]
                    f3 += 1
                    if len(pset) >= a3:
                        v, vd = pset.popitem(last=False)
                        ev3 += 1
                        if vd:
                            dev3 += 1
                            n_wb += 1
                    else:
                        occ3 += 1
                    pset[pline] = False
            if dep:
                cyc += lvl_lat
                stall += lvl_lat - 1.0
                if first_only:
                    dep = False
            else:
                cyc += issue
                if exp > 0.0:
                    cyc += exp
                    stall += exp

        c.cycles = cyc
        c.stall_cycles = stall
        c.n_load_inst += n_inst
        c.n_l1d += n_l1d
        c.l1d_hits += l1d_hits
        l1.hits += h1
        if mis1:
            c.n_l2 += n_l2
            c.l2_hits += l2_hits
            c.n_l3 += n_l3
            c.l3_hits += l3_hits
            c.n_mem += n_mem
            c.n_writeback += n_wb
            c.n_pf_l2 += n_pf_l2
            c.n_pf_l3 += n_pf_l3
            l1.misses += mis1
            l1.fills += f1
            l1.evictions += ev1
            l1.dirty_evictions += dev1
            l1._occupancy += occ1
            if l2 is not None:
                l2.hits += h2
                l2.misses += mis2
                l2.fills += f2
                l2.evictions += ev2
                l2.dirty_evictions += dev2
                l2._occupancy += occ2
            if l3 is not None:
                l3.hits += h3
                l3.misses += mis3
                l3.fills += f3
                l3.evictions += ev3
                l3.dirty_evictions += dev3
                l3._occupancy += occ3
        if n_tcm:
            c.n_tcm_load += n_tcm
        return mis1 + n_tcm

    def _store_addrs(self, addrs: Iterable[int]) -> None:
        """Stores for every address in ``addrs``, inlined (write-back +
        write-allocate; stores cost one issue slot, never stall)."""
        cpu = self.cpu
        c = cpu.counters
        hier = cpu.hierarchy
        l1 = hier.l1d
        l2 = hier.l2
        l3 = hier.l3
        s1 = l1._sets
        m1 = l1._set_mask
        a1 = l1.assoc
        if l2 is not None:
            s2 = l2._sets
            m2 = l2._set_mask
            a2 = l2.assoc
            fill_l2 = hier._fill_l2
        if l3 is not None:
            s3 = l3._sets
            m3 = l3._set_mask
            a3 = l3.assoc
            fill_l3 = hier._fill_l3
        tcm = hier.tcm_region
        if tcm is not None:
            tbase = tcm.base
            tend = tcm.base + tcm.size
        else:
            tbase = 1
            tend = 0

        n_inst = 0
        n_store = 0
        n_store_hit = 0
        n_l2 = 0
        l2_hits = 0
        n_l3 = 0
        l3_hits = 0
        n_mem = 0
        n_tcm = 0
        n_wb = 0
        h1 = mis1 = f1 = ev1 = dev1 = occ1 = 0
        h2 = mis2 = f2 = ev2 = dev2 = occ2 = 0
        h3 = mis3 = f3 = ev3 = dev3 = occ3 = 0

        for addr in addrs:
            n_inst += 1
            if tbase <= addr < tend:
                n_tcm += 1
                continue
            n_store += 1
            line = addr >> LINE_SHIFT
            set1 = s1[line & m1]
            if line in set1:
                set1.move_to_end(line)
                set1[line] = True
                h1 += 1
                n_store_hit += 1
                continue
            # ------------- store miss: write-allocate (RFO), then dirty
            mis1 += 1
            if l2 is not None:
                n_l2 += 1
                set2 = s2[line & m2]
                if line in set2:
                    set2.move_to_end(line)
                    h2 += 1
                    l2_hits += 1
                else:
                    mis2 += 1
                    if l3 is None:
                        n_mem += 1
                    else:
                        n_l3 += 1
                        set3 = s3[line & m3]
                        if line in set3:
                            set3.move_to_end(line)
                            h3 += 1
                            l3_hits += 1
                        else:
                            mis3 += 1
                            n_mem += 1
                            f3 += 1
                            if len(set3) >= a3:
                                v, vd = set3.popitem(last=False)
                                ev3 += 1
                                if vd:
                                    dev3 += 1
                                    n_wb += 1
                            else:
                                occ3 += 1
                            set3[line] = False
                    f2 += 1
                    if len(set2) >= a2:
                        v, vd = set2.popitem(last=False)
                        ev2 += 1
                        if vd:
                            dev2 += 1
                            n_wb += 1
                            if l3 is not None:
                                fill_l3(v, True)
                    else:
                        occ2 += 1
                    set2[line] = False
            else:
                n_mem += 1
            f1 += 1
            if len(set1) >= a1:
                v, vd = set1.popitem(last=False)
                ev1 += 1
                if vd:
                    dev1 += 1
                    n_wb += 1
                    if l2 is not None:
                        fill_l2(v, True)
                    elif l3 is not None:
                        fill_l3(v, True)
            else:
                occ1 += 1
            set1[line] = True

        c.cycles += n_inst * cpu.timing.store_issue
        c.n_store_inst += n_inst
        c.n_store += n_store
        c.n_store_l1d_hit += n_store_hit
        c.n_l2 += n_l2
        c.l2_hits += l2_hits
        c.n_l3 += n_l3
        c.l3_hits += l3_hits
        c.n_mem += n_mem
        c.n_tcm_store += n_tcm
        c.n_writeback += n_wb
        l1.hits += h1
        l1.misses += mis1
        l1.fills += f1
        l1.evictions += ev1
        l1.dirty_evictions += dev1
        l1._occupancy += occ1
        if l2 is not None:
            l2.hits += h2
            l2.misses += mis2
            l2.fills += f2
            l2.evictions += ev2
            l2.dirty_evictions += dev2
            l2._occupancy += occ2
        if l3 is not None:
            l3.hits += h3
            l3.misses += mis3
            l3.fills += f3
            l3.evictions += ev3
            l3.dirty_evictions += dev3
            l3._occupancy += occ3
