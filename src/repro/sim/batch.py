"""Batched micro-op execution engine.

Every simulated micro-op normally pays three Python call frames
(``Cpu.load`` → ``MemoryHierarchy.load`` → ``CacheLevel.lookup``), so
scan-heavy workloads — exactly the access patterns the paper's
micro-analysis decomposes — are bounded by interpreter overhead rather
than by the model.  This module provides two interchangeable executors:

* :class:`ReferenceExecutor` — the per-op path.  Every access takes the
  full ``Cpu``/``MemoryHierarchy`` call chain; this *is* the model.
* :class:`BatchExecutor` — executes whole runs of line accesses in one
  call, with the hierarchy walk, fill/evict cascade, and prefetcher
  update inlined into a single loop over local variables.

The batched engine has two scan regimes.  Warm scans (every line hits
L1D) fold into the scan-replay memo.  Cold streaming scans take the
**sequential-stream cold fast path**: once a trained prefetcher stream
covers the upcoming lines, the per-line miss cascade is regular —
demand miss → L2 prefetch hit → steady-state LRU eviction — so whole
strides execute in closed form: the ``_Stream`` state advances
arithmetically instead of via per-line ``observe()`` calls, fills and
evictions are applied directly to the per-set ``OrderedDict`` state
(one ``popitem``/insert per affected level and line, dirty-victim
writebacks included), and integer counters are accumulated per stride
(see :meth:`BatchExecutor._cold_stride`).

The batched path is **bit-identical** to the reference path: it performs
the same set/LRU mutations in the same order and applies the same cycle
and stall additions in the same order, so PMU counters, cache state,
energy, and wall-clock agree exactly (see
``tests/sim/test_batch_equivalence.py``).  The only accounting shortcut
it takes — folding a run of guaranteed L1D hits into one bulk update —
adds the same dyadic issue widths the reference path adds one at a
time; for issue widths that are multiples of 0.25 cycles (both machine
presets) those additions are exact in IEEE-754 doubles at any realistic
cycle count, so even the floating-point results are identical.

Executors are swapped via ``Machine.set_exec_mode("reference" |
"batched")``; the run-level entry points (``load_run``, ``load_list``,
``store_repeat``) share one signature across both so callers never
branch on the mode.
"""

from __future__ import annotations

from math import gcd
from typing import Iterable, Sequence

from repro.sim.address_space import LINE_SHIFT, LINE_SIZE
from repro.sim.cpu import Cpu
from repro.sim.hierarchy import (
    LEVEL_L1D,
    LEVEL_L2,
    LEVEL_L3,
    LEVEL_MEM,
    LEVEL_TCM,
)

EXEC_MODES = ("reference", "batched")

#: Lines handed to the generic walk between cold-stride retries while a
#: scan has not (yet) converged to the steady trained-stream shape.  Big
#: enough that the training prefix of a cold scan costs at most two
#: retries, small enough that the fast path engages quickly.
_STRIDE_RETRY_CHUNK = 64


class ReferenceExecutor:
    """Per-op execution: every access takes the full model call chain."""

    mode = "reference"

    def __init__(self, cpu: Cpu):
        self.cpu = cpu

    def scan_lines(self, base_addr: int, n_lines: int, loads_per_line: int = 1) -> None:
        self.cpu.scan_lines(base_addr, n_lines, loads_per_line)

    def load_bytes(self, addr: int, nbytes: int, dependent: bool = False) -> None:
        self.cpu.load_bytes(addr, nbytes, dependent)

    def store_bytes(self, addr: int, nbytes: int) -> None:
        self.cpu.store_bytes(addr, nbytes)

    def load_run(self, base: int, offsets: Sequence[int], dependent: bool = False) -> None:
        """Loads at ``base + off`` for ascending word ``offsets``; only
        the first load is dependent (when requested)."""
        load = self.cpu.load
        for off in offsets:
            load(base + off, dependent)
            dependent = False

    def load_list(self, addrs: Iterable[int], dependent: bool = False) -> None:
        """One load per address, each with the given dependence."""
        load = self.cpu.load
        for addr in addrs:
            load(addr, dependent)

    def load_ring(self, base: int, cursor: int, stride: int, count: int,
                  n_lines: int, dependent: bool = False) -> int:
        """``count`` strided loads over a ring of ``n_lines`` cache lines.

        Each load first advances ``cursor`` by ``stride`` modulo
        ``n_lines``, then touches ``base + cursor * LINE_SIZE``; the
        final cursor is returned so callers can persist the walk
        position across calls.  ``dependent`` applies to every load
        (the load_list convention)."""
        load = self.cpu.load
        for _ in range(count):
            cursor = (cursor + stride) % n_lines
            load(base + cursor * LINE_SIZE, dependent)
        return cursor

    def store_repeat(self, addr: int, n: int) -> None:
        """``n`` stores to the same address."""
        store = self.cpu.store
        for _ in range(n):
            store(addr)


class BatchExecutor:
    """Run-level execution with the hierarchy walk inlined.

    The workhorses are :meth:`_load_addrs` and :meth:`_store_addrs`:
    one Python loop over an address iterable, with cache sets, masks,
    latencies, and counters bound to locals, and the fill/evict cascade
    of ``MemoryHierarchy._fetch_from_below`` written out inline.  Dirty
    victim cascades (the rare path) fall back to the hierarchy's own
    ``_fill_l2``/``_fill_l3`` so the write-back logic lives in exactly
    one place.
    """

    mode = "batched"

    def __init__(self, cpu: Cpu):
        self.cpu = cpu
        #: ``(base, n_lines, mut_epoch)`` of the last ``scan_lines`` call
        #: that hit L1D on every line, or None.  See :meth:`scan_lines`.
        self._scan_memo = None
        #: Memoised ring visit cycles, keyed by
        #: ``(base, n_lines, stride, cursor_class)`` — pure modular
        #: arithmetic over an immutable ring geometry, so entries never
        #: invalidate.  See :meth:`_ring_fast`.
        self._ring_memo: dict = {}
        #: (offsets tuple, base mod line) -> (line-first offsets,
        #: word count, line count).  See :meth:`load_run`.
        self._run_memo: dict = {}

    # ------------------------------------------------------------ public API

    def scan_lines(self, base_addr: int, n_lines: int, loads_per_line: int = 1) -> None:
        if n_lines <= 0:
            return
        cpu = self.cpu
        hier = cpu.hierarchy
        memo = self._scan_memo
        if (memo is not None and memo[0] == base_addr and memo[1] == n_lines
                and memo[2] == hier.mut_epoch):
            # The previous scan_lines call covered this exact range, hit
            # L1D on every line, and nothing has touched cache state
            # since.  Replaying it re-orders each set into the ascending
            # order the previous scan already left it in — a no-op on
            # cache state — so the whole scan folds into one bulk hit
            # update.  (All-hit loads add only `issue` cycles, which is
            # dyadic, so the bulk add is bit-identical to n single adds.)
            c = cpu.counters
            n = n_lines * loads_per_line
            hier.l1d.hits += n_lines
            c.n_load_inst += n
            c.n_l1d += n
            c.l1d_hits += n
            c.cycles += n * cpu.timing.load_issue
            return
        hier.mut_epoch += 1
        impure = self._scan_walk(base_addr, n_lines)
        self._scan_memo = (
            (base_addr, n_lines, hier.mut_epoch) if impure == 0 else None
        )
        extra = loads_per_line - 1
        if extra > 0:
            c = cpu.counters
            bulk = n_lines * extra
            c.n_load_inst += bulk
            c.n_l1d += bulk
            c.l1d_hits += bulk
            c.cycles += bulk * cpu.timing.load_issue

    def load_bytes(self, addr: int, nbytes: int, dependent: bool = False) -> None:
        n_words = max(1, (nbytes + 7) // 8)
        last = addr + 8 * (n_words - 1)
        cpu = self.cpu
        cpu.hierarchy.mut_epoch += 1
        tcm = cpu.hierarchy.tcm_region
        if tcm is not None and addr < tcm.end and last >= tcm.base:
            # TCM bulk / boundary-straddle handling is identical in both
            # modes; reuse the reference implementation.
            cpu.load_bytes(addr, nbytes, dependent)
            return
        first_line = addr >> LINE_SHIFT
        extra_lines = (last >> LINE_SHIFT) - first_line
        if extra_lines == 0:
            addrs = (addr,)
        else:
            word0 = addr & 7
            addrs = [addr]
            for i in range(1, extra_lines + 1):
                addrs.append(((first_line + i) << LINE_SHIFT) | word0)
        self._load_addrs(addrs, dependent, first_only=True)
        bulk = n_words - 1 - extra_lines
        if bulk > 0:
            c = cpu.counters
            c.n_load_inst += bulk
            c.n_l1d += bulk
            c.l1d_hits += bulk
            c.cycles += bulk * cpu.timing.load_issue

    def store_bytes(self, addr: int, nbytes: int) -> None:
        n_words = max(1, (nbytes + 7) // 8)
        last = addr + 8 * (n_words - 1)
        cpu = self.cpu
        cpu.hierarchy.mut_epoch += 1
        tcm = cpu.hierarchy.tcm_region
        if tcm is not None and addr < tcm.end and last >= tcm.base:
            cpu.store_bytes(addr, nbytes)
            return
        first_line = addr >> LINE_SHIFT
        extra_lines = (last >> LINE_SHIFT) - first_line
        if extra_lines == 0:
            addrs = (addr,)
        else:
            word0 = addr & 7
            addrs = [addr]
            for i in range(1, extra_lines + 1):
                addrs.append(((first_line + i) << LINE_SHIFT) | word0)
        self._store_addrs(addrs)
        bulk = n_words - 1 - extra_lines
        if bulk > 0:
            c = cpu.counters
            c.n_store_inst += bulk
            c.n_store += bulk
            c.n_store_l1d_hit += bulk
            c.cycles += bulk * cpu.timing.store_issue

    def load_run(self, base: int, offsets: Sequence[int], dependent: bool = False) -> None:
        if not offsets:
            return
        cpu = self.cpu
        cpu.hierarchy.mut_epoch += 1
        tcm = cpu.hierarchy.tcm_region
        if tcm is not None:
            first = base + offsets[0]
            last = base + offsets[-1]
            if first < tcm.end and last >= tcm.base:
                if tcm.base <= first and last < tcm.end:
                    # Whole run in TCM: bulk accounting.
                    c = cpu.counters
                    n = len(offsets)
                    c.n_tcm_load += n
                    c.n_load_inst += n
                    if dependent:
                        latency = cpu._latency[LEVEL_TCM]
                        c.cycles += latency
                        c.stall_cycles += latency - 1.0
                        c.cycles += (n - 1) * cpu.timing.load_issue
                    else:
                        c.cycles += n * cpu.timing.load_issue
                else:
                    # Straddles the TCM boundary: exact per-op fallback.
                    load = cpu.load
                    for off in offsets:
                        load(base + off, dependent)
                        dependent = False
                return
        # The first word of each touched line takes the full path; the
        # trailing same-line words are guaranteed L1D hits (ascending
        # offsets keep the line MRU) — the reference path probes them
        # one by one, so the bulk update mirrors a probe: it counts
        # CacheLevel hits as well as the PMU counters.
        #
        # Which words are line-first depends only on the offsets tuple
        # and the base's offset within its line — and scans reuse one
        # memoised offsets tuple for every row — so the split is
        # computed once per ``(offsets, base mod line)`` and the walk
        # probes 2–3 line-first words instead of looping every word.
        #
        # Optimistic pass: probe line-first words in order while they
        # hit L1D (the warm-database common case), bailing to the full
        # inlined walk at the first miss.  The probes before the miss
        # happen in reference order; everything from the miss on is
        # handed to _load_addrs, which also runs in order.
        tup = offsets if type(offsets) is tuple else tuple(offsets)
        key = (tup, base & (LINE_SIZE - 1))
        ent = self._run_memo.get(key)
        if ent is None:
            rel = base & (LINE_SIZE - 1)
            firsts = []
            prev_line = -1
            for off in tup:
                line_rel = (rel + off) >> LINE_SHIFT
                if line_rel != prev_line:
                    prev_line = line_rel
                    firsts.append(off)
            ent = (tuple(firsts), len(tup), len(firsts))
            self._run_memo[key] = ent
        firsts, n, n_first = ent
        l1 = cpu.hierarchy.l1d
        s1 = l1._sets
        m1 = l1._set_mask
        c = cpu.counters
        issue = cpu.timing.load_issue
        hits = 0
        rest = None
        for off in firsts:
            a = base + off
            if rest is not None:
                rest.append(a)
                continue
            line = a >> LINE_SHIFT
            set1 = s1[line & m1]
            if line in set1:
                set1.move_to_end(line)
                hits += 1
            else:
                rest = [a]
        if hits:
            l1.hits += hits
            c.n_l1d += hits
            c.l1d_hits += hits
            c.n_load_inst += hits
            if dependent:
                # The run's first word hit; it alone carries the
                # dependent-load latency.
                lat_l1 = cpu._latency[LEVEL_L1D]
                c.cycles += lat_l1
                c.stall_cycles += lat_l1 - 1.0
                if hits > 1:
                    c.cycles += (hits - 1) * issue
                dependent = False
            else:
                c.cycles += hits * issue
        if rest is not None:
            if len(rest) == 1:
                # One straggler line (the common warm-run shape: every
                # line hit but the last).  The flattened single-load
                # path charges it exactly; skip _load_addrs' prologue.
                self.load_one(rest[0], dependent)
            else:
                self._load_addrs(rest, dependent, first_only=True)
        bulk = n - n_first
        if bulk > 0:
            l1.hits += bulk
            c.n_l1d += bulk
            c.l1d_hits += bulk
            c.n_load_inst += bulk
            c.cycles += bulk * issue

    def load_list(self, addrs: Iterable[int], dependent: bool = False) -> None:
        cpu = self.cpu
        hier = cpu.hierarchy
        hier.mut_epoch += 1
        # Optimistic pass, as in load_run: L1D hits (the resident-list
        # pointer-chase case) are applied inline and in order; the first
        # miss — or any TCM address — hands the remainder to the full
        # walk.  ``dependent`` applies to every load here, so the hit
        # bulk prices each hit at the dependent L1 latency.
        l1 = hier.l1d
        s1 = l1._sets
        m1 = l1._set_mask
        tcm = hier.tcm_region
        if tcm is not None:
            tbase = tcm.base
            tend = tcm.base + tcm.size
        else:
            tbase = 1
            tend = 0
        hits = 0
        rest = None
        for a in addrs:
            if rest is not None:
                rest.append(a)
                continue
            line = a >> LINE_SHIFT
            if tbase <= a < tend:
                rest = [a]
                continue
            set1 = s1[line & m1]
            if line in set1:
                set1.move_to_end(line)
                hits += 1
            else:
                rest = [a]
        if hits:
            c = cpu.counters
            l1.hits += hits
            c.n_l1d += hits
            c.l1d_hits += hits
            c.n_load_inst += hits
            if dependent:
                lat_l1 = cpu._latency[LEVEL_L1D]
                c.cycles += hits * lat_l1
                c.stall_cycles += hits * (lat_l1 - 1.0)
            else:
                c.cycles += hits * cpu.timing.load_issue
        if rest is not None:
            self._load_addrs(rest, dependent)

    def load_one(self, addr: int, dependent: bool = False) -> int:
        """One load instruction, flattened to a single frame.

        ``Machine.load`` routes here in batched mode (B-tree descents,
        buffer-pool headers, KV probes — the per-op stragglers that
        never form a run).  The L1D-hit common case is applied inline
        with exactly the reference path's counter and cycle updates;
        TCM addresses and misses hand the address to the generic walk,
        which is the proven-equivalent cascade.  Bumps the mutation
        epoch like the ``Machine.load`` wrapper it replaces.
        """
        cpu = self.cpu
        hier = cpu.hierarchy
        hier.mut_epoch += 1
        tcm = hier.tcm_region
        if tcm is None or addr < tcm.base or addr >= tcm.base + tcm.size:
            line = addr >> LINE_SHIFT
            l1 = hier.l1d
            set1 = l1._sets[line & l1._set_mask]
            if line in set1:
                set1.move_to_end(line)
                l1.hits += 1
                c = cpu.counters
                c.n_l1d += 1
                c.l1d_hits += 1
                c.n_load_inst += 1
                if dependent:
                    lat_l1 = cpu._latency[LEVEL_L1D]
                    c.cycles += lat_l1
                    c.stall_cycles += lat_l1 - 1.0
                else:
                    c.cycles += cpu.timing.load_issue
                return LEVEL_L1D
            # L1D miss, L2 hit: the dominant miss shape for the per-op
            # stragglers (B-tree nodes and page headers bounce between
            # L1D and L2).  Flattened with exactly the reference
            # cascade's state and counter updates — the lookup's LRU
            # touch and miss count, the L1 fill with its dirty-victim
            # write-back through ``_fill_l2``, the prefetcher pass, and
            # the L2-latency cycle charge.  Deeper misses fall through
            # to the reference cascade itself.
            l2 = hier.l2
            if l2 is not None:
                set2 = l2._sets[line & l2._set_mask]
                if line in set2:
                    set2.move_to_end(line)
                    l2.hits += 1
                    l1.misses += 1
                    c = cpu.counters
                    c.n_l1d += 1
                    c.n_l2 += 1
                    c.l2_hits += 1
                    if len(set1) >= l1.assoc:
                        v, vd = set1.popitem(last=False)
                        l1.evictions += 1
                        if vd:
                            l1.dirty_evictions += 1
                            c.n_writeback += 1
                            hier._fill_l2(v, True)
                    else:
                        l1._occupancy += 1
                    set1[line] = False
                    l1.fills += 1
                    hier._run_prefetcher(line)
                    c.n_load_inst += 1
                    lat = cpu._latency[LEVEL_L2]
                    if dependent:
                        c.cycles += lat
                        c.stall_cycles += lat - 1.0
                    else:
                        issue = cpu.timing.load_issue
                        c.cycles += issue
                        exposed = lat / cpu.timing.mlp - issue
                        if exposed > 0.0:
                            c.cycles += exposed
                            c.stall_cycles += exposed
                    return LEVEL_L2
        # TCM window or deep miss: the per-op model path (those misses
        # do the heavy cascade anyway, so the extra frames are noise).
        return cpu.load(addr, dependent)

    def store_one(self, addr: int) -> None:
        """One store instruction, flattened like :meth:`load_one` (the
        ``Machine.store`` batched route).  A hit refreshes LRU order,
        dirties the line, and pays the 1-cycle store-buffer issue —
        identical to ``Cpu.store`` on an L1D hit; everything else
        (TCM, write-allocate misses) takes the generic store walk."""
        cpu = self.cpu
        hier = cpu.hierarchy
        hier.mut_epoch += 1
        tcm = hier.tcm_region
        if tcm is None or addr < tcm.base or addr >= tcm.base + tcm.size:
            line = addr >> LINE_SHIFT
            l1 = hier.l1d
            set1 = l1._sets[line & l1._set_mask]
            if line in set1:
                set1.move_to_end(line)
                set1[line] = True
                l1.hits += 1
                c = cpu.counters
                c.n_store += 1
                c.n_store_l1d_hit += 1
                c.n_store_inst += 1
                c.cycles += cpu.timing.store_issue
                return
            l2 = hier.l2
            if l2 is not None:
                set2 = l2._sets[line & l2._set_mask]
                if line in set2:
                    # Write-allocate serviced from L2: the miss fetches
                    # the line into L1D dirty (an RFO); no prefetcher —
                    # it trains on demand-load misses only.
                    set2.move_to_end(line)
                    l2.hits += 1
                    l1.misses += 1
                    c = cpu.counters
                    c.n_store += 1
                    c.n_l2 += 1
                    c.l2_hits += 1
                    l1.fills += 1
                    if len(set1) >= l1.assoc:
                        v, vd = set1.popitem(last=False)
                        l1.evictions += 1
                        if vd:
                            l1.dirty_evictions += 1
                            c.n_writeback += 1
                            hier._fill_l2(v, True)
                    else:
                        l1._occupancy += 1
                    set1[line] = True
                    c.n_store_inst += 1
                    c.cycles += cpu.timing.store_issue
                    return
        cpu.store(addr)

    def load_ring(self, base: int, cursor: int, stride: int, count: int,
                  n_lines: int, dependent: bool = False) -> int:
        cpu = self.cpu
        hier = cpu.hierarchy
        if count <= 0:
            return cursor
        tcm = hier.tcm_region
        if (tcm is not None and base < tcm.end
                and base + n_lines * LINE_SIZE > tcm.base):
            # Ring overlaps the TCM window: materialise the address walk
            # and reuse load_list's exact TCM handling.
            addrs = []
            for _ in range(count):
                cursor = (cursor + stride) % n_lines
                addrs.append(base + cursor * LINE_SIZE)
            self.load_list(addrs, dependent)
            return cursor
        hier.mut_epoch += 1
        l1 = hier.l1d
        s1 = l1._sets
        m1 = l1._set_mask
        c = cpu.counters
        if dependent:
            lat_l1 = cpu._latency[LEVEL_L1D]
            hit_cycles = lat_l1
            hit_stall = lat_l1 - 1.0
        else:
            hit_cycles = cpu.timing.load_issue
            hit_stall = 0.0
        # The walk revisits the same line after `period` steps, where
        # `period = n_lines / gcd(stride, n_lines)`; the cursor values
        # within one rotation are pairwise distinct, so so are the lines
        # they touch.  Process the walk one rotation at a time with the
        # optimistic L1D-hit pass from load_list: hits are applied
        # inline (move_to_end + bulk-priced), the first miss hands the
        # rest of the rotation to the generic walk.
        step = stride % n_lines
        period = n_lines // gcd(step, n_lines) if step else 1
        if (not dependent and step
                and hier.l2 is not None and hier.l3 is not None):
            return self._ring_fast(base, cursor, stride, count, n_lines,
                                   period)
        done = 0
        while done < count:
            chunk = min(period, count - done)
            hits = 0
            rest = None
            for _ in range(chunk):
                cursor = (cursor + stride) % n_lines
                a = base + cursor * LINE_SIZE
                if rest is not None:
                    rest.append(a)
                    continue
                line = a >> LINE_SHIFT
                set1 = s1[line & m1]
                if line in set1:
                    set1.move_to_end(line)
                    hits += 1
                else:
                    rest = [a]
            if hits:
                l1.hits += hits
                c.n_l1d += hits
                c.l1d_hits += hits
                c.n_load_inst += hits
                c.cycles += hits * hit_cycles
                if hit_stall:
                    c.stall_cycles += hits * hit_stall
            if rest is not None:
                self._load_addrs(rest, dependent)
            done += chunk
            if rest is None and chunk == period:
                # A full rotation just hit L1D on every one of its
                # `period` distinct lines.  Replaying it touches exactly
                # those lines in the same order: every access hits
                # (hits never insert or evict), and per L1D set the
                # rotation's lines are re-appended behind the others in
                # the same relative order they already hold — a no-op on
                # cache state.  All remaining full rotations therefore
                # fold into one bulk hit update (hit cycles are dyadic,
                # so the bulk add is bit-identical to per-op adds), and
                # the cursor is unchanged: `period * stride` is a
                # multiple of `n_lines`.
                folds = (count - done) // period
                if folds:
                    n = folds * period
                    l1.hits += n
                    c.n_l1d += n
                    c.l1d_hits += n
                    c.n_load_inst += n
                    c.cycles += n * hit_cycles
                    if hit_stall:
                        c.stall_cycles += n * hit_stall
                    done += n
        return cursor

    def _ring_fast(self, base: int, cursor: int, stride: int, count: int,
                   n_lines: int, period: int) -> int:
        """:meth:`load_ring` for independent probes on a full hierarchy.

        The ring's visit order is pure modular arithmetic over an
        immutable geometry: from any cursor the walk traverses the
        ``period`` positions of the cursor's residue class (mod
        ``gcd(stride, n_lines)``) in a fixed cyclic order.  That cycle
        is computed once per ``(ring, class)`` and memoised as a tuple
        of *line numbers* (regions are line-aligned), so each call is a
        dict hit plus C-level tuple slices — no per-probe cursor
        arithmetic.  The per-line work happens in :meth:`_ring_lines`;
        the all-hit rotation folding is identical to the generic path
        (a zero-miss full rotation leaves cache state untouched, so
        remaining rotations fold into one bulk hit update).
        """
        cpu = self.cpu
        c = cpu.counters
        l1 = cpu.hierarchy.l1d
        base_line = base >> LINE_SHIFT
        key = (base, n_lines, stride, cursor % (n_lines // period))
        memo = self._ring_memo.get(key)
        if memo is None:
            # One cycle entry per visit: the line number plus its three
            # per-level cache sets.  The set OrderedDicts are created
            # once per cache and only ever mutated in place (``flush``
            # clears them, never replaces them), so the references stay
            # valid for the life of the machine and the per-probe
            # ``sets[line & mask]`` indexing happens once per ring, not
            # once per access.
            hier2 = cpu.hierarchy
            s1, m1 = hier2.l1d._sets, hier2.l1d._set_mask
            s2, m2 = hier2.l2._sets, hier2.l2._set_mask
            s3, m3 = hier2.l3._sets, hier2.l3._set_mask
            cycle = []
            pos = cursor
            for _ in range(period):
                pos = (pos + stride) % n_lines
                line = base_line + pos
                cycle.append((line, s1[line & m1], s2[line & m2],
                              s3[line & m3]))
            inv = {entry[0] - base_line: j for j, entry in enumerate(cycle)}
            memo = (tuple(cycle), inv)
            self._ring_memo[key] = memo
        cycle, inv = memo
        idx = inv[cursor]
        issue = cpu.timing.load_issue
        # The steady-state verified walk (see _ring_steady) assumes the
        # prefetcher's moving slot can never match `line - 1` between
        # consecutive probes, which holds whenever the line-space step
        # is not exactly one.
        ext_safe = stride % n_lines != 1
        done = 0
        while done < count:
            chunk = min(period, count - done)
            first = idx + 1
            if first >= period:
                first -= period
            end = first + chunk
            if end <= period:
                seg = cycle[first:end]
            else:
                seg = cycle[first:] + cycle[:end - period]
            if ext_safe:
                misses = self._ring_steady(seg, inv, base_line, first,
                                           period)
            else:
                misses = 0
            if misses < chunk:
                misses += self._ring_lines(seg[misses:] if misses else seg)
            done += chunk
            idx = first + chunk - 1
            if idx >= period:
                idx -= period
            if misses == 0 and chunk == period:
                # A full rotation of pure L1D hits: replaying it is a
                # no-op on cache state, so the remaining full rotations
                # fold into one bulk hit update (see load_ring).
                folds = (count - done) // period
                if folds:
                    n = folds * period
                    l1.hits += n
                    c.n_l1d += n
                    c.l1d_hits += n
                    c.n_load_inst += n
                    c.cycles += n * issue
                    done += n
        return cycle[idx][0] - base_line

    def _ring_steady(self, seg, inv, base_line: int, first: int,
                     period: int) -> int:
        """Verified steady-state prefix of one ring rotation segment.

        A large ring in its steady state misses L1D and L2 and hits L3
        on *every* probe, and the prefetcher's response to every probe
        is the same fixed-slot tracker restart.  Both facts are cheap
        to verify up front without mutating anything:

        * the prefetcher outcome is a restart for the whole segment iff
          no tracker's last-line sits at (or one below) a segment line —
          checked against the memoised cycle index in O(streams) — and
          the moving slot (rewritten each probe with the previous ring
          line) can never match because consecutive probes differ by
          the line-space step, which the caller guarantees is neither 0
          nor 1;
        * the miss/miss/hit shape is checked per probe with plain
          ``in`` probes *before* that probe mutates anything.

        Each verified probe then runs a pared-down body: the three LRU
        updates and the two demand fills, with every derivable counter
        (`fills == misses`, `occupancy == fills - evictions`, hit
        totals) accumulated once at the end and the prefetcher's net
        effect — one slot write with the last line — applied after the
        loop.  Dirty victims still write back through the hierarchy's
        own ``_fill_l2``/``_fill_l3``, so the cascade logic stays in
        one place.  The first probe that fails verification ends the
        prefix; the caller hands the rest of the segment to the exact
        generic walk with all prior probes fully applied, so the split
        is invisible.  Returns the number of probes processed (each one
        an L1D miss).
        """
        cpu = self.cpu
        hier = cpu.hierarchy
        pf = hier.prefetcher
        if (not pf.enabled or pf.n_streams <= 0
                or pf.train_threshold != 2):
            return 0
        run = pf._run
        if 0 in run:
            return 0
        chunk = len(seg)
        last = pf._last
        inv_get = inv.get
        for v in last:
            iv = inv_get(v - base_line)
            if iv is not None and (iv - first) % period < chunk:
                return 0
            iv = inv_get(v + 1 - base_line)
            if iv is not None and (iv - first) % period < chunk:
                return 0
        # The scan above proves no tracker can match any segment line,
        # so every probe's prefetcher outcome is a restart of one fixed
        # slot: the first slot with ``run == 1`` or, when every slot is
        # already trained, the round-robin victim ``observe`` would
        # evict (that branch writes no counters, so its net effect is
        # the same slot write).  Nothing inside the loop reads tracker
        # state, so the whole sequence nets to one flush-time write.
        try:
            s = run.index(1)
            restart_victim = False
        except ValueError:
            restart_victim = True
            s = -1
        timing = cpu.timing
        issue = timing.load_issue
        exp3 = cpu._latency[LEVEL_L3] / timing.mlp - issue
        if exp3 <= 0.0:
            return 0
        c = cpu.counters
        cyc = c.cycles
        stall = c.stall_cycles
        if not ((issue * 256.0).is_integer() and (exp3 * 256.0).is_integer()
                and (cyc * 256.0).is_integer() and (stall * 256.0).is_integer()
                and cyc < 2.0 ** 43):
            # Bulk cycle accounting below reassociates the per-probe
            # adds; that is bit-exact only while every operand (and so
            # every intermediate sum) is a multiple of 2**-8 small
            # enough that no sum ever rounds: multiples of 2**-8 below
            # 2**44 need at most 52 significand bits.
            return 0
        l1 = hier.l1d
        l2 = hier.l2
        l3 = hier.l3
        a1 = l1.assoc
        a2 = l2.assoc
        fill_l2 = hier._fill_l2
        fill_l3 = hier._fill_l3
        u1 = dev1 = u2 = dev2 = 0
        j = 0
        for line, set1, set2, set3 in seg:
            if line in set1 or line in set2 or line not in set3:
                break
            set3.move_to_end(line)
            if len(set2) >= a2:
                v, vd = set2.popitem(last=False)
                if vd:
                    dev2 += 1
                    fill_l3(v, True)
            else:
                u2 += 1
            set2[line] = False
            if len(set1) >= a1:
                v, vd = set1.popitem(last=False)
                if vd:
                    dev1 += 1
                    fill_l2(v, True)
            else:
                u1 += 1
            set1[line] = False
            j += 1
        if j == 0:
            return 0
        # In steady state both caches are full, so underfull inserts
        # (u1/u2) are the rare case; evictions are derived at flush.
        ev1 = j - u1
        ev2 = j - u2
        c.cycles = cyc + j * issue + j * exp3
        c.stall_cycles = stall + j * exp3
        c.n_load_inst += j
        c.n_l1d += j
        c.n_l2 += j
        c.n_l3 += j
        c.l3_hits += j
        c.n_writeback += dev1 + dev2
        l1.misses += j
        l1.fills += j
        l1.evictions += ev1
        l1.dirty_evictions += dev1
        l1._occupancy += j - ev1
        l2.misses += j
        l2.fills += j
        l2.evictions += ev2
        l2.dirty_evictions += dev2
        l2._occupancy += j - ev2
        l3.hits += j
        # Every probe restarted the same tracker; the net prefetcher
        # state is one write of the last line processed (plus the
        # round-robin victim bump when no slot was still untrained).
        if restart_victim:
            s = pf._victim
            pf._victim = (s + 1) % pf.n_streams
            run[s] = 1
        last[s] = seg[j - 1][0]
        pf._l2up[s] = -1
        pf._l3up[s] = -1
        return j

    def store_repeat(self, addr: int, n: int) -> None:
        if n <= 0:
            return
        cpu = self.cpu
        cpu.hierarchy.mut_epoch += 1
        c = cpu.counters
        tcm = cpu.hierarchy.tcm_region
        if tcm is not None and tcm.base <= addr < tcm.end:
            c.n_tcm_store += n
            c.n_store_inst += n
            c.cycles += n * cpu.timing.store_issue
            return
        self._store_addrs((addr,))
        if n > 1:
            # Repeat stores to one address hit the (now dirty, MRU) L1D
            # line; the reference path probes each one.
            bulk = n - 1
            cpu.hierarchy.l1d.hits += bulk
            c.n_store += bulk
            c.n_store_l1d_hit += bulk
            c.n_store_inst += bulk
            c.cycles += bulk * cpu.timing.store_issue

    # ------------------------------------------------------------ workhorses

    def _scan_walk(self, base_addr: int, n_lines: int) -> int:
        """Walk ``n_lines`` sequential lines, engaging the cold-stream
        fast path (:meth:`_cold_stride`) wherever a trained prefetcher
        stream makes the per-line miss cascade regular; everything else
        takes the generic inlined walk.  Returns the impure-access
        count (the scan-replay-memo contract of :meth:`_load_addrs`).
        """
        hier = self.cpu.hierarchy
        pf = hier.prefetcher
        tcm = hier.tcm_region
        if (not pf.enabled or hier.l2 is None or hier.l3 is None
                or pf.degree < 1 or pf.l3_extra < 1
                or (tcm is not None
                    and base_addr < tcm.end
                    and base_addr + n_lines * LINE_SIZE > tcm.base)):
            # The closed-form cascade can never apply here (no trained
            # windows, no L2/L3 to stage into, or TCM addresses inside
            # the range): single generic walk, the pre-fast-path shape.
            return self._load_addrs(
                range(base_addr, base_addr + n_lines * LINE_SIZE, LINE_SIZE)
            )
        line0 = base_addr >> LINE_SHIFT
        impure = 0
        done = 0
        stalled_attempts = 0
        while done < n_lines:
            n = self._cold_stride(line0 + done, n_lines - done)
            if n:
                stalled_attempts = 0
                impure += n
                done += n
                continue
            stalled_attempts += 1
            if stalled_attempts >= 3:
                # Not converging to the fast-path shape (warm data, a
                # stream trained elsewhere, heavy interference): finish
                # generically in one call.
                chunk = n_lines - done
            else:
                chunk = min(_STRIDE_RETRY_CHUNK, n_lines - done)
            a = base_addr + done * LINE_SIZE
            impure += self._load_addrs(
                range(a, a + chunk * LINE_SIZE, LINE_SIZE)
            )
            done += chunk
        return impure

    def _cold_stride(self, line: int, max_lines: int) -> int:
        """Execute demand lines ``[line, line + k)`` of a sequential
        scan in closed form for the largest safe ``k <= max_lines``;
        returns ``k`` (0 when the fast path does not apply at ``line``).

        Entry preconditions, checked with arithmetic only: the first
        prefetcher tracker that would match ``line`` is trained and
        positioned exactly at ``line - 1`` with both window watermarks
        in the steady-state shape, so each ``observe`` emits exactly
        one L2-window line (``line + degree``) and one L3-window line
        (``line + degree + l3_extra``).  The stride is clipped before
        any line where an earlier tracker would fire instead (capture
        or same-line neutrality), since trackers are matched in table
        order.

        Checked per line, before any mutation: the demand line misses
        L1D and hits L2 — the regular cold cascade (demand miss → L2
        prefetch hit → steady-state LRU eviction).  The prefetch fills
        handle every membership and dirty-victim combination inline in
        exact reference order, so irregularity there does not abort
        the stride.  Integer counters and the ``_Stream`` state are
        bulk-advanced on exit; cycle/stall additions run per line in
        the exact reference sequence, so the result is bit-identical
        for arbitrary float timing parameters.
        """
        cpu = self.cpu
        hier = cpu.hierarchy
        pf = hier.prefetcher
        degree = pf.degree
        dist3 = degree + pf.l3_extra
        # ---- locate the tracker observe() would use for this line.
        match = -1
        end = line + max_lines
        for i, ll in enumerate(pf._last):
            if ll == line - 1:
                match = i
                break
            if ll == line:
                return 0        # observe() would take the neutral path
            if ll >= line:
                # This earlier tracker fires first once demand reaches
                # ll: clip the stride just before that.
                end = min(end, ll)
        if (match < 0 or pf._run[match] < pf.train_threshold
                or pf._l2up[match] != line - 1 + degree
                or pf._l3up[match] != line - 1 + dist3
                or end <= line):
            return 0
        c = cpu.counters
        l1 = hier.l1d
        l2 = hier.l2
        l3 = hier.l3
        s1 = l1._sets
        m1 = l1._set_mask
        a1 = l1.assoc
        s2 = l2._sets
        m2 = l2._set_mask
        a2 = l2.assoc
        s3 = l3._sets
        m3 = l3._set_mask
        a3 = l3.assoc
        fill_l2 = hier._fill_l2
        fill_l3 = hier._fill_l3
        timing = cpu.timing
        issue = timing.load_issue
        exp_l2 = cpu._latency[LEVEL_L2] / timing.mlp - issue
        pos_exp = exp_l2 > 0.0
        cyc = c.cycles
        stall = c.stall_cycles
        ev1 = dev1 = occ1 = 0
        f2 = ev2 = dev2 = occ2 = 0
        f3 = ev3 = dev3 = occ3 = 0
        n_pf_l2 = n_pf_l3 = n_wb = 0
        # Steady-state specialisation: when every set of every level is
        # at capacity (an O(1) check via the incremental occupancy
        # totals), each fill is known to evict, so the per-line
        # ``len() >= assoc`` tests and occupancy tallies disappear; and
        # when the per-line cycle increments are quarter-cycle dyadics
        # (both presets; see the module docstring) the float adds fold
        # into one exact bulk multiply after the loop.  Fullness is
        # preserved by the loop itself: every popitem is paired with an
        # insert and ``_fill_l2``/``_fill_l3`` never shrink a set.
        # The bulk multiply is exact only while everything stays on a
        # 1/16-cycle grid below 2**49 — increments *and* accumulators —
        # so any addition order gives the same bits.  Otherwise fall
        # back to the per-line float sequence.
        full = (l1._occupancy == l1.n_sets * a1
                and l2._occupancy == l2.n_sets * a2
                and l3._occupancy == l3.n_sets * a3
                and issue * 16.0 == int(issue * 16.0)
                and (not pos_exp or exp_l2 * 16.0 == int(exp_l2 * 16.0))
                and cyc * 16.0 == int(cyc * 16.0)
                and stall * 16.0 == int(stall * 16.0)
                and (cyc + (end - line)
                     * (issue + (exp_l2 if pos_exp else 0.0)) < 2.0 ** 49))
        k = 0
        if full:
            # Three segments.  A *checked* warmup long enough to evict
            # every pre-existing L1D line (``n_sets * assoc`` demand
            # fills, one per set per ``n_sets`` lines) and to witness a
            # clean steady cascade; then, if the proofs below hold, an
            # *unchecked* middle segment that drops every membership
            # test; then (on re-entry) checked again for the junk-laden
            # tail.  The unchecked segment is sound because each skipped
            # check is discharged against the actual state at the switch
            # point:
            #
            # * ``ln not in L1D``: the warmup evicted all pre-stride
            #   lines and in-stride demand lines are strictly below ln;
            # * ``ln in L2`` would-be check: promotion at ``ln - degree``
            #   inserted it (the streak condition) and no other fill
            #   touches its set within ``degree < n_sets(L2)`` lines —
            #   guarded by move_to_end's KeyError as a hard backstop;
            # * ``p2 not in L2`` / ``p3 not in L3``: in-stride inserts
            #   are strictly increasing and the snapshot horizon ``h``
            #   stops the segment before any resident pre-stride line
            #   could collide with a future p2/p3;
            # * ``p2 in L3``: its p3-fill ran ``l3_extra`` lines earlier
            #   (fresh, per the streak condition) and no fill touches
            #   its set within ``l3_extra < n_sets(L3)`` lines;
            # * L1/L2 victims are clean: L1 victims are in-stride demand
            #   lines, L2 victims are in-stride promotions or pre-stride
            #   lines from a snapshot with zero dirty entries, and no
            #   dirty-victim cascade ran in this stride (dev1 == dev2 ==
            #   0), so only the L3 victim needs its dirty bit read.
            warm = l1.n_sets * a1
            if warm < pf.l3_extra:
                warm = pf.l3_extra
            switch_at = 0
            if (degree < l2.n_sets and dist3 - degree < l3.n_sets
                    and end - line >= warm + 512):
                switch_at = line + warm
            streak = 0
            pos = line
            seg_end = switch_at if switch_at else end
            aborted = False
            while True:
                for ln in range(pos, seg_end):
                    set1 = s1[ln & m1]
                    if ln in set1:
                        aborted = True   # warm line: not a cold miss
                        break
                    set2 = s2[ln & m2]
                    try:
                        # Demand: L1D miss serviced by an L2 hit
                        # (reference order: L1 lookup-miss, L2
                        # lookup-hit, fill L1, observe + fills).
                        set2.move_to_end(ln)
                    except KeyError:
                        aborted = True   # deeper miss: irregular cascade
                        break
                    v, vd = set1.popitem(False)
                    if vd:
                        dev1 += 1
                        n_wb += 1
                        fill_l2(v, True)
                    set1[ln] = False
                    # Closed-form observe: one L2-window line ...
                    p2 = ln + degree
                    pset2 = s2[p2 & m2]
                    if p2 not in pset2:
                        if p2 in s3[p2 & m3]:
                            f2 += 1
                            v, vd = pset2.popitem(False)
                            if vd:
                                dev2 += 1
                                n_wb += 1
                                fill_l3(v, True)
                            pset2[p2] = False
                            st = 1
                        else:
                            n_pf_l3 += 1
                            pset3 = s3[p2 & m3]
                            v, vd = pset3.popitem(False)
                            if vd:
                                dev3 += 1
                                n_wb += 1
                            pset3[p2] = False
                            st = 0
                    else:
                        st = 0
                    # ... and one L3-window line.
                    p3 = ln + dist3
                    pset3 = s3[p3 & m3]
                    if p3 not in pset3:
                        n_pf_l3 += 1
                        v, vd = pset3.popitem(False)
                        if vd:
                            dev3 += 1
                            n_wb += 1
                        pset3[p3] = False
                        if st:
                            streak += 1
                        else:
                            streak = 0
                    else:
                        streak = 0
                    k += 1
                if aborted or seg_end >= end:
                    break
                # At the switch point: discharge the proof obligations,
                # bound the junk horizon, and run unchecked to it.  Any
                # failed obligation falls back to the checked loop for
                # the rest of the stride (seg_end is already extended).
                pos = seg_end
                seg_end = end
                if dev1 or dev2 or streak < pf.l3_extra:
                    continue
                h = end
                dirty2 = False
                b2 = pos + degree
                for cset in s2:
                    for j, d in cset.items():
                        if d:
                            dirty2 = True
                        if j >= b2 and j - degree < h:
                            h = j - degree
                if dirty2:
                    continue
                b3 = pos + dist3
                for cset in s3:
                    for j in cset:
                        if j >= b3 and j - dist3 < h:
                            h = j - dist3
                if h <= pos:
                    continue
                ku = 0
                try:
                    for ln in range(pos, h):
                        s2[ln & m2].move_to_end(ln)
                        set1 = s1[ln & m1]
                        set1.popitem(False)
                        set1[ln] = False
                        p2 = ln + degree
                        pset2 = s2[p2 & m2]
                        pset2.popitem(False)
                        pset2[p2] = False
                        p3 = ln + dist3
                        pset3 = s3[p3 & m3]
                        if pset3.popitem(False)[1]:
                            dev3 += 1
                            n_wb += 1
                        pset3[p3] = False
                        ku += 1
                except KeyError:
                    pass        # backstop; the proofs make this dead
                f2 += ku
                n_pf_l3 += ku
                k += ku
                break
            if k == 0:
                return 0
            # Every fill evicted; the float adds are exact dyadics, so
            # the bulk multiply equals the per-line reference sequence
            # bit for bit.
            n_pf_l2 = f2
            ev1 = k
            ev2 = f2
            f3 = n_pf_l3
            ev3 = n_pf_l3
            cyc += k * issue
            if pos_exp:
                cyc += k * exp_l2
                stall += k * exp_l2
        else:
            for ln in range(line, end):
                set1 = s1[ln & m1]
                if ln in set1:
                    break       # warm line: not a cold miss
                set2 = s2[ln & m2]
                if ln not in set2:
                    break       # deeper miss: irregular cascade
                set2.move_to_end(ln)
                if len(set1) >= a1:
                    v, vd = set1.popitem(last=False)
                    ev1 += 1
                    if vd:
                        dev1 += 1
                        n_wb += 1
                        fill_l2(v, True)
                else:
                    occ1 += 1
                set1[ln] = False
                p2 = ln + degree
                pset2 = s2[p2 & m2]
                if p2 not in pset2:
                    if p2 in s3[p2 & m3]:
                        n_pf_l2 += 1
                        f2 += 1
                        if len(pset2) >= a2:
                            v, vd = pset2.popitem(last=False)
                            ev2 += 1
                            if vd:
                                dev2 += 1
                                n_wb += 1
                                fill_l3(v, True)
                        else:
                            occ2 += 1
                        pset2[p2] = False
                    else:
                        n_pf_l3 += 1
                        pset3 = s3[p2 & m3]
                        f3 += 1
                        if len(pset3) >= a3:
                            v, vd = pset3.popitem(last=False)
                            ev3 += 1
                            if vd:
                                dev3 += 1
                                n_wb += 1
                        else:
                            occ3 += 1
                        pset3[p2] = False
                p3 = ln + dist3
                pset3 = s3[p3 & m3]
                if p3 not in pset3:
                    n_pf_l3 += 1
                    f3 += 1
                    if len(pset3) >= a3:
                        v, vd = pset3.popitem(last=False)
                        ev3 += 1
                        if vd:
                            dev3 += 1
                            n_wb += 1
                    else:
                        occ3 += 1
                    pset3[p3] = False
                # Timing, in the exact reference sequence.
                cyc += issue
                if pos_exp:
                    cyc += exp_l2
                    stall += exp_l2
                k += 1
            if k == 0:
                return 0
        c.cycles = cyc
        c.stall_cycles = stall
        c.n_load_inst += k
        c.n_l1d += k
        c.n_l2 += k
        c.l2_hits += k
        c.n_pf_l2 += n_pf_l2
        c.n_pf_l3 += n_pf_l3
        c.n_writeback += n_wb
        l1.bulk_account(misses=k, fills=k, evictions=ev1,
                        dirty_evictions=dev1, occupancy=occ1)
        l2.bulk_account(hits=k, fills=f2, evictions=ev2,
                        dirty_evictions=dev2, occupancy=occ2)
        l3.bulk_account(fills=f3, evictions=ev3,
                        dirty_evictions=dev3, occupancy=occ3)
        # Bulk-advance the stream exactly as k observe() calls would.
        last = line + k - 1
        pf._last[match] = last
        pf._run[match] += k
        pf._l2up[match] = last + degree
        pf._l3up[match] = last + dist3
        pf.n_pf_l2_issued += k
        pf.n_pf_l3_issued += k
        return k

    def _ring_lines(self, lines) -> int:
        """Demand loads for one ring rotation segment, by line number.

        Semantically an exact copy of :meth:`_load_addrs` specialised
        for its :meth:`_ring_fast` caller: the ring never overlaps the
        TCM window (``load_ring`` already routed that case to
        :meth:`load_list`), probes are independent loads, L2 and L3
        both exist, and the region is line-aligned so the walk receives
        line numbers directly.  Counters that are per-access invariants
        (``n_load_inst``, ``n_l1d``) or derivable from the hit/miss
        split (``fills == misses`` per level, minus prefetch fills
        accounted separately) are computed once per call.  The
        prefetcher's no-match tracker restart is inlined — a coprime
        ring stride never extends a sequential stream, so the common
        :meth:`~repro.sim.prefetcher.StreamPrefetcher.observe` outcome
        is exactly that restart; any access that *could* match a
        tracker (or a non-default train threshold with no idle slot) is
        handed to the real ``observe`` unchanged.  Returns the number
        of L1D misses (zero means a pure-hit rotation, which
        :meth:`_ring_fast` may fold).
        """
        cpu = self.cpu
        c = cpu.counters
        hier = cpu.hierarchy
        l1 = hier.l1d
        l2 = hier.l2
        l3 = hier.l3
        a1 = l1.assoc
        s2 = l2._sets
        m2 = l2._set_mask
        a2 = l2.assoc
        fill_l2 = hier._fill_l2
        s3 = l3._sets
        m3 = l3._set_mask
        a3 = l3.assoc
        fill_l3 = hier._fill_l3
        pf = hier.prefetcher
        observe = pf.observe
        pf_on = pf.enabled and pf.n_streams > 0
        pf_last = pf._last
        pf_run = pf._run
        pf_l2up = pf._l2up
        pf_l3up = pf._l3up
        pf_thr2 = pf.train_threshold == 2
        timing = cpu.timing
        issue = timing.load_issue
        mlp = timing.mlp
        lat = cpu._latency
        exp_l2 = lat[LEVEL_L2] / mlp - issue
        exp_l3 = lat[LEVEL_L3] / mlp - issue
        exp_mem = lat[LEVEL_MEM] / mlp - issue

        n = len(lines)
        h1 = 0
        h2 = mis2 = f2 = ev2 = dev2 = occ2 = 0
        h3 = mis3 = f3 = ev3 = dev3 = occ3 = 0
        ev1 = dev1 = occ1 = 0
        n_wb = 0
        n_pf_l2 = 0
        n_pf_l3 = 0
        cyc = c.cycles
        stall = c.stall_cycles

        for line, set1, set2, set3 in lines:
            if line in set1:
                set1.move_to_end(line)
                h1 += 1
                cyc += issue
                continue
            # ---------------- L1D miss: walk down, fill on the way back
            if line in set2:
                set2.move_to_end(line)
                h2 += 1
                exp = exp_l2
            else:
                mis2 += 1
                if line in set3:
                    set3.move_to_end(line)
                    h3 += 1
                    exp = exp_l3
                else:
                    mis3 += 1
                    exp = exp_mem
                    # fill L3 (line known absent)
                    f3 += 1
                    if len(set3) >= a3:
                        v, vd = set3.popitem(last=False)
                        ev3 += 1
                        if vd:
                            dev3 += 1
                            n_wb += 1
                    else:
                        occ3 += 1
                    set3[line] = False
                # fill L2 (line known absent)
                f2 += 1
                if len(set2) >= a2:
                    v, vd = set2.popitem(last=False)
                    ev2 += 1
                    if vd:
                        dev2 += 1
                        n_wb += 1
                        fill_l3(v, True)
                else:
                    occ2 += 1
                set2[line] = False
            # fill L1 (line known absent)
            if len(set1) >= a1:
                v, vd = set1.popitem(last=False)
                ev1 += 1
                if vd:
                    dev1 += 1
                    n_wb += 1
                    fill_l2(v, True)
            else:
                occ1 += 1
            set1[line] = False
            # prefetcher (demand loads only, after the fills -- same
            # order as MemoryHierarchy.load)
            if pf_on:
                if line - 1 in pf_last or line in pf_last:
                    pf2, pf3 = observe(line)
                    if pf2:
                        for pline in pf2:
                            if pline not in s2[pline & m2]:
                                if pline in s3[pline & m3]:
                                    n_pf_l2 += 1
                                    pset = s2[pline & m2]
                                    f2 += 1
                                    if len(pset) >= a2:
                                        v, vd = pset.popitem(last=False)
                                        ev2 += 1
                                        if vd:
                                            dev2 += 1
                                            n_wb += 1
                                            fill_l3(v, True)
                                    else:
                                        occ2 += 1
                                    pset[pline] = False
                                else:
                                    n_pf_l3 += 1
                                    pset = s3[pline & m3]
                                    f3 += 1
                                    if len(pset) >= a3:
                                        v, vd = pset.popitem(last=False)
                                        ev3 += 1
                                        if vd:
                                            dev3 += 1
                                            n_wb += 1
                                    else:
                                        occ3 += 1
                                    pset[pline] = False
                    if pf3:
                        for pline in pf3:
                            if pline not in s3[pline & m3]:
                                n_pf_l3 += 1
                                pset = s3[pline & m3]
                                f3 += 1
                                if len(pset) >= a3:
                                    v, vd = pset.popitem(last=False)
                                    ev3 += 1
                                    if vd:
                                        dev3 += 1
                                        n_wb += 1
                                else:
                                    occ3 += 1
                                pset[pline] = False
                elif 0 in pf_run:
                    slot = pf_run.index(0)
                    pf_last[slot] = line
                    pf_run[slot] = 1
                    pf_l2up[slot] = -1
                    pf_l3up[slot] = -1
                elif pf_thr2 and 1 in pf_run:
                    slot = pf_run.index(1)
                    pf_last[slot] = line
                    pf_run[slot] = 1
                    pf_l2up[slot] = -1
                    pf_l3up[slot] = -1
                else:
                    observe(line)
            cyc += issue
            if exp > 0.0:
                cyc += exp
                stall += exp

        c.cycles = cyc
        c.stall_cycles = stall
        c.n_load_inst += n
        c.n_l1d += n
        c.l1d_hits += h1
        l1.hits += h1
        mis1 = n - h1
        if mis1:
            c.n_l2 += mis1
            c.l2_hits += h2
            c.n_l3 += mis2
            c.l3_hits += h3
            c.n_mem += mis3
            c.n_writeback += n_wb
            c.n_pf_l2 += n_pf_l2
            c.n_pf_l3 += n_pf_l3
            l1.bulk_account(misses=mis1, fills=mis1, evictions=ev1,
                            dirty_evictions=dev1, occupancy=occ1)
            l2.bulk_account(hits=h2, misses=mis2, fills=f2,
                            evictions=ev2, dirty_evictions=dev2,
                            occupancy=occ2)
            l3.bulk_account(hits=h3, misses=mis3, fills=f3,
                            evictions=ev3, dirty_evictions=dev3,
                            occupancy=occ3)
        return mis1

    def _load_addrs(self, addrs: Iterable[int], dependent: bool = False,
                    first_only: bool = False) -> int:
        """Demand loads for every address in ``addrs``, inlined.

        ``dependent`` applies to all loads, or — with ``first_only`` —
        to just the first one (the ``load_run`` contract).  Returns the
        number of "impure" accesses (L1D misses + TCM hits); a zero
        return means the run was pure L1D hits, which is what the
        ``scan_lines`` replay memo needs to know.
        """
        cpu = self.cpu
        c = cpu.counters
        hier = cpu.hierarchy
        l1 = hier.l1d
        l2 = hier.l2
        l3 = hier.l3
        s1 = l1._sets
        m1 = l1._set_mask
        a1 = l1.assoc
        if l2 is not None:
            s2 = l2._sets
            m2 = l2._set_mask
            a2 = l2.assoc
            fill_l2 = hier._fill_l2
        if l3 is not None:
            s3 = l3._sets
            m3 = l3._set_mask
            a3 = l3.assoc
            fill_l3 = hier._fill_l3
        tcm = hier.tcm_region
        if tcm is not None:
            tbase = tcm.base
            tend = tcm.base + tcm.size
        else:
            tbase = 1
            tend = 0
        observe = hier.prefetcher.observe
        lat = cpu._latency
        lat_tcm = lat[LEVEL_TCM]
        lat_l1 = lat[LEVEL_L1D]
        lat_l2 = lat[LEVEL_L2]
        lat_l3 = lat[LEVEL_L3]
        lat_mem = lat[LEVEL_MEM]
        timing = cpu.timing
        issue = timing.load_issue
        mlp = timing.mlp
        # Same expression the reference path evaluates per op.
        exp_l2 = lat_l2 / mlp - issue
        exp_l3 = lat_l3 / mlp - issue
        exp_mem = lat_mem / mlp - issue

        n_inst = 0
        n_l1d = 0
        l1d_hits = 0
        n_l2 = 0
        l2_hits = 0
        n_l3 = 0
        l3_hits = 0
        n_mem = 0
        n_tcm = 0
        n_wb = 0
        n_pf_l2 = 0
        n_pf_l3 = 0
        h1 = mis1 = f1 = ev1 = dev1 = occ1 = 0
        h2 = mis2 = f2 = ev2 = dev2 = occ2 = 0
        h3 = mis3 = f3 = ev3 = dev3 = occ3 = 0
        cyc = c.cycles
        stall = c.stall_cycles
        dep = dependent

        for addr in addrs:
            n_inst += 1
            if tbase <= addr < tend:
                n_tcm += 1
                if dep:
                    cyc += lat_tcm
                    stall += lat_tcm - 1.0
                    if first_only:
                        dep = False
                else:
                    cyc += issue
                continue
            line = addr >> LINE_SHIFT
            set1 = s1[line & m1]
            if line in set1:
                set1.move_to_end(line)
                h1 += 1
                n_l1d += 1
                l1d_hits += 1
                if dep:
                    cyc += lat_l1
                    stall += lat_l1 - 1.0
                    if first_only:
                        dep = False
                else:
                    cyc += issue
                continue
            # ---------------- L1D miss: walk down, fill on the way back
            n_l1d += 1
            mis1 += 1
            if l2 is None:
                n_mem += 1
                lvl_lat = lat_mem
                exp = exp_mem
            else:
                n_l2 += 1
                set2 = s2[line & m2]
                if line in set2:
                    set2.move_to_end(line)
                    h2 += 1
                    l2_hits += 1
                    lvl_lat = lat_l2
                    exp = exp_l2
                else:
                    mis2 += 1
                    if l3 is None:
                        n_mem += 1
                        lvl_lat = lat_mem
                        exp = exp_mem
                    else:
                        n_l3 += 1
                        set3 = s3[line & m3]
                        if line in set3:
                            set3.move_to_end(line)
                            h3 += 1
                            l3_hits += 1
                            lvl_lat = lat_l3
                            exp = exp_l3
                        else:
                            mis3 += 1
                            n_mem += 1
                            lvl_lat = lat_mem
                            exp = exp_mem
                            # fill L3 (line known absent)
                            f3 += 1
                            if len(set3) >= a3:
                                v, vd = set3.popitem(last=False)
                                ev3 += 1
                                if vd:
                                    dev3 += 1
                                    n_wb += 1
                            else:
                                occ3 += 1
                            set3[line] = False
                    # fill L2 (line known absent)
                    f2 += 1
                    if len(set2) >= a2:
                        v, vd = set2.popitem(last=False)
                        ev2 += 1
                        if vd:
                            dev2 += 1
                            n_wb += 1
                            if l3 is not None:
                                fill_l3(v, True)
                    else:
                        occ2 += 1
                    set2[line] = False
            # fill L1 (line known absent)
            f1 += 1
            if len(set1) >= a1:
                v, vd = set1.popitem(last=False)
                ev1 += 1
                if vd:
                    dev1 += 1
                    n_wb += 1
                    if l2 is not None:
                        fill_l2(v, True)
                    elif l3 is not None:
                        fill_l3(v, True)
            else:
                occ1 += 1
            set1[line] = False
            # prefetcher (demand loads only, after the fills — same
            # order as MemoryHierarchy.load)
            pf2, pf3 = observe(line)
            for pline in pf2:
                if l2 is not None and pline not in s2[pline & m2]:
                    if l3 is not None and pline in s3[pline & m3]:
                        n_pf_l2 += 1
                        pset = s2[pline & m2]
                        f2 += 1
                        if len(pset) >= a2:
                            v, vd = pset.popitem(last=False)
                            ev2 += 1
                            if vd:
                                dev2 += 1
                                n_wb += 1
                                fill_l3(v, True)
                        else:
                            occ2 += 1
                        pset[pline] = False
                    else:
                        n_pf_l3 += 1
                        if l3 is not None:
                            pset = s3[pline & m3]
                            f3 += 1
                            if len(pset) >= a3:
                                v, vd = pset.popitem(last=False)
                                ev3 += 1
                                if vd:
                                    dev3 += 1
                                    n_wb += 1
                            else:
                                occ3 += 1
                            pset[pline] = False
            for pline in pf3:
                if l3 is not None and pline not in s3[pline & m3]:
                    n_pf_l3 += 1
                    pset = s3[pline & m3]
                    f3 += 1
                    if len(pset) >= a3:
                        v, vd = pset.popitem(last=False)
                        ev3 += 1
                        if vd:
                            dev3 += 1
                            n_wb += 1
                    else:
                        occ3 += 1
                    pset[pline] = False
            if dep:
                cyc += lvl_lat
                stall += lvl_lat - 1.0
                if first_only:
                    dep = False
            else:
                cyc += issue
                if exp > 0.0:
                    cyc += exp
                    stall += exp

        c.cycles = cyc
        c.stall_cycles = stall
        c.n_load_inst += n_inst
        c.n_l1d += n_l1d
        c.l1d_hits += l1d_hits
        l1.hits += h1
        if mis1:
            c.n_l2 += n_l2
            c.l2_hits += l2_hits
            c.n_l3 += n_l3
            c.l3_hits += l3_hits
            c.n_mem += n_mem
            c.n_writeback += n_wb
            c.n_pf_l2 += n_pf_l2
            c.n_pf_l3 += n_pf_l3
            l1.bulk_account(misses=mis1, fills=f1, evictions=ev1,
                            dirty_evictions=dev1, occupancy=occ1)
            if l2 is not None:
                l2.bulk_account(hits=h2, misses=mis2, fills=f2,
                                evictions=ev2, dirty_evictions=dev2,
                                occupancy=occ2)
            if l3 is not None:
                l3.bulk_account(hits=h3, misses=mis3, fills=f3,
                                evictions=ev3, dirty_evictions=dev3,
                                occupancy=occ3)
        if n_tcm:
            c.n_tcm_load += n_tcm
        return mis1 + n_tcm

    def _store_addrs(self, addrs: Iterable[int]) -> None:
        """Stores for every address in ``addrs``, inlined (write-back +
        write-allocate; stores cost one issue slot, never stall)."""
        cpu = self.cpu
        c = cpu.counters
        hier = cpu.hierarchy
        l1 = hier.l1d
        l2 = hier.l2
        l3 = hier.l3
        s1 = l1._sets
        m1 = l1._set_mask
        a1 = l1.assoc
        if l2 is not None:
            s2 = l2._sets
            m2 = l2._set_mask
            a2 = l2.assoc
            fill_l2 = hier._fill_l2
        if l3 is not None:
            s3 = l3._sets
            m3 = l3._set_mask
            a3 = l3.assoc
            fill_l3 = hier._fill_l3
        tcm = hier.tcm_region
        if tcm is not None:
            tbase = tcm.base
            tend = tcm.base + tcm.size
        else:
            tbase = 1
            tend = 0

        n_inst = 0
        n_store = 0
        n_store_hit = 0
        n_l2 = 0
        l2_hits = 0
        n_l3 = 0
        l3_hits = 0
        n_mem = 0
        n_tcm = 0
        n_wb = 0
        h1 = mis1 = f1 = ev1 = dev1 = occ1 = 0
        h2 = mis2 = f2 = ev2 = dev2 = occ2 = 0
        h3 = mis3 = f3 = ev3 = dev3 = occ3 = 0

        for addr in addrs:
            n_inst += 1
            if tbase <= addr < tend:
                n_tcm += 1
                continue
            n_store += 1
            line = addr >> LINE_SHIFT
            set1 = s1[line & m1]
            if line in set1:
                set1.move_to_end(line)
                set1[line] = True
                h1 += 1
                n_store_hit += 1
                continue
            # ------------- store miss: write-allocate (RFO), then dirty
            mis1 += 1
            if l2 is not None:
                n_l2 += 1
                set2 = s2[line & m2]
                if line in set2:
                    set2.move_to_end(line)
                    h2 += 1
                    l2_hits += 1
                else:
                    mis2 += 1
                    if l3 is None:
                        n_mem += 1
                    else:
                        n_l3 += 1
                        set3 = s3[line & m3]
                        if line in set3:
                            set3.move_to_end(line)
                            h3 += 1
                            l3_hits += 1
                        else:
                            mis3 += 1
                            n_mem += 1
                            f3 += 1
                            if len(set3) >= a3:
                                v, vd = set3.popitem(last=False)
                                ev3 += 1
                                if vd:
                                    dev3 += 1
                                    n_wb += 1
                            else:
                                occ3 += 1
                            set3[line] = False
                    f2 += 1
                    if len(set2) >= a2:
                        v, vd = set2.popitem(last=False)
                        ev2 += 1
                        if vd:
                            dev2 += 1
                            n_wb += 1
                            if l3 is not None:
                                fill_l3(v, True)
                    else:
                        occ2 += 1
                    set2[line] = False
            else:
                n_mem += 1
            f1 += 1
            if len(set1) >= a1:
                v, vd = set1.popitem(last=False)
                ev1 += 1
                if vd:
                    dev1 += 1
                    n_wb += 1
                    if l2 is not None:
                        fill_l2(v, True)
                    elif l3 is not None:
                        fill_l3(v, True)
            else:
                occ1 += 1
            set1[line] = True

        c.cycles += n_inst * cpu.timing.store_issue
        c.n_store_inst += n_inst
        c.n_store += n_store
        c.n_store_l1d_hit += n_store_hit
        c.n_l2 += n_l2
        c.l2_hits += l2_hits
        c.n_l3 += n_l3
        c.l3_hits += l3_hits
        c.n_mem += n_mem
        c.n_tcm_store += n_tcm
        c.n_writeback += n_wb
        l1.bulk_account(hits=h1, misses=mis1, fills=f1, evictions=ev1,
                        dirty_evictions=dev1, occupancy=occ1)
        if l2 is not None:
            l2.bulk_account(hits=h2, misses=mis2, fills=f2,
                            evictions=ev2, dirty_evictions=dev2,
                            occupancy=occ2)
        if l3 is not None:
            l3.bulk_account(hits=h3, misses=mis3, fills=f3,
                            evictions=ev3, dirty_evictions=dev3,
                            occupancy=occ3)
