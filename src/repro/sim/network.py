"""Simulated cluster interconnect: latency, bandwidth, NIC energy.

One :class:`NetworkModel` connects every machine in a simulated
cluster.  Three concerns, all deterministic:

* **Latency** — each link gets a static propagation latency drawn once
  at construction from a seeded RNG (base latency jittered ±20%), so
  the same root seed always builds the same network.  A message's wire
  delay is that latency plus a serialisation term ``bytes / bandwidth``.
* **NIC energy** — a message is a DMA copy: the sender charges
  ``load_bytes`` of the payload out of a dedicated per-machine tx
  buffer and the receiver charges ``store_bytes`` into its rx buffer,
  so per-byte NIC joules are priced by the same calibrated dE tables
  as every other micro-op (§2.6 of the paper, applied to the wire).
  ``payload_factor`` scales the charged bytes; 0 models a free NIC
  (used by the single-node-equivalence tests).
* **Faults** — two seeded sites from :mod:`repro.faults`:
  ``net.partition`` takes the message's link down for a fixed episode
  (messages sent while it is down are lost *without* further draws, so
  one partition is one draw), and ``net.drop`` silently loses single
  messages.  Lost messages still burn sender-side NIC energy — that is
  the point: the joules are spent whether or not the bytes arrive.
"""

from __future__ import annotations

from typing import Optional

from repro.seeding import derive_seed, seeded_rng

#: Per-machine DMA staging buffer (bytes); charged transfers are capped
#: at this size so the walk never leaves the buffer region.
NIC_BUFFER_BYTES = 4096

#: ``send`` outcome markers (also the wasted-energy reason labels).
DELIVERED = "delivered"
LOST_DROP = "net_drop"
LOST_PARTITION = "net_partition"


class NetworkModel:
    """Deterministic point-to-point network over named machines."""

    def __init__(self, machines: dict, seed: int, *,
                 base_latency_s: float = 2e-4,
                 bytes_per_s: float = 1.25e8,
                 payload_factor: float = 1.0,
                 injector=None):
        self.machines = dict(machines)
        self.bytes_per_s = bytes_per_s
        self.payload_factor = payload_factor
        self.injector = injector
        # Static per-link latencies, drawn once in sorted-name order so
        # construction consumes the same randomness in every process.
        rng = seeded_rng(derive_seed(seed, "cluster", "net", "latency"),
                        "network latency")
        names = sorted(self.machines)
        self._latency: dict[tuple, float] = {}
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                self._latency[(a, b)] = (
                    base_latency_s * (0.8 + 0.4 * rng.random())
                )
        self._bufs: dict[tuple, int] = {}
        #: Links currently partitioned: link -> episode end (sim time).
        self._down_until: dict[tuple, float] = {}
        self.messages = 0
        self.bytes_sent = 0
        self.dropped = 0
        self.partitioned = 0
        self.partition_episodes = 0

    # ------------------------------------------------------------ topology

    @staticmethod
    def _link(src: str, dst: str) -> tuple:
        return (src, dst) if src <= dst else (dst, src)

    def latency_s(self, src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        return self._latency[self._link(src, dst)]

    def delay_s(self, src: str, dst: str, nbytes: int) -> float:
        return self.latency_s(src, dst) + nbytes / self.bytes_per_s

    def link_latencies(self) -> dict:
        """JSON-ready per-link latency map (report material)."""
        return {f"{a}-{b}": s for (a, b), s in sorted(self._latency.items())}

    # ------------------------------------------------------------ NIC energy

    def _buf(self, name: str, direction: str) -> int:
        addr = self._bufs.get((name, direction))
        if addr is None:
            region = self.machines[name].address_space.alloc(
                NIC_BUFFER_BYTES, label=f"net/{name}/{direction}")
            addr = region.base
            self._bufs[(name, direction)] = addr
        return addr

    def _charged(self, nbytes: int) -> int:
        return min(int(nbytes * self.payload_factor), NIC_BUFFER_BYTES)

    def charge_tx(self, name: str, nbytes: int) -> None:
        """Sender-side DMA read of the payload (charged micro-ops)."""
        charged = self._charged(nbytes)
        if charged > 0:
            self.machines[name].load_bytes(self._buf(name, "tx"), charged)

    def charge_rx(self, name: str, nbytes: int) -> None:
        """Receiver-side DMA write of the payload (charged micro-ops)."""
        charged = self._charged(nbytes)
        if charged > 0:
            self.machines[name].store_bytes(self._buf(name, "rx"), charged)

    # ------------------------------------------------------------ transport

    def send(self, src: str, dst: str, nbytes: int,
             now: float) -> tuple[str, Optional[float]]:
        """Route one message; returns ``(status, arrival_s)``.

        ``status`` is :data:`DELIVERED` (arrival time set),
        :data:`LOST_PARTITION` or :data:`LOST_DROP` (arrival None).
        The caller charges tx/rx energy itself so the joules land
        inside the right tracer span.
        """
        self.messages += 1
        self.bytes_sent += nbytes
        link = self._link(src, dst)
        down_until = self._down_until.get(link)
        if down_until is not None:
            if now < down_until:
                # Ongoing episode: lost, no draw consumed.
                self.partitioned += 1
                return LOST_PARTITION, None
            del self._down_until[link]
        if self.injector is not None:
            if self.injector.net_partition():
                self._down_until[link] = (
                    now + self.injector.plan.net_partition_s
                )
                self.partition_episodes += 1
                self.partitioned += 1
                return LOST_PARTITION, None
            if self.injector.net_drop():
                self.dropped += 1
                return LOST_DROP, None
        return DELIVERED, now + self.delay_s(src, dst, nbytes)
