"""Set-associative, write-back, write-allocate cache level.

The cache works on *line numbers* (``address >> LINE_SHIFT``), not byte
addresses; the hierarchy does the shift once per access.  Replacement is
true LRU per set, implemented with an :class:`collections.OrderedDict`
whose ``move_to_end`` is C-speed — the simulator's hot path.

A line entry maps ``line -> dirty?``.  ``lookup`` answers hits (and
refreshes recency); ``fill`` inserts a line and reports the victim, if
any, so the hierarchy can write dirty victims back to the next level.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.errors import ConfigError
from repro.sim.address_space import LINE_SIZE


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class CacheLevel:
    """One level of a set-associative cache.

    Parameters
    ----------
    name:
        Human-readable label ("L1D", "L2", ...), used in stats and errors.
    size:
        Capacity in bytes.
    assoc:
        Ways per set.  ``size`` must be divisible by ``assoc * LINE_SIZE``
        and the resulting set count must be a power of two.
    """

    __slots__ = ("name", "size", "assoc", "n_sets", "_set_mask", "_sets",
                 "hits", "misses", "fills", "evictions", "dirty_evictions",
                 "_occupancy")

    def __init__(self, name: str, size: int, assoc: int):
        if size <= 0 or assoc <= 0:
            raise ConfigError(f"{name}: size and assoc must be positive")
        if size % (assoc * LINE_SIZE) != 0:
            raise ConfigError(
                f"{name}: size {size} not divisible by assoc*line "
                f"({assoc}*{LINE_SIZE})"
            )
        n_sets = size // (assoc * LINE_SIZE)
        if not _is_power_of_two(n_sets):
            raise ConfigError(f"{name}: set count {n_sets} is not a power of two")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(n_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self._occupancy = 0

    # ------------------------------------------------------------------ hot path

    def lookup(self, line: int, write: bool = False) -> bool:
        """Probe the cache for ``line``.

        Returns True on a hit (refreshing LRU order and, for writes,
        marking the line dirty).  Returns False on a miss — the caller is
        expected to ``fill`` after servicing the miss from below.
        """
        cache_set = self._sets[line & self._set_mask]
        if line in cache_set:
            cache_set.move_to_end(line)
            if write:
                cache_set[line] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, line: int, dirty: bool = False) -> Optional[tuple[int, bool]]:
        """Insert ``line`` (most-recently-used).

        Returns ``(victim_line, victim_dirty)`` when an eviction happened,
        else ``None``.  Filling a line that is already present refreshes
        it and merges the dirty bit without evicting.
        """
        cache_set = self._sets[line & self._set_mask]
        if line in cache_set:
            cache_set.move_to_end(line)
            if dirty:
                cache_set[line] = True
            return None
        self.fills += 1
        victim = None
        if len(cache_set) >= self.assoc:
            victim_line, victim_dirty = cache_set.popitem(last=False)
            self.evictions += 1
            if victim_dirty:
                self.dirty_evictions += 1
            victim = (victim_line, victim_dirty)
        else:
            self._occupancy += 1
        cache_set[line] = dirty
        return victim

    # ------------------------------------------------------------------ utilities

    def bulk_account(self, hits: int = 0, misses: int = 0, fills: int = 0,
                     evictions: int = 0, dirty_evictions: int = 0,
                     occupancy: int = 0) -> None:
        """Apply a batch of per-run stat deltas in one call.

        The batched executor (:mod:`repro.sim.batch`) tallies per-level
        events in loop locals and flushes them here once per run, so the
        stat fields stay plain integers on the hot path while the
        bookkeeping lives next to the per-op mutators above.
        """
        self.hits += hits
        self.misses += misses
        self.fills += fills
        self.evictions += evictions
        self.dirty_evictions += dirty_evictions
        self._occupancy += occupancy

    def contains(self, line: int) -> bool:
        """Non-mutating presence probe (no LRU update, no stats)."""
        return line in self._sets[line & self._set_mask]

    def invalidate(self, line: int) -> bool:
        """Drop a line if present; returns whether it was present."""
        cache_set = self._sets[line & self._set_mask]
        if cache_set.pop(line, None) is not None:
            self._occupancy -= 1
            return True
        return False

    def flush(self) -> None:
        """Empty the cache and keep the statistics."""
        for cache_set in self._sets:
            cache_set.clear()
        self._occupancy = 0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.dirty_evictions = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident (tracked incrementally)."""
        return self._occupancy

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheLevel({self.name}, {self.size}B, {self.assoc}-way, "
            f"hits={self.hits}, misses={self.misses})"
        )
