"""Performance monitoring unit: the counters the methodology reads.

The paper's breakdown (§2.4) needs, per workload:

* ``N_m`` for ``m in {L1D, L2, L3}`` — loads that *access* that level,
  i.e. the sum of hits and misses there (step-by-step replication means a
  DRAM load also accesses L1D, L2 and L3 on the way);
* ``N_mem`` — L3 miss count;
* ``N_Reg2L1D`` — store hits in L1D;
* ``N_pf_l2`` / ``N_pf_l3`` — prefetches into L2 / into L3;
* ``N_stall`` — stall cycles due to memory access;
* instruction counts per class (for BLI and for ``E_other`` estimation).

This mirrors what Linux perf / ocperf read from the real PMU.  The PMU is
deliberately *count only*: it knows nothing about energy, so the
methodology cannot cheat by peeking at the simulator's hidden per-event
energy table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


#: Instruction classes tracked by the PMU.  "other" covers instructions the
#: methodology does not model individually (address generation, moves, ...).
INSTRUCTION_CLASSES = ("load", "store", "add", "nop", "mul", "cmp", "branch", "other")


@dataclass
class PmuCounters:
    """A snapshot of every counter; plain integers/floats, cheap to copy."""

    # Demand load accesses per level (hits + misses at that level).
    n_l1d: int = 0
    n_l2: int = 0
    n_l3: int = 0
    n_mem: int = 0
    # Hits per level (for hit-rate style metrics, Table 1).
    l1d_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    # Stores.
    n_store: int = 0
    n_store_l1d_hit: int = 0
    # Prefetches (into L2 from L3, into L3 from DRAM).
    n_pf_l2: int = 0
    n_pf_l3: int = 0
    # TCM accesses (loads+stores served by tightly coupled memory).
    n_tcm_load: int = 0
    n_tcm_store: int = 0
    # Write-backs of dirty lines out of a level.
    n_writeback: int = 0
    # Timing.
    cycles: float = 0.0
    stall_cycles: float = 0.0
    # Instruction counts per class.
    n_load_inst: int = 0
    n_store_inst: int = 0
    n_add: int = 0
    n_nop: int = 0
    n_mul: int = 0
    n_cmp: int = 0
    n_branch: int = 0
    n_other: int = 0

    # ------------------------------------------------------------ derived

    @property
    def instructions(self) -> int:
        return (
            self.n_load_inst + self.n_store_inst + self.n_add + self.n_nop
            + self.n_mul + self.n_cmp + self.n_branch + self.n_other
        )

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1d_miss_rate(self) -> float:
        return 1.0 - self.l1d_hits / self.n_l1d if self.n_l1d else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return 1.0 - self.l2_hits / self.n_l2 if self.n_l2 else 0.0

    @property
    def l3_miss_rate(self) -> float:
        return 1.0 - self.l3_hits / self.n_l3 if self.n_l3 else 0.0

    @property
    def store_l1d_hit_rate(self) -> float:
        return self.n_store_l1d_hit / self.n_store if self.n_store else 0.0

    def body_loop_instruction_pct(self, *classes: str) -> float:
        """BLI metric of Table 1: share of instructions in given classes."""
        total = self.instructions
        if not total:
            return 0.0
        per_class = {
            "load": self.n_load_inst,
            "store": self.n_store_inst,
            "add": self.n_add,
            "nop": self.n_nop,
            "mul": self.n_mul,
            "cmp": self.n_cmp,
            "branch": self.n_branch,
            "other": self.n_other,
        }
        return 100.0 * sum(per_class[c] for c in classes) / total

    # The snapshot/delta operations below run four times per serve
    # quantum (settle + span credit, enter and exit); they work on the
    # instance __dict__ with a precomputed field-name tuple instead of
    # calling dataclasses.fields() per invocation.

    def minus(self, other: "PmuCounters") -> "PmuCounters":
        """Counter delta ``self - other`` (for windowed measurements)."""
        delta = PmuCounters()
        dd = delta.__dict__
        sd = self.__dict__
        od = other.__dict__
        for name in _FIELD_NAMES:
            dd[name] = sd[name] - od[name]
        return delta

    def accumulate(self, delta: "PmuCounters") -> None:
        """In-place ``self += delta`` (spans/metrics aggregate windows)."""
        sd = self.__dict__
        dd = delta.__dict__
        for name in _FIELD_NAMES:
            sd[name] = sd[name] + dd[name]

    def copy(self) -> "PmuCounters":
        snap = PmuCounters()
        snap.__dict__.update(self.__dict__)
        return snap

    def as_dict(self, skip_zero: bool = False) -> dict:
        """Plain-dict rendering (for JSON trace export)."""
        sd = self.__dict__
        if skip_zero:
            return {name: sd[name] for name in _FIELD_NAMES if sd[name]}
        return {name: sd[name] for name in _FIELD_NAMES}


#: Field names of :class:`PmuCounters`, resolved once (hot-path ops
#: above iterate this instead of calling ``dataclasses.fields``).
_FIELD_NAMES = tuple(f.name for f in fields(PmuCounters))


@dataclass
class Pmu:
    """Live counters plus snapshot support.

    The CPU and hierarchy mutate :attr:`counters` directly (it is the hot
    path); measurement code uses :meth:`snapshot`/:meth:`since`.
    """

    counters: PmuCounters = field(default_factory=PmuCounters)

    def reset(self) -> None:
        self.counters = PmuCounters()

    def snapshot(self) -> PmuCounters:
        return self.counters.copy()

    def since(self, snapshot: PmuCounters) -> PmuCounters:
        return self.counters.minus(snapshot)
