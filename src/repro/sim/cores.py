"""Virtual cores: time-slicing one simulated machine N ways.

The :class:`~repro.sim.machine.Machine` is a single energy/time
authority — one package, one PMU, one RAPL meter — and every micro-op
is priced serially.  Serving many concurrent queries still needs a
notion of *parallel* progress: a :class:`CoreSet` layers N virtual
cores over one machine.  Work executes serially on the machine (the
energy accounting stays exact), while each core keeps its own virtual
wall clock, advanced by the machine-time delta of every quantum it
runs.  Queueing delay and latency are computed against the virtual
clocks, so N cores drain a queue N-ways even though their joules are
priced one quantum at a time.

Context switches are real work: installing a different query on a core
touches scheduler state (run queues, a TSS analogue) and repopulates
L1D lines the outgoing query owned.  :meth:`CoreSet.context_switch`
charges that as micro-ops on the machine — hot loads/stores against a
scheduler-state region plus a stride over a cold "kernel" region —
so multiprogramming has the energy cost the paper's L1D analysis
predicts it should.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigError
from repro.sim.address_space import LINE_SIZE
from repro.sim.machine import Machine


@dataclass(frozen=True)
class ContextSwitchCost:
    """Micro-op bill of one context switch (register save/restore,
    run-queue manipulation, cache repopulation)."""

    state_loads: int = 96
    state_stores: int = 64
    cold_lines: int = 32
    other_ops: int = 160
    branches: int = 24


@dataclass
class Core:
    """One virtual core: an index and a virtual wall clock."""

    index: int
    #: Virtual time up to which this core's work is accounted.
    clock_s: float = 0.0
    #: Opaque tag of the context last installed (None = fresh core).
    resident: Optional[object] = None
    #: Requests currently multiprogrammed on this core (owned by the
    #: serving layer; the core itself only time-stamps their work).
    run_list: list = field(default_factory=list)


class CoreSet:
    """N virtual cores over one machine (see module docstring)."""

    def __init__(self, machine: Machine, n_cores: int,
                 switch_cost: Optional[ContextSwitchCost] = None,
                 label: str = "cores"):
        if n_cores < 1:
            raise ConfigError(f"need at least one core, got {n_cores}")
        self.machine = machine
        self.cores = [Core(index=i) for i in range(n_cores)]
        self.switch_cost = switch_cost or ContextSwitchCost()
        self.context_switches = 0
        #: Optional :class:`~repro.faults.FaultInjector`; when set, a
        #: quantum may end in an injected core stall (charged as idle).
        self.injector = None
        self.stalls = 0
        #: Hot scheduler state (run queues, current-task pointers).
        self._state = machine.address_space.alloc(
            2048, label=f"{label}/sched-state"
        )
        #: Cold kernel working set walked on each switch — evicts the
        #: outgoing query's L1D lines, the real cost of multiprogramming.
        self._cold = machine.address_space.alloc(
            max(LINE_SIZE, self.switch_cost.cold_lines * 4 * LINE_SIZE),
            label=f"{label}/kernel",
        )
        self._cold_cursor = 0

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    # ------------------------------------------------------------ switching

    def context_switch(self, core: Core, incoming: object) -> bool:
        """Install ``incoming`` on ``core``; charges the switch bill when
        the core's resident context differs.  Returns True if charged."""
        if core.resident is incoming:
            return False
        cost = self.switch_cost
        machine = self.machine
        machine.hot_loads(self._state.base, cost.state_loads)
        machine.hot_stores(self._state.base, cost.state_stores)
        # Coprime stride over the cold set; load_ring lets the batched
        # executor fold all-hit rotations into bulk accounting.
        self._cold_cursor = machine.exec.load_ring(
            self._cold.base, self._cold_cursor, 7,
            cost.cold_lines, self._cold.n_lines,
        )
        machine.other(cost.other_ops)
        machine.branch(cost.branches)
        core.resident = incoming
        self.context_switches += 1
        machine.metrics.counter("cores.context_switches").inc()
        return True

    # ------------------------------------------------------------ running

    def run_on(self, core: Core, work: Callable[[], None]) -> float:
        """Run one quantum of ``work`` on ``core``.

        The machine prices the work (energy, counters); the core's
        virtual clock advances by the machine-time delta (busy plus any
        in-quantum disk idle).  The clock is advanced even when ``work``
        raises — a faulted quantum's partial work happened and must stay
        on this core's timeline.  Returns the delta in seconds.
        """
        machine = self.machine
        machine.settle()
        start = machine.time_s
        try:
            work()
            if self.injector is not None and self.injector.core_stall():
                self.stalls += 1
                machine.metrics.counter("cores.stalls").inc()
                with machine.tracer.span("core.stall", category="fault",
                                         fault="core.stall", wasted="stall"):
                    machine.idle(self.injector.plan.core_stall_s)
        finally:
            machine.settle()
            delta = machine.time_s - start
            core.clock_s += delta
        return delta

    def quiesce_until(self, t_s: float) -> float:
        """All cores idle until virtual time ``t_s``.

        Charges package idle (background energy) for the gap past the
        last core to go quiet and advances every core's clock.  Returns
        the idle seconds charged.
        """
        quiet = max(core.clock_s for core in self.cores)
        gap = t_s - quiet
        if gap > 0:
            self.machine.idle(gap)
        for core in self.cores:
            core.clock_s = max(core.clock_s, t_s)
        return max(gap, 0.0)
