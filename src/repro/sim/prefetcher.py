"""Stream prefetcher modelled on the paper's "L2 hardware prefetcher".

The i7-4790 exposes four prefetchers; the paper only counts the two that
the L2 hardware prefetcher generates — prefetches *into L2* (from L3) and
prefetches *into L3* (from DRAM) — because only those have performance
counters (§2.3).  This module mirrors that: it watches the stream of L1D
demand misses, detects ascending sequential line streams, and asks the
hierarchy to stage upcoming lines into L2 and L3 ahead of demand.

Detection is a small table of independent stream trackers.  A tracker
confirms a stream after ``train_threshold`` consecutive +1-line accesses
and then keeps a prefetch window ``degree`` lines ahead of demand.  This
is enough to make sequential scans (the dominant pattern of the database
workloads in §3) hit in L2/L1D while leaving pointer-chasing untouched —
which is exactly the behavioural contrast the paper relies on.

Two windows, two watermarks.  Each tracker maintains the L2 window
(``degree`` lines ahead of demand) and, beyond it, the L3 window
(``l3_extra`` further lines) with *independent* high-water marks: a line
first enters the L3 window — issued as a prefetch into L3, from DRAM —
and is issued again as a prefetch into L2 once demand advances far
enough that the line falls inside the L2 window.  The hierarchy turns
that second issue into an L3→L2 promotion, which is exactly the paper's
countable "prefetch into L2" kind.  In steady state every demand miss
therefore issues one L2 line (at distance ``degree``) and one L3 line
(at distance ``degree + l3_extra``) — the regular cascade the batched
executor's cold-scan fast path replays in closed form (see
:meth:`repro.sim.batch.BatchExecutor.scan_lines`).

The prefetcher watches *demand-load* misses only.  Store (RFO) misses
never reach :meth:`observe` — the paper counts only the two L2-prefetch
kinds with performance counters, and on the modelled part the L2
streamer does not train on the write-allocate traffic of the store
workloads in §3.1 (their energy is dominated by the writeback path).
Both execution engines implement the same choice (see
``MemoryHierarchy.store`` and ``BatchExecutor._store_addrs``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


_NO_LINES = range(0)


class _Stream:
    """Live view of one tracker slot.

    The authoritative tracker state lives in the prefetcher's parallel
    integer lists (so :meth:`StreamPrefetcher.observe` can scan them at
    C speed with ``list.index``); this view keeps the historical
    per-stream attribute API for tests, metrics, and the batched
    executor's cold-stream fast path.
    """

    __slots__ = ("_pf", "_i")

    def __init__(self, pf: "StreamPrefetcher", i: int) -> None:
        object.__setattr__(self, "_pf", pf)
        object.__setattr__(self, "_i", i)

    @property
    def last_line(self) -> int:
        return self._pf._last[self._i]

    @last_line.setter
    def last_line(self, value: int) -> None:
        self._pf._last[self._i] = value

    @property
    def run_length(self) -> int:
        return self._pf._run[self._i]

    @run_length.setter
    def run_length(self, value: int) -> None:
        self._pf._run[self._i] = value

    #: High-water mark of lines ever issued toward L2 (the near window).
    @property
    def l2_up_to(self) -> int:
        return self._pf._l2up[self._i]

    @l2_up_to.setter
    def l2_up_to(self, value: int) -> None:
        self._pf._l2up[self._i] = value

    #: High-water mark of lines ever issued toward L3 (the far window).
    @property
    def prefetched_up_to(self) -> int:
        return self._pf._l3up[self._i]

    @prefetched_up_to.setter
    def prefetched_up_to(self, value: int) -> None:
        self._pf._l3up[self._i] = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"_Stream(last_line={self.last_line}, "
                f"run_length={self.run_length}, l2_up_to={self.l2_up_to}, "
                f"prefetched_up_to={self.prefetched_up_to})")


@dataclass
class StreamPrefetcher:
    """Sequential stream detector issuing L2/L3 prefetch requests.

    Parameters
    ----------
    n_streams:
        Number of concurrent streams tracked (round-robin replacement).
    train_threshold:
        Consecutive sequential misses needed before prefetching starts.
    degree:
        How many lines ahead of demand the L2 window is kept.
    l3_extra:
        Additional lines beyond the L2 window staged only into L3.
    """

    n_streams: int = 8
    train_threshold: int = 2
    degree: int = 4
    l3_extra: int = 8
    enabled: bool = True
    #: Lifetime stats (read by the machine's metrics collector).
    n_trained: int = 0
    n_pf_l2_issued: int = 0
    n_pf_l3_issued: int = 0
    _streams: list = field(default_factory=list, repr=False)
    _victim: int = 0

    def __post_init__(self) -> None:
        n = self.n_streams
        #: Parallel tracker state, scanned with C-speed list ops.
        self._last = [-2] * n
        self._run = [0] * n
        self._l2up = [-1] * n
        self._l3up = [-1] * n
        self._streams = [_Stream(self, i) for i in range(n)]

    def reset(self) -> None:
        n = self.n_streams
        self._last[:] = [-2] * n
        self._run[:] = [0] * n
        self._l2up[:] = [-1] * n
        self._l3up[:] = [-1] * n
        self._victim = 0

    def reset_stats(self) -> None:
        self.n_trained = 0
        self.n_pf_l2_issued = 0
        self.n_pf_l3_issued = 0

    def observe(self, line: int) -> tuple[range, range]:
        """Feed one L1D-miss line number to the prefetcher.

        Returns ``(l2_lines, l3_lines)`` — the ranges of line numbers to
        stage into L2 and (beyond those) into L3.  Both are empty when the
        prefetcher is disabled or the access does not extend a trained
        stream.
        """
        if not self.enabled or not self.n_streams:
            return _NO_LINES, _NO_LINES
        # The historical semantics are a slot-order scan checking
        # "extends a stream" (last_line + 1 == line) before "repeats the
        # stream head" (last_line == line) per slot; the first slot
        # matching either wins with its condition.  ``list.index`` finds
        # each condition's first slot at C speed, and the smaller index
        # is the winner the Python-level scan would have picked.
        last = self._last
        prev = line - 1
        ext = last.index(prev) if prev in last else -1
        rep = last.index(line) if line in last else -1
        if ext >= 0 and (rep < 0 or ext < rep):
            run = self._run
            last[ext] = line
            length = run[ext] + 1
            run[ext] = length
            threshold = self.train_threshold
            if length < threshold:
                return _NO_LINES, _NO_LINES
            if length == threshold:
                self.n_trained += 1
            # The two windows advance independently: the L2 window
            # covers (line, line + degree], the L3 window the
            # l3_extra lines beyond it.  Each emits only lines its
            # own watermark has not issued yet, so a line staged
            # into L3 when it was far ahead is re-issued toward L2
            # once it falls inside the near window (an L3→L2
            # promotion at the hierarchy).
            l2_end = line + 1 + self.degree
            l3_end = l2_end + self.l3_extra
            l2_start = max(line + 1, self._l2up[ext] + 1)
            l3_start = max(l2_end, self._l3up[ext] + 1)
            l2_lines = range(l2_start, max(l2_start, l2_end))
            l3_lines = range(l3_start, max(l3_start, l3_end))
            if not l2_lines and not l3_lines:
                return l2_lines, l3_lines
            if l2_lines:
                self._l2up[ext] = l2_end - 1
            if l3_lines:
                self._l3up[ext] = l3_end - 1
            self.n_pf_l2_issued += len(l2_lines)
            self.n_pf_l3_issued += len(l3_lines)
            return l2_lines, l3_lines
        if rep >= 0:
            # Repeated miss on the same line (e.g. conflict churn):
            # neither extends nor breaks the stream.
            return _NO_LINES, _NO_LINES
        # No tracker matched: start (or restart) a stream.  Prefer an
        # idle slot, then a still-untrained one; only when every slot
        # holds a trained stream does the round-robin victim pointer
        # evict one — a single interleaved irregular miss stream must
        # not tear down trained sequential streams while free slots
        # exist.
        run = self._run
        if 0 in run:
            slot = run.index(0)
        else:
            threshold = self.train_threshold
            slot = -1
            if threshold == 2:
                # Only value below a threshold of 2 left is 1.
                if 1 in run:
                    slot = run.index(1)
            else:
                for i, length in enumerate(run):
                    if length < threshold:
                        slot = i
                        break
            if slot < 0:
                slot = self._victim
                self._victim = (slot + 1) % self.n_streams
        last[slot] = line
        run[slot] = 1
        self._l2up[slot] = -1
        self._l3up[slot] = -1
        return _NO_LINES, _NO_LINES
