"""Block-device model for the buffer-pool's backing store.

The paper's servers use a local SATA disk; the CPU is *idle* while a
page is read (disk DMA does the work), which is why disk time belongs to
the Idle-CPU side of Figure 1 and why cold, I/O-heavy phases let the
EIST governor drop the P-state (Figure 5's spread).

The model is deliberately simple: a fixed seek/latency cost plus a
throughput term, and a sequentiality bonus when consecutive reads touch
adjacent block numbers.

Fault injection: when an :class:`~repro.faults.FaultInjector` is
installed on :attr:`DiskModel.injector`, reads may suffer a latency
spike (the access-latency term is multiplied) or fail transiently —
:class:`~repro.errors.TransientDiskError` carries the device time the
failed attempt burned so the caller can charge it before retrying.
With no injector the read path is byte-identical to the seed model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransientDiskError


@dataclass
class DiskModel:
    """Latency model of a local disk.

    Parameters roughly follow a 7200 rpm SATA drive: ~8 ms random access,
    ~150 MB/s sequential throughput.
    """

    random_latency_s: float = 8e-3
    seq_latency_s: float = 0.2e-3
    throughput_bytes_per_s: float = 150e6

    def __post_init__(self) -> None:
        self._last_block = -2
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: Optional :class:`~repro.faults.FaultInjector` (chaos runs only).
        self.injector = None
        self.fault_errors = 0
        self.fault_slowdowns = 0

    def read_time(self, block: int, nbytes: int) -> float:
        """Seconds to read ``nbytes`` at block number ``block``.

        With an injector installed the read may be slowed or may raise
        :class:`~repro.errors.TransientDiskError`; the failed attempt is
        still counted in the device stats (the platter spun either way)
        and the exception carries the elapsed device time.
        """
        sequential = block == self._last_block + 1
        self._last_block = block
        self.reads += 1
        self.bytes_read += nbytes
        latency = self.seq_latency_s if sequential else self.random_latency_s
        injector = self.injector
        if injector is not None:
            if injector.disk_slow():
                latency *= injector.plan.disk_slow_factor
                self.fault_slowdowns += 1
            if injector.disk_error():
                self.fault_errors += 1
                raise TransientDiskError(
                    block, latency + nbytes / self.throughput_bytes_per_s
                )
        return latency + nbytes / self.throughput_bytes_per_s

    def write_time(self, block: int, nbytes: int) -> float:
        """Seconds to write ``nbytes`` at block number ``block``."""
        sequential = block == self._last_block + 1
        self._last_block = block
        self.writes += 1
        self.bytes_written += nbytes
        latency = self.seq_latency_s if sequential else self.random_latency_s
        return latency + nbytes / self.throughput_bytes_per_s

    def reset_stats(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self._last_block = -2
        self.fault_errors = 0
        self.fault_slowdowns = 0
