"""Calibration: solving dE_m from the micro-benchmark energies (§2.5.4).

The solution order follows the paper's energy models exactly:

1. ``B_L1D_array`` only loads from L1D without stalls:
   ``dE_L1D = E / N_L1D``.
2. ``B_L1D_list`` adds stall cycles:
   ``dE_stall = (E - dE_L1D * N_L1D) / N_stall``.
3. ``B_L2`` / ``B_L3`` / ``B_mem`` peel one layer at a time (Eq. 2):
   loading from layer ``m`` also loads through every higher layer, so
   those contributions (and the stall energy) are subtracted first.
4. ``B_Reg2L1D``: ``dE_Reg2L1D = E / N_Reg2L1D``.
5. Prefetch energies by assumption: ``dE_pf_L2 = dE_L3``,
   ``dE_pf_L3 = dE_mem`` (following [18]'s "energy is mainly consumed
   moving data between layers").
6. ``B_add`` / ``B_nop`` price the verification estimator's
   ``E_other`` model.

Calibration runs with the prefetcher off and a pinned P-state
(§2.5.3), which callers get by default through
:class:`repro.micro.runner.RuntimeConfig`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Optional

from repro.errors import CalibrationError
from repro.core.model import DeltaE
from repro.micro.benchmarks import mbs_for, prepare
from repro.micro.measurement import BackgroundRates, measure_background
from repro.micro.runner import MicroResult, RuntimeConfig, run_prepared
from repro.sim.machine import Machine

logger = logging.getLogger(__name__)


@dataclass
class CalibrationResult:
    """The calibrated dE table plus every raw micro-benchmark result."""

    delta_e: DeltaE
    results: dict[str, MicroResult]
    background: BackgroundRates
    pstate: int

    def result(self, name: str) -> MicroResult:
        if name not in self.results:
            raise CalibrationError(f"benchmark {name!r} was not run")
        return self.results[name]


def _per_op(energy_j: float, count: float, what: str) -> float:
    if count <= 0:
        raise CalibrationError(f"{what}: target operation count is zero")
    return energy_j / count


def calibrate(
    machine: Machine,
    pstate: Optional[int] = None,
    runtime: Optional[RuntimeConfig] = None,
    background: Optional[BackgroundRates] = None,
    seed: int = 1234,
) -> CalibrationResult:
    """Run MBS on ``machine`` and solve the dE_m table.

    ``pstate`` defaults to the machine's highest (the paper's P-state 36
    trunk experiment); pass 24/12 to regenerate the other Table 2
    columns.
    """
    if runtime is None:
        runtime = RuntimeConfig(pstate=pstate)
    elif pstate is not None and runtime.pstate != pstate:
        raise CalibrationError("pass the P-state either directly or via runtime")
    if background is None:
        background = measure_background(machine)

    results: dict[str, MicroResult] = {}
    for name in mbs_for(machine):
        logger.info("running micro-benchmark %s", name)
        prepared = prepare(name, machine, seed=seed)
        results[name] = run_prepared(machine, prepared, background, runtime)

    counters = {name: r.measurement.counters for name, r in results.items()}
    energies = {name: r.measurement.active_energy_j for name, r in results.items()}

    # 1. dE_L1D from the stall-free array traversal.
    c = counters["B_L1D_array"]
    de_l1d = _per_op(energies["B_L1D_array"], c.n_l1d, "B_L1D_array")

    # 2. dE_stall from the dependent chain in L1D.
    c = counters["B_L1D_list"]
    de_stall = _per_op(
        energies["B_L1D_list"] - de_l1d * c.n_l1d,
        c.stall_cycles,
        "B_L1D_list",
    )

    # 3. Eq. (2) peeling for L2 / L3 / mem.
    de_l2: Optional[float] = None
    de_l3: Optional[float] = None
    if "B_L2" in results:
        c = counters["B_L2"]
        de_l2 = _per_op(
            energies["B_L2"] - de_l1d * c.n_l1d - de_stall * c.stall_cycles,
            c.n_l2,
            "B_L2",
        )
    if "B_L3" in results:
        c = counters["B_L3"]
        assert de_l2 is not None  # geometry guarantees L2 exists below L3
        de_l3 = _per_op(
            energies["B_L3"]
            - de_l1d * c.n_l1d
            - de_l2 * c.n_l2
            - de_stall * c.stall_cycles,
            c.n_l3,
            "B_L3",
        )
    c = counters["B_mem"]
    higher = de_l1d * c.n_l1d + de_stall * c.stall_cycles
    if de_l2 is not None:
        higher += de_l2 * c.n_l2
    if de_l3 is not None:
        higher += de_l3 * c.n_l3
    de_mem = _per_op(energies["B_mem"] - higher, c.n_mem, "B_mem")

    # 4. Stores.
    c = counters["B_Reg2L1D"]
    de_reg2l1d = _per_op(energies["B_Reg2L1D"], c.n_store_l1d_hit, "B_Reg2L1D")

    # 6. Compute instructions for the verification estimator.
    de_add = _per_op(energies["B_add"], counters["B_add"].n_add, "B_add")
    de_nop = _per_op(energies["B_nop"], counters["B_nop"].n_nop, "B_nop")

    delta_e = DeltaE(
        l1d=de_l1d,
        reg2l1d=de_reg2l1d,
        stall=de_stall,
        mem=de_mem,
        add=de_add,
        nop=de_nop,
        l2=de_l2,
        l3=de_l3,
        # 5. The paper's prefetch-cost assumption.
        pf_l2=de_l3,
        pf_l3=de_mem,
    )
    pinned = runtime.pstate
    if pinned is None:
        pinned = machine.config.pstates.highest
    logger.info("calibrated %s at P%d: dE_L1D=%.3e J, dE_mem=%.3e J",
                machine.config.name, pinned, de_l1d, de_mem)
    return CalibrationResult(
        delta_e=delta_e, results=results, background=background, pstate=pinned
    )


def calibrate_pstates(
    machine: Machine,
    pstates: list[int],
    seed: int = 1234,
) -> dict[int, CalibrationResult]:
    """Table 2's column sweep: calibrate at each requested P-state."""
    out: dict[int, CalibrationResult] = {}
    for pstate in pstates:
        out[pstate] = calibrate(machine, pstate=pstate, seed=seed)
    return out
