"""Verification of dE_m accuracy (§2.5.5, Table 3).

Each VMBS benchmark is run and measured; Eq. (1) with the calibrated
dE_m estimates its Active energy; the accuracy is

    acc(v) = 1 - |E_est(v) - E_meas(v)| / E_meas(v)      (clamped at 0)

The paper reports an average accuracy of 93.47% on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.breakdown import estimate_active_energy
from repro.core.model import DeltaE
from repro.micro.measurement import BackgroundRates, measure_background
from repro.micro.runner import MicroResult, RuntimeConfig, run_prepared
from repro.micro.verification import prepare_verification, vmbs_for
from repro.sim.machine import Machine


@dataclass(frozen=True)
class VerificationRow:
    """One Table 3 row: measured vs estimated Active energy."""

    name: str
    measured_j: float
    estimated_j: float

    @property
    def accuracy_pct(self) -> float:
        if self.measured_j <= 0:
            return 0.0
        acc = 1.0 - abs(self.estimated_j - self.measured_j) / self.measured_j
        return 100.0 * max(0.0, acc)


@dataclass
class VerificationReport:
    """All Table 3 rows plus the average accuracy."""

    rows: list[VerificationRow]

    @property
    def average_accuracy_pct(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.accuracy_pct for r in self.rows) / len(self.rows)

    def row(self, name: str) -> VerificationRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)


def verify(
    machine: Machine,
    delta_e: DeltaE,
    runtime: Optional[RuntimeConfig] = None,
    background: Optional[BackgroundRates] = None,
    seed: int = 4321,
) -> VerificationReport:
    """Run VMBS and score the calibrated dE table against measurements."""
    if runtime is None:
        runtime = RuntimeConfig()
    if background is None:
        background = measure_background(machine)
    rows: list[VerificationRow] = []
    for name in vmbs_for(machine):
        prepared = prepare_verification(name, machine, seed=seed)
        result: MicroResult = run_prepared(
            machine, prepared, background, runtime
        )
        estimated = estimate_active_energy(result.measurement.counters, delta_e)
        rows.append(
            VerificationRow(
                name=name,
                measured_j=result.measurement.active_energy_j,
                estimated_j=estimated,
            )
        )
    return VerificationReport(rows=rows)
