"""The paper's contribution: micro-analysis of Busy-CPU energy.

Calibrate once per machine/P-state, then break any workload down::

    from repro import Machine, tiny_intel
    from repro.core import calibrate, profile_workload

    machine = Machine(tiny_intel())
    cal = calibrate(machine)
    profile = profile_workload(machine, "my workload", fn, cal.delta_e)
    print(profile.breakdown.shares_pct())
"""

from repro.core.accuracy import VerificationReport, VerificationRow, verify
from repro.core.breakdown import (
    breakdown_measurement,
    estimate_active_energy,
    price_counters,
)
from repro.core.calibration import (
    CalibrationResult,
    calibrate,
    calibrate_pstates,
)
from repro.core.coefficients import (
    PRICE_COMPONENTS,
    MicroOpPricing,
    nominal_delta_e,
)
from repro.core.model import (
    BREAKDOWN_COMPONENTS,
    MS,
    DeltaE,
    EnergyBreakdown,
    WorkloadProfile,
    sum_breakdowns,
)
from repro.core.profiler import profile_workload
from repro.core.report import (
    render_breakdown_bar,
    render_breakdown_rows,
    render_delta_e,
    render_microbench_behaviour,
    render_table,
    render_verification,
)

__all__ = [
    "VerificationReport",
    "VerificationRow",
    "verify",
    "breakdown_measurement",
    "estimate_active_energy",
    "price_counters",
    "CalibrationResult",
    "calibrate",
    "calibrate_pstates",
    "PRICE_COMPONENTS",
    "MicroOpPricing",
    "nominal_delta_e",
    "BREAKDOWN_COMPONENTS",
    "MS",
    "DeltaE",
    "EnergyBreakdown",
    "WorkloadProfile",
    "sum_breakdowns",
    "profile_workload",
    "render_breakdown_bar",
    "render_breakdown_rows",
    "render_delta_e",
    "render_microbench_behaviour",
    "render_table",
    "render_verification",
]
