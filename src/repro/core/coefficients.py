"""Per-micro-op energy prices for estimators (Eq. 1 seen from a planner).

The paper's model prices a *measured* run: ``E_active = E_other +
Σ N_m·dE_m`` over the MS set, with the ``dE_m`` coefficients calibrated
per machine/P-state (:mod:`repro.core.calibration`).  A query optimizer
needs the same coefficients *before* anything runs: it predicts the
``N_m`` counts a candidate plan would generate and prices them with the
calibrated ``dE_m`` to get a predicted J/query.

:class:`MicroOpPricing` is that bridge.  It normalises a
:class:`~repro.core.model.DeltaE` (whose L2/L3/prefetch entries may be
``None`` on machines without those levels) into a complete price table
keyed by the breakdown component names the rest of the repo uses
(``L1D``, ``Reg2L1D``, ``L2``, ``L3``, ``mem``, ``pf``, ``stall``,
``other``), and :func:`nominal_delta_e` supplies Table-2-magnitude
defaults so estimation works before any calibration has run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.model import DeltaE

#: Count-dictionary keys :meth:`MicroOpPricing.energy_j` understands.
#: ``pf`` follows §2.5.4: a prefetch into L2 is priced like a demand L3
#: load; ``other`` is compute work priced at the calibrated add energy.
PRICE_COMPONENTS = ("L1D", "Reg2L1D", "L2", "L3", "mem", "pf", "stall",
                    "other")


def nominal_delta_e() -> DeltaE:
    """Uncalibrated per-micro-op energies at the paper's Table 2
    magnitudes (nanojoule scale, i7-4790 @ highest P-state).

    Estimation only needs *relative* prices to rank candidate plans, so
    these defaults give sensible decisions on any machine; pass a real
    calibration's ``delta_e`` for machine-accurate absolute joules.
    """
    return DeltaE(
        l1d=1.30e-9,
        reg2l1d=2.42e-9,
        stall=1.72e-9,
        mem=103.1e-9,
        add=1.03e-9,
        nop=0.65e-9,
        l2=4.37e-9,
        l3=6.64e-9,
        pf_l2=6.64e-9,   # == dE_L3 (§2.5.4)
        pf_l3=103.1e-9,  # == dE_mem
    )


@dataclass(frozen=True)
class MicroOpPricing:
    """A complete per-event price table, in joules per micro-op."""

    l1d: float
    reg2l1d: float
    l2: float
    l3: float
    mem: float
    pf: float
    stall: float
    compute: float

    @classmethod
    def from_delta_e(cls, delta_e: Optional[DeltaE] = None) -> "MicroOpPricing":
        """Build a price table, filling missing cache levels.

        Machines without an L2/L3 (the ARM preset) price those levels at
        the next outer level's energy — the access really goes there.
        """
        de = delta_e or nominal_delta_e()
        l3 = de.l3 if de.l3 is not None else de.mem
        l2 = de.l2 if de.l2 is not None else l3
        pf = de.pf_l2 if de.pf_l2 is not None else l3
        return cls(
            l1d=de.l1d,
            reg2l1d=de.reg2l1d,
            l2=l2,
            l3=l3,
            mem=de.mem,
            pf=pf,
            stall=de.stall,
            compute=de.add,
        )

    def price_of(self, component: str) -> float:
        """Joules for one event of a :data:`PRICE_COMPONENTS` entry."""
        return {
            "L1D": self.l1d,
            "Reg2L1D": self.reg2l1d,
            "L2": self.l2,
            "L3": self.l3,
            "mem": self.mem,
            "pf": self.pf,
            "stall": self.stall,
            "other": self.compute,
        }[component]

    def energy_j(self, counts: Mapping[str, float]) -> dict[str, float]:
        """Price a count vector; returns joules per component."""
        return {
            name: float(counts.get(name, 0.0)) * self.price_of(name)
            for name in PRICE_COMPONENTS
        }

    def total_j(self, counts: Mapping[str, float]) -> float:
        return sum(self.energy_j(counts).values())
