"""One-call profiling of arbitrary workloads (§3's procedure).

``profile_workload`` runs a workload callable on a machine under the
paper's §3 conditions — prefetchers *on*, pinned P-state (or EIST),
C-states off — measures its Active energy, and prices it into an
:class:`repro.core.model.EnergyBreakdown` with a calibrated dE table.

Workloads are plain callables taking the machine; the database engines
and the synthetic CPU2006 kernels all fit this signature.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.breakdown import price_counters
from repro.core.model import DeltaE, WorkloadProfile
from repro.micro.measurement import (
    BackgroundRates,
    measure_background,
    run_measured,
)
from repro.sim.machine import Machine

Workload = Callable[[], None]


def profile_workload(
    machine: Machine,
    name: str,
    workload: Workload,
    delta_e: DeltaE,
    background: Optional[BackgroundRates] = None,
    pstate: Optional[int] = None,
    prefetcher: bool = True,
    warmup: Optional[Workload] = None,
    apply_noise: bool = True,
) -> WorkloadProfile:
    """Run ``workload`` once (after an optional warm-up run) and break
    its Active energy down.

    Unlike micro-benchmarking, profiling keeps the hardware prefetcher
    on — §3 turns it back on because real deployments run that way.
    """
    if background is None:
        background = measure_background(machine)
    if pstate is not None:
        machine.set_pstate(pstate)
    machine.set_prefetcher(prefetcher)
    machine.set_cstates(False)
    if warmup is not None:
        warmup()
    measurement = run_measured(machine, workload, background, apply_noise)
    breakdown = price_counters(
        measurement.counters,
        delta_e,
        measurement.active_energy_j,
        measurement.background_energy_j,
    )
    return WorkloadProfile(
        name=name,
        breakdown=breakdown,
        counters=measurement.counters,
        busy_s=measurement.busy_s,
        idle_s=measurement.idle_s,
        time_s=measurement.time_s,
        domain=measurement.domain,
    )
