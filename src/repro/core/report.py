"""Plain-text renderers for the paper's tables and figures.

Every renderer returns a string; the benchmark harness prints them so a
run of ``pytest benchmarks/`` regenerates the same rows/series the paper
reports (shape, not absolute testbed numbers).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.accuracy import VerificationReport
from repro.core.model import BREAKDOWN_COMPONENTS, EnergyBreakdown
from repro.micro.runner import MicroResult


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    def fmt(cell: object) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000 or abs(cell) < 0.01:
                return f"{cell:.3g}"
            return f"{cell:.2f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows)) if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def render_microbench_behaviour(results: Mapping[str, MicroResult]) -> str:
    """Table 1: BLI, per-level miss rates, IPC for each micro-benchmark."""
    rows = []
    for name, result in results.items():
        rows.append([
            name,
            result.bli_pct,
            result.l1d_miss_pct if result.measurement.counters.n_l1d else None,
            result.l2_miss_pct,
            result.l3_miss_pct,
            result.ipc,
        ])
    return render_table(
        ["Micro-benchmark", "BLI%", "L1D miss%", "L2 miss%", "L3 miss%", "IPC"],
        rows,
        title="Table 1: Runtime behaviors of micro-benchmarks",
    )


def render_delta_e(per_pstate: Mapping[int, Mapping[str, Optional[float]]]) -> str:
    """Table 2: dE_m (nJ) per P-state column."""
    pstates = sorted(per_pstate, reverse=True)
    op_names = list(next(iter(per_pstate.values())).keys())
    rows = []
    for op in op_names:
        rows.append([op] + [per_pstate[p].get(op) for p in pstates])
    headers = ["Micro-operation (nJ)"] + [
        f"P-state {p} ({p / 10:.1f}GHz)" for p in pstates
    ]
    return render_table(
        headers, rows,
        title="Table 2: Energy cost of micro-operations per P-state",
    )


def render_verification(report: VerificationReport) -> str:
    """Table 3: measured vs estimated Active energy and accuracy."""
    rows = [
        [r.name, r.measured_j, r.estimated_j, r.accuracy_pct]
        for r in report.rows
    ]
    rows.append(["average", None, None, report.average_accuracy_pct])
    return render_table(
        ["Verification benchmark", "E_meas (J)", "E_est (J)", "acc%"],
        rows,
        title="Table 3: Verification accuracy of dE_m",
    )


def render_breakdown_rows(
    breakdowns: Mapping[str, EnergyBreakdown],
    title: str,
) -> str:
    """Figures 6-11 as rows of percent shares per component."""
    rows = []
    for name, b in breakdowns.items():
        shares = b.shares_pct()
        rows.append([name] + [shares[c] for c in BREAKDOWN_COMPONENTS])
    return render_table(
        ["Workload"] + [f"{c}%" for c in BREAKDOWN_COMPONENTS],
        rows,
        title=title,
    )


def render_breakdown_bar(b: EnergyBreakdown, width: int = 60) -> str:
    """A single ASCII stacked bar (quick visual check in examples)."""
    glyphs = {
        "E_L1D": "#", "E_Reg2L1D": "=", "E_L2": "+", "E_L3": "*",
        "E_mem": "M", "E_pf": "p", "E_stall": ".", "E_other": " ",
    }
    shares = b.shares_pct()
    bar = ""
    for component in BREAKDOWN_COMPONENTS:
        n = round(shares[component] / 100.0 * width)
        bar += glyphs[component] * n
    return f"[{bar[:width].ljust(width)}]"
