"""Applying Eq. (1): pricing a workload's counters with calibrated dE_m.

Given a workload's PMU counters and its measured Active energy, each MS
term is ``N_m * dE_m``; whatever the terms do not explain is
``E_other`` — the unisolated cost of calculation, L1I, TLB, etc.
(Eq. 1's residual).  On machines without L2/L3, those terms are zero.
"""

from __future__ import annotations

from repro.core.model import DeltaE, EnergyBreakdown
from repro.micro.measurement import Measurement
from repro.sim.pmu import PmuCounters


def price_counters(
    counters: PmuCounters,
    delta_e: DeltaE,
    active_energy_j: float,
    background_energy_j: float = 0.0,
) -> EnergyBreakdown:
    """Break ``active_energy_j`` down along the MS terms of Eq. (1)."""
    e_l1d = counters.n_l1d * delta_e.l1d
    e_reg2l1d = counters.n_store_l1d_hit * delta_e.reg2l1d
    e_l2 = counters.n_l2 * delta_e.l2 if delta_e.l2 is not None else 0.0
    e_l3 = counters.n_l3 * delta_e.l3 if delta_e.l3 is not None else 0.0
    e_mem = counters.n_mem * delta_e.mem
    e_pf = 0.0
    if delta_e.pf_l2 is not None:
        e_pf += counters.n_pf_l2 * delta_e.pf_l2
    if delta_e.pf_l3 is not None:
        e_pf += counters.n_pf_l3 * delta_e.pf_l3
    e_stall = counters.stall_cycles * delta_e.stall
    isolated = e_l1d + e_reg2l1d + e_l2 + e_l3 + e_mem + e_pf + e_stall
    e_other = max(0.0, active_energy_j - isolated)
    return EnergyBreakdown(
        e_l1d=e_l1d,
        e_reg2l1d=e_reg2l1d,
        e_l2=e_l2,
        e_l3=e_l3,
        e_mem=e_mem,
        e_pf=e_pf,
        e_stall=e_stall,
        e_other=e_other,
        active_energy_j=active_energy_j,
        background_energy_j=background_energy_j,
    )


def breakdown_measurement(
    measurement: Measurement, delta_e: DeltaE
) -> EnergyBreakdown:
    """Convenience: break down a :class:`Measurement` window."""
    return price_counters(
        measurement.counters,
        delta_e,
        measurement.active_energy_j,
        measurement.background_energy_j,
    )


def estimate_active_energy(
    counters: PmuCounters, delta_e: DeltaE
) -> float:
    """The §2.5.5 estimator: MS terms + (dE_add*N_add + dE_nop*N_nop).

    This is what the verification benchmarks are priced with — the
    paper sets ``E_other = dE_add*N_add + dE_nop*N_nop`` for VMBS.
    """
    priced = price_counters(counters, delta_e, active_energy_j=0.0)
    movement = priced.total - priced.e_other
    return movement + delta_e.add * counters.n_add + delta_e.nop * counters.n_nop
