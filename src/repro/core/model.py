"""Data model of the energy-breakdown methodology (§2.2–§2.3).

The analysed micro-operation set is

    MS = {L1D, Reg2L1D, L2, L3, mem, pf, stall}

and the Active energy of a workload ``w`` is formalised (Eq. 1) as

    E_active(w) = E_other(w) + sum_{m in MS} N_m(w) * dE_m

:class:`DeltaE` holds the calibrated ``dE_m`` (plus ``dE_add``/``dE_nop``
for the verification estimator); :class:`EnergyBreakdown` holds the
priced terms for one workload.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Optional

from repro.errors import CalibrationError
from repro.sim.pmu import PmuCounters

#: The paper's micro-operation set MS, in presentation order.
MS = ("L1D", "Reg2L1D", "L2", "L3", "mem", "pf", "stall")

#: Stacked-bar component order used by every figure (Figures 6-11).
BREAKDOWN_COMPONENTS = (
    "E_L1D", "E_Reg2L1D", "E_L2", "E_L3", "E_mem", "E_pf", "E_stall", "E_other",
)

NANOJOULE = 1e-9


@dataclass(frozen=True)
class DeltaE:
    """Calibrated per-micro-operation energies, in joules.

    ``pf_l2``/``pf_l3`` follow the paper's §2.5.4 assumption:
    prefetching data into L2 costs like a demand L3 load, prefetching
    into L3 costs like a demand DRAM load.  ``l2``/``l3`` may be None on
    machines without those levels (the ARM preset).
    """

    l1d: float
    reg2l1d: float
    stall: float
    mem: float
    add: float
    nop: float
    l2: Optional[float] = None
    l3: Optional[float] = None
    pf_l2: Optional[float] = None
    pf_l3: Optional[float] = None

    def to_json(self) -> str:
        """Serialise to JSON (joules), for caching calibrations on disk."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DeltaE":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        unknown = set(data) - {f.name for f in fields(cls)}
        if unknown:
            raise CalibrationError(f"unknown DeltaE fields: {sorted(unknown)}")
        return cls(**data)

    def nanojoules(self) -> dict[str, Optional[float]]:
        """Render as the paper's Table 2 units."""
        def nj(value: Optional[float]) -> Optional[float]:
            return None if value is None else value / NANOJOULE

        return {
            "dE_L1D": nj(self.l1d),
            "dE_L2": nj(self.l2),
            "dE_L3": nj(self.l3),
            "dE_pf_L2": nj(self.pf_l2),
            "dE_mem": nj(self.mem),
            "dE_pf_L3": nj(self.pf_l3),
            "dE_Reg2L1D": nj(self.reg2l1d),
            "dE_stall": nj(self.stall),
            "dE_add": nj(self.add),
            "dE_nop": nj(self.nop),
        }


@dataclass(frozen=True)
class EnergyBreakdown:
    """Eq. (1) evaluated for one workload: joules per component.

    ``e_other`` is the unisolated residual (calculation, L1I, TLB, ...):
    measured Active energy minus the priced data-movement terms.
    """

    e_l1d: float
    e_reg2l1d: float
    e_l2: float
    e_l3: float
    e_mem: float
    e_pf: float
    e_stall: float
    e_other: float
    #: The measured Active energy the breakdown was fit to (joules).
    active_energy_j: float = 0.0
    #: Background energy over the same window (joules).
    background_energy_j: float = 0.0

    def components(self) -> dict[str, float]:
        return {
            "E_L1D": self.e_l1d,
            "E_Reg2L1D": self.e_reg2l1d,
            "E_L2": self.e_l2,
            "E_L3": self.e_l3,
            "E_mem": self.e_mem,
            "E_pf": self.e_pf,
            "E_stall": self.e_stall,
            "E_other": self.e_other,
        }

    @property
    def total(self) -> float:
        """Sum of all components — equals max(measured, priced) Active."""
        return sum(self.components().values())

    def shares_pct(self) -> dict[str, float]:
        """Percent shares of Active energy (the figures' x-axis)."""
        total = self.total
        if total <= 0:
            return {name: 0.0 for name in BREAKDOWN_COMPONENTS}
        return {k: 100.0 * v / total for k, v in self.components().items()}

    @property
    def l1d_share_pct(self) -> float:
        """The headline metric: (E_L1D + E_Reg2L1D) / Active, in percent."""
        total = self.total
        if total <= 0:
            return 0.0
        return 100.0 * (self.e_l1d + self.e_reg2l1d) / total

    @property
    def data_movement_share_pct(self) -> float:
        """Share of the seven MS terms (everything but E_other)."""
        total = self.total
        if total <= 0:
            return 0.0
        return 100.0 * (total - self.e_other) / total

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Multiply every component (used for averaging across queries)."""
        return EnergyBreakdown(
            e_l1d=self.e_l1d * factor,
            e_reg2l1d=self.e_reg2l1d * factor,
            e_l2=self.e_l2 * factor,
            e_l3=self.e_l3 * factor,
            e_mem=self.e_mem * factor,
            e_pf=self.e_pf * factor,
            e_stall=self.e_stall * factor,
            e_other=self.e_other * factor,
            active_energy_j=self.active_energy_j * factor,
            background_energy_j=self.background_energy_j * factor,
        )


def sum_breakdowns(breakdowns: list[EnergyBreakdown]) -> EnergyBreakdown:
    """Component-wise sum (e.g. the per-database averages of Figure 8)."""
    if not breakdowns:
        raise CalibrationError("cannot sum zero breakdowns")
    return EnergyBreakdown(
        e_l1d=sum(b.e_l1d for b in breakdowns),
        e_reg2l1d=sum(b.e_reg2l1d for b in breakdowns),
        e_l2=sum(b.e_l2 for b in breakdowns),
        e_l3=sum(b.e_l3 for b in breakdowns),
        e_mem=sum(b.e_mem for b in breakdowns),
        e_pf=sum(b.e_pf for b in breakdowns),
        e_stall=sum(b.e_stall for b in breakdowns),
        e_other=sum(b.e_other for b in breakdowns),
        active_energy_j=sum(b.active_energy_j for b in breakdowns),
        background_energy_j=sum(b.background_energy_j for b in breakdowns),
    )


@dataclass(frozen=True)
class WorkloadProfile:
    """A profiled workload: counters + measured energy + breakdown."""

    name: str
    breakdown: EnergyBreakdown
    counters: PmuCounters
    busy_s: float
    idle_s: float
    time_s: float
    domain: str

    @property
    def busy_cpu_energy_j(self) -> float:
        return (
            self.breakdown.active_energy_j + self.breakdown.background_energy_j
        )

    @property
    def breakdown_coverage_pct(self) -> float:
        """§3's "77.7%-89.2% of Busy-CPU energy can be broken down":
        (data movement + background) / Busy-CPU energy."""
        busy = self.busy_cpu_energy_j
        if busy <= 0:
            return 0.0
        movement = self.breakdown.total - self.breakdown.e_other
        return 100.0 * (movement + self.breakdown.background_energy_j) / busy
