"""Catalog: table and index metadata for one database instance."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import CatalogError
from repro.db.btree import BTree
from repro.db.table import ClusteredTable, HeapTable
from repro.db.types import Schema

TableStorage = Union[HeapTable, ClusteredTable]


@dataclass
class IndexDef:
    """A secondary index: B-tree whose payload is a (page, slot) rowref
    (heap tables) or the table's primary key (clustered tables)."""

    name: str
    table_name: str
    column: str
    tree: BTree
    #: True when the payload is a primary key to chase, not a rowref.
    via_primary_key: bool = False


@dataclass
class TableDef:
    """One table: schema, storage, optional primary key and indexes."""

    name: str
    schema: Schema
    storage: TableStorage
    primary_key: Optional[str] = None
    indexes: dict = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        return self.storage.n_rows

    def index_on(self, column: str) -> Optional[IndexDef]:
        for index in self.indexes.values():
            if index.column == column:
                return index
        return None


class Catalog:
    """Name -> definition maps for one database instance."""

    def __init__(self) -> None:
        self._tables: dict[str, TableDef] = {}

    def add_table(self, table: TableDef) -> None:
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name: str) -> TableDef:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def add_index(self, index: IndexDef) -> None:
        table = self.table(index.table_name)
        if index.name in table.indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        if index.column not in table.schema:
            raise CatalogError(
                f"index column {index.column!r} not in table {table.name!r}"
            )
        table.indexes[index.name] = index

    def tables(self) -> list[TableDef]:
        return list(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables
