"""Typed expression trees with micro-op accounting.

Expressions are built against a schema (column references are resolved
to positions at plan-bind time) and compiled to Python closures over the
machine, so per-row evaluation is one function call.  Each operator
charges the machine for the compute micro-ops it models:

* comparisons: one ``cmp`` + one ``branch``;
* arithmetic: one ``add`` (add/sub) or ``mul`` (mul/div);
* boolean connectives: a ``branch`` per evaluated operand
  (short-circuit);
* string predicates: one ``cmp`` per 8 compared bytes.

Column references are free — the scan already loaded the column into a
"register" (the Python tuple), mirroring how a compiled query would keep
hot attributes in registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import PlanError
from repro.db.types import Schema
from repro.sim.machine import Machine

Evaluator = Callable[[tuple], object]

_CMP_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">=": lambda a, b: a >= b,
    ">": lambda a, b: a > b,
}

_ARITH_ADD = {"+", "-"}
_ARITH_MUL = {"*", "/"}


class Expr:
    """Base expression node."""

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        raise NotImplementedError

    # Operator sugar so plans read naturally.
    def __lt__(self, other): return Cmp("<", self, _lift(other))
    def __le__(self, other): return Cmp("<=", self, _lift(other))
    def __gt__(self, other): return Cmp(">", self, _lift(other))
    def __ge__(self, other): return Cmp(">=", self, _lift(other))
    def eq(self, other): return Cmp("=", self, _lift(other))
    def ne(self, other): return Cmp("!=", self, _lift(other))
    def __add__(self, other): return Arith("+", self, _lift(other))
    def __sub__(self, other): return Arith("-", self, _lift(other))
    def __mul__(self, other): return Arith("*", self, _lift(other))
    def __truediv__(self, other): return Arith("/", self, _lift(other))


def _lift(value) -> "Expr":
    return value if isinstance(value, Expr) else Const(value)


@dataclass(frozen=True)
class Col(Expr):
    """A column reference by name (resolved at compile time)."""

    name: str

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        index = schema.index_of(self.name)
        return lambda row: row[index]


@dataclass(frozen=True)
class Const(Expr):
    value: object

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        value = self.value
        return lambda row: value


@dataclass(frozen=True)
class Cmp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise PlanError(f"unknown comparison {self.op!r}")

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        lhs = self.left.compile(schema, machine)
        rhs = self.right.compile(schema, machine)
        fn = _CMP_OPS[self.op]
        cmp_op = machine.cmp
        branch = machine.branch

        def run(row: tuple) -> bool:
            cmp_op(1)
            branch(1)
            a = lhs(row)
            b = rhs(row)
            if a is None or b is None:
                return False  # SQL three-valued logic collapses to False
            return fn(a, b)

        return run


@dataclass(frozen=True)
class Arith(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITH_ADD | _ARITH_MUL:
            raise PlanError(f"unknown arithmetic op {self.op!r}")

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        lhs = self.left.compile(schema, machine)
        rhs = self.right.compile(schema, machine)
        op = self.op
        if op in _ARITH_ADD:
            cost = machine.add
            fn = (lambda a, b: a + b) if op == "+" else (lambda a, b: a - b)
        else:
            cost = machine.mul
            fn = (lambda a, b: a * b) if op == "*" else (lambda a, b: a / b)

        def run(row: tuple):
            cost(1)
            a = lhs(row)
            b = rhs(row)
            if a is None or b is None:
                return None  # NULL propagates through arithmetic
            return fn(a, b)

        return run


@dataclass(frozen=True)
class And(Expr):
    parts: tuple

    def __init__(self, *parts: Expr):
        object.__setattr__(self, "parts", tuple(parts))

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        compiled = [p.compile(schema, machine) for p in self.parts]
        branch = machine.branch

        def run(row: tuple) -> bool:
            for part in compiled:
                branch(1)
                if not part(row):
                    return False
            return True

        return run


@dataclass(frozen=True)
class Or(Expr):
    parts: tuple

    def __init__(self, *parts: Expr):
        object.__setattr__(self, "parts", tuple(parts))

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        compiled = [p.compile(schema, machine) for p in self.parts]
        branch = machine.branch

        def run(row: tuple) -> bool:
            for part in compiled:
                branch(1)
                if part(row):
                    return True
            return False

        return run


@dataclass(frozen=True)
class Not(Expr):
    part: Expr

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        inner = self.part.compile(schema, machine)
        branch = machine.branch

        def run(row: tuple) -> bool:
            branch(1)
            return not inner(row)

        return run


@dataclass(frozen=True)
class Between(Expr):
    """lo <= expr <= hi (inclusive both ends, like SQL BETWEEN)."""

    part: Expr
    lo: object
    hi: object

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        inner = self.part.compile(schema, machine)
        lo, hi = self.lo, self.hi
        cmp_op = machine.cmp
        branch = machine.branch

        def run(row: tuple) -> bool:
            cmp_op(2)
            branch(1)
            value = inner(row)
            return lo <= value <= hi

        return run


@dataclass(frozen=True)
class InList(Expr):
    part: Expr
    values: tuple

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        inner = self.part.compile(schema, machine)
        values = frozenset(self.values)
        n = max(1, len(values).bit_length())
        cmp_op = machine.cmp
        branch = machine.branch

        def run(row: tuple) -> bool:
            cmp_op(n)
            branch(1)
            return inner(row) in values

        return run


@dataclass(frozen=True)
class StrPrefix(Expr):
    """``expr LIKE 'prefix%'``."""

    part: Expr
    prefix: str

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        inner = self.part.compile(schema, machine)
        prefix = self.prefix
        n = max(1, (len(prefix) + 7) // 8)
        cmp_op = machine.cmp
        branch = machine.branch

        def run(row: tuple) -> bool:
            cmp_op(n)
            branch(1)
            return str(inner(row)).startswith(prefix)

        return run


@dataclass(frozen=True)
class StrContains(Expr):
    """``expr LIKE '%needle%'`` — costed as a scan over the value."""

    part: Expr
    needle: str
    width_hint: int = 32

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        inner = self.part.compile(schema, machine)
        needle = self.needle
        n = max(1, self.width_hint // 8)
        cmp_op = machine.cmp
        branch = machine.branch

        def run(row: tuple) -> bool:
            cmp_op(n)
            branch(1)
            return needle in str(inner(row))

        return run


@dataclass(frozen=True)
class ExtractYear(Expr):
    """Year number of a date stored as a proleptic-Gregorian ordinal
    (``datetime.date.toordinal``; see workloads.tpch)."""

    part: Expr

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        from datetime import date as _date

        inner = self.part.compile(schema, machine)
        mul = machine.mul

        def run(row: tuple) -> int:
            mul(1)
            return _date.fromordinal(int(inner(row))).year

        return run


@dataclass(frozen=True)
class StrSuffix(Expr):
    """``expr LIKE '%suffix'``."""

    part: Expr
    suffix: str

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        inner = self.part.compile(schema, machine)
        suffix = self.suffix
        n = max(1, (len(suffix) + 7) // 8)
        cmp_op = machine.cmp
        branch = machine.branch

        def run(row: tuple) -> bool:
            cmp_op(n)
            branch(1)
            return str(inner(row)).endswith(suffix)

        return run


@dataclass(frozen=True)
class StrSlice(Expr):
    """``substring(expr from start+1 for stop-start)`` (0-based slice)."""

    part: Expr
    start: int
    stop: int

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        inner = self.part.compile(schema, machine)
        start, stop = self.start, self.stop
        other = machine.other

        def run(row: tuple) -> str:
            other(1)
            return str(inner(row))[start:stop]

        return run


@dataclass(frozen=True)
class TupleOf(Expr):
    """A tuple of sub-expressions — the composite join-key construct."""

    parts: tuple

    def __init__(self, *parts: Expr):
        object.__setattr__(self, "parts", tuple(parts))

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        compiled = [p.compile(schema, machine) for p in self.parts]
        other = machine.other

        def run(row: tuple) -> tuple:
            other(1)
            return tuple(fn(row) for fn in compiled)

        return run


@dataclass(frozen=True)
class CaseWhen(Expr):
    """``CASE WHEN cond THEN a ELSE b END``."""

    cond: Expr
    then: Expr
    otherwise: Expr

    def compile(self, schema: Schema, machine: Machine) -> Evaluator:
        cond = self.cond.compile(schema, machine)
        then = self.then.compile(schema, machine)
        other = self.otherwise.compile(schema, machine)
        branch = machine.branch

        def run(row: tuple):
            branch(1)
            return then(row) if cond(row) else other(row)

        return run


def columns_used(expr: Expr) -> set[str]:
    """Every column name referenced anywhere inside ``expr``."""
    out: set[str] = set()
    _collect(expr, out)
    return out


def _collect(expr: Expr, out: set[str]) -> None:
    if isinstance(expr, Col):
        out.add(expr.name)
    elif isinstance(expr, (Cmp, Arith)):
        _collect(expr.left, out)
        _collect(expr.right, out)
    elif isinstance(expr, (And, Or)):
        for part in expr.parts:
            _collect(part, out)
    elif isinstance(expr, Not):
        _collect(expr.part, out)
    elif isinstance(
        expr,
        (Between, InList, StrPrefix, StrContains, StrSuffix, ExtractYear),
    ):
        _collect(expr.part, out)
    elif isinstance(expr, StrSlice):
        _collect(expr.part, out)
    elif isinstance(expr, TupleOf):
        for part in expr.parts:
            _collect(part, out)
    elif isinstance(expr, CaseWhen):
        _collect(expr.cond, out)
        _collect(expr.then, out)
        _collect(expr.otherwise, out)
    elif isinstance(expr, Const):
        pass
    else:
        raise PlanError(f"unknown expression node {type(expr).__name__}")


def conjuncts(expr: Optional[Expr]) -> list[Expr]:
    """Flatten an AND tree into its conjuncts (None -> [])."""
    if expr is None:
        return []
    if isinstance(expr, And):
        out: list[Expr] = []
        for part in expr.parts:
            out.extend(conjuncts(part))
        return out
    return [expr]


def and_all(parts: Sequence[Expr]) -> Optional[Expr]:
    """Rebuild an AND tree from conjuncts (inverse of :func:`conjuncts`)."""
    parts = [p for p in parts if p is not None]
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(*parts)


_PEEK_CMP = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def peek_eval(expr: Expr, row: tuple, index_of: dict):
    """Evaluate ``expr`` against a raw row tuple without a machine —
    same semantics as the compiled evaluators (NULL-collapsing
    comparisons, NULL-propagating arithmetic) but charge-free, for use
    on statistics samples outside any measured window.  Raises
    :class:`~repro.errors.PlanError` on expression nodes it does not
    model; callers fall back to shape heuristics."""
    if isinstance(expr, Col):
        return row[index_of[expr.name]]
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Cmp):
        a = peek_eval(expr.left, row, index_of)
        b = peek_eval(expr.right, row, index_of)
        if a is None or b is None:
            return False
        return _PEEK_CMP[expr.op](a, b)
    if isinstance(expr, Arith):
        a = peek_eval(expr.left, row, index_of)
        b = peek_eval(expr.right, row, index_of)
        if a is None or b is None:
            return None
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        return a / b
    if isinstance(expr, And):
        return all(peek_eval(p, row, index_of) for p in expr.parts)
    if isinstance(expr, Or):
        return any(peek_eval(p, row, index_of) for p in expr.parts)
    if isinstance(expr, Not):
        return not peek_eval(expr.part, row, index_of)
    if isinstance(expr, Between):
        value = peek_eval(expr.part, row, index_of)
        return expr.lo <= value <= expr.hi
    if isinstance(expr, InList):
        return peek_eval(expr.part, row, index_of) in expr.values
    if isinstance(expr, StrPrefix):
        return str(peek_eval(expr.part, row, index_of)).startswith(expr.prefix)
    if isinstance(expr, StrSuffix):
        return str(peek_eval(expr.part, row, index_of)).endswith(expr.suffix)
    if isinstance(expr, StrContains):
        return expr.needle in str(peek_eval(expr.part, row, index_of))
    if isinstance(expr, StrSlice):
        return str(peek_eval(expr.part, row, index_of))[expr.start:expr.stop]
    if isinstance(expr, ExtractYear):
        from datetime import date as _date

        return _date.fromordinal(
            int(peek_eval(expr.part, row, index_of))
        ).year
    if isinstance(expr, TupleOf):
        return tuple(peek_eval(p, row, index_of) for p in expr.parts)
    if isinstance(expr, CaseWhen):
        if peek_eval(expr.cond, row, index_of):
            return peek_eval(expr.then, row, index_of)
        return peek_eval(expr.otherwise, row, index_of)
    raise PlanError(f"peek_eval cannot model {type(expr).__name__}")
