"""Column types, schemas, and row layout for the mini database engine.

Rows are fixed-width records: every column has a declared byte width
(integers/floats/dates are 8 bytes, strings are their declared width).
Fixed layout keeps the simulated-address arithmetic exact: the address
of row ``r`` column ``c`` inside a page is
``page_base + header + r * row_size + column_offset[c]``.

Values are plain Python objects (int/float/str); dates are stored as
integer day numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import CatalogError

INT = "int"
FLOAT = "float"
STR = "str"
DATE = "date"  # integer day number

_FIXED_WIDTH = {INT: 8, FLOAT: 8, DATE: 8}

#: Bytes of per-row header (slot id, null bitmap, MVCC-ish metadata).
ROW_HEADER_BYTES = 8


@dataclass(frozen=True)
class Column:
    """One column: a name, a type, and (for strings) a byte width."""

    name: str
    type: str
    width: int = 0

    def __post_init__(self) -> None:
        if self.type in _FIXED_WIDTH:
            object.__setattr__(self, "width", _FIXED_WIDTH[self.type])
        elif self.type == STR:
            if self.width <= 0:
                raise CatalogError(
                    f"string column {self.name!r} needs a positive width"
                )
        else:
            raise CatalogError(f"unknown column type {self.type!r}")


class Schema:
    """An ordered set of columns with O(1) name lookup and byte offsets."""

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise CatalogError("a schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in {names}")
        self.columns = tuple(columns)
        self._index = {c.name: i for i, c in enumerate(columns)}
        offsets = []
        cursor = ROW_HEADER_BYTES
        for column in columns:
            offsets.append(cursor)
            cursor += column.width
        self.offsets = tuple(offsets)
        self.row_size = cursor

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(f"unknown column {name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def offset_of(self, index: int) -> int:
        return self.offsets[index]

    def width_of(self, index: int) -> int:
        return self.columns[index].width

    def project(self, names: Sequence[str]) -> "Schema":
        """A schema of the named columns, in the given order."""
        return Schema([self.column(n) for n in names])

    def concat(self, other: "Schema") -> "Schema":
        """Join output schema: self's columns then other's.

        Name collisions on the right side are auto-renamed with an
        ``_r`` suffix (like an implicit qualifier); unqualified
        references keep binding to the left occurrence, which matches
        SQL's leftmost-wins resolution for natural-ish joins.
        """
        taken = set(self._index)
        merged: list[Column] = list(self.columns)
        for column in other.columns:
            name = column.name
            while name in taken:
                name += "_r"
            taken.add(name)
            merged.append(Column(name, column.type, column.width))
        return Schema(merged)


Row = tuple
"""A row is a plain tuple of values, positionally matching its schema."""
