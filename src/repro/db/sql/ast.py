"""AST node types for the SQL subset (parser output, pre-binding)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class Literal:
    value: object


@dataclass(frozen=True)
class ColumnRef:
    name: str
    table: Optional[str] = None  # optional qualifier


@dataclass(frozen=True)
class Unary:
    op: str  # 'NOT' | '-'
    operand: "SqlExpr"


@dataclass(frozen=True)
class Binary:
    op: str  # comparison, arithmetic, AND, OR
    left: "SqlExpr"
    right: "SqlExpr"


@dataclass(frozen=True)
class BetweenExpr:
    operand: "SqlExpr"
    lo: "SqlExpr"
    hi: "SqlExpr"
    negated: bool = False


@dataclass(frozen=True)
class InExpr:
    operand: "SqlExpr"
    values: tuple
    negated: bool = False


@dataclass(frozen=True)
class LikeExpr:
    operand: "SqlExpr"
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class CaseExpr:
    condition: "SqlExpr"
    then: "SqlExpr"
    otherwise: "SqlExpr"


@dataclass(frozen=True)
class AggCall:
    func: str            # SUM | COUNT | AVG | MIN | MAX
    argument: Optional["SqlExpr"]  # None = COUNT(*)
    distinct: bool = False


SqlExpr = Union[Literal, ColumnRef, Unary, Binary, BetweenExpr, InExpr,
                LikeExpr, CaseExpr, AggCall]


@dataclass(frozen=True)
class SelectItem:
    expr: SqlExpr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None


@dataclass(frozen=True)
class JoinClause:
    table: TableRef
    on: Optional[SqlExpr]  # None for comma-joins (conditions in WHERE)
    kind: str = "inner"    # 'inner' | 'left'


@dataclass(frozen=True)
class OrderItem:
    expr: SqlExpr
    descending: bool = False


@dataclass(frozen=True)
class SelectStmt:
    items: tuple            # of SelectItem ('*' select = empty tuple)
    select_star: bool
    tables: tuple           # of TableRef (first FROM entry)
    joins: tuple            # of JoinClause
    where: Optional[SqlExpr]
    group_by: tuple         # of SqlExpr
    having: Optional[SqlExpr]
    order_by: tuple         # of OrderItem
    limit: Optional[int]
    distinct: bool


@dataclass(frozen=True)
class InsertStmt:
    table: str
    rows: tuple     # of tuples of literal values


@dataclass(frozen=True)
class UpdateStmt:
    table: str
    assignments: tuple  # of (column, SqlExpr)
    where: Optional[SqlExpr]


@dataclass(frozen=True)
class DeleteStmt:
    table: str
    where: Optional[SqlExpr]


Statement = Union[SelectStmt, InsertStmt, UpdateStmt, DeleteStmt]
