"""Compact SQL front-end: SELECT-FROM-WHERE-JOIN-GROUP-ORDER-LIMIT."""

from repro.db.sql.lexer import Token, tokenize
from repro.db.sql.parser import parse
from repro.db.sql.translate import sql_to_plan

__all__ = ["Token", "tokenize", "parse", "sql_to_plan"]
