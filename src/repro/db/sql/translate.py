"""Binder + logical planner for the SQL subset.

Turns a parsed :class:`~repro.db.sql.ast.SelectStmt` into the logical
algebra of :mod:`repro.db.planner`:

* tables are resolved against the catalog (aliases supported); column
  names must be unambiguous across the FROM tables, which TPC-H-style
  prefixed schemas guarantee;
* WHERE conjuncts that compare columns of two different tables become
  join conditions; single-table conjuncts are pushed into the scans;
* explicit ``JOIN ... ON`` clauses join in syntax order; comma-joins
  are connected through the extracted equality conditions;
* aggregate calls in the select list / HAVING produce an Aggregate node
  whose outputs feed a final projection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SqlError
from repro.db import exprs as E
from repro.db.catalog import Catalog
from repro.db.operators import AggSpec
from repro.db.planner import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    Logical,
    Project,
    Scan,
    Sort,
)
from repro.db.sql import ast


@dataclass
class _Binding:
    """Name resolution context: which table provides which column."""

    catalog: Catalog
    #: alias -> real table name
    aliases: dict
    #: column name -> table name (unambiguous columns only)
    column_home: dict
    #: column names that appear in more than one table
    ambiguous: set

    @classmethod
    def build(cls, catalog: Catalog, refs) -> "_Binding":
        aliases: dict = {}
        column_home: dict = {}
        ambiguous: set = set()
        for ref in refs:
            table = catalog.table(ref.name)  # raises on unknown table
            key = ref.alias or ref.name
            if key in aliases:
                raise SqlError(f"duplicate table alias {key!r}")
            aliases[key] = ref.name
            for column in table.schema.names():
                if column in column_home and column_home[column] != ref.name:
                    ambiguous.add(column)
                column_home[column] = ref.name
        return cls(catalog, aliases, column_home, ambiguous)

    def resolve(self, ref: ast.ColumnRef) -> tuple[str, str]:
        """Return (table_name, column_name) for a column reference."""
        if ref.table is not None:
            table_name = self.aliases.get(ref.table)
            if table_name is None:
                raise SqlError(f"unknown table alias {ref.table!r}")
            if ref.name not in self.catalog.table(table_name).schema:
                raise SqlError(
                    f"column {ref.name!r} not in table {table_name!r}"
                )
            if ref.name in self.ambiguous:
                raise SqlError(
                    f"column {ref.name!r} exists in several tables; the "
                    "engine's plans bind by bare name, so qualified use of "
                    "a duplicated name is unsupported"
                )
            return table_name, ref.name
        home = self.column_home.get(ref.name)
        if home is None:
            raise SqlError(f"unknown column {ref.name!r}")
        if ref.name in self.ambiguous:
            raise SqlError(f"ambiguous column {ref.name!r}")
        return home, ref.name


def _like_expr(operand: E.Expr, pattern: str) -> E.Expr:
    has_prefix = pattern.startswith("%")
    has_suffix = pattern.endswith("%")
    inner = pattern.strip("%")
    if "%" in inner or "_" in pattern:
        raise SqlError(
            f"unsupported LIKE pattern {pattern!r}; use 'x%%', '%%x', "
            "or '%%x%%'"
        )
    if has_prefix and has_suffix:
        return E.StrContains(operand, inner)
    if has_suffix:
        return E.StrPrefix(operand, inner)
    if has_prefix:
        return E.StrSuffix(operand, inner)
    return E.Cmp("=", operand, E.Const(pattern))


class _Translator:
    def __init__(self, catalog: Catalog, stmt: ast.SelectStmt):
        self.catalog = catalog
        self.stmt = stmt
        refs = list(stmt.tables) + [j.table for j in stmt.joins]
        self.binding = _Binding.build(catalog, refs)
        self._agg_specs: list[AggSpec] = []
        self._agg_names: dict = {}

    @classmethod
    def for_table(cls, catalog: Catalog, table: str) -> "_Translator":
        """A single-table scalar translator (UPDATE/DELETE binding)."""
        translator = cls.__new__(cls)
        translator.catalog = catalog
        translator.stmt = None
        translator.binding = _Binding.build(catalog, [ast.TableRef(table)])
        translator._agg_specs = []
        translator._agg_names = {}
        return translator

    # ----------------------------------------------------- scalar exprs

    def scalar(self, node: ast.SqlExpr, allow_agg: bool = False) -> E.Expr:
        if isinstance(node, ast.Literal):
            return E.Const(node.value)
        if isinstance(node, ast.ColumnRef):
            _, column = self.binding.resolve(node)
            return E.Col(column)
        if isinstance(node, ast.Unary):
            if node.op == "NOT":
                return E.Not(self.scalar(node.operand, allow_agg))
            return E.Arith("-", E.Const(0), self.scalar(node.operand, allow_agg))
        if isinstance(node, ast.Binary):
            if node.op == "AND":
                return E.And(self.scalar(node.left, allow_agg),
                             self.scalar(node.right, allow_agg))
            if node.op == "OR":
                return E.Or(self.scalar(node.left, allow_agg),
                            self.scalar(node.right, allow_agg))
            left = self.scalar(node.left, allow_agg)
            right = self.scalar(node.right, allow_agg)
            if node.op in ("<>", "!="):
                return E.Cmp("!=", left, right)
            if node.op in ("=", "<", "<=", ">", ">="):
                return E.Cmp(node.op, left, right)
            if node.op in ("+", "-", "*", "/"):
                return E.Arith(node.op, left, right)
            raise SqlError(f"unsupported operator {node.op!r}")
        if isinstance(node, ast.BetweenExpr):
            lo = self.scalar(node.lo, allow_agg)
            hi = self.scalar(node.hi, allow_agg)
            part = self.scalar(node.operand, allow_agg)
            if isinstance(lo, E.Const) and isinstance(hi, E.Const):
                between: E.Expr = E.Between(part, lo.value, hi.value)
            else:
                between = E.And(E.Cmp(">=", part, lo), E.Cmp("<=", part, hi))
            return E.Not(between) if node.negated else between
        if isinstance(node, ast.InExpr):
            inner = E.InList(self.scalar(node.operand, allow_agg), node.values)
            return E.Not(inner) if node.negated else inner
        if isinstance(node, ast.LikeExpr):
            like = _like_expr(self.scalar(node.operand, allow_agg), node.pattern)
            return E.Not(like) if node.negated else like
        if isinstance(node, ast.CaseExpr):
            return E.CaseWhen(
                self.scalar(node.condition, allow_agg),
                self.scalar(node.then, allow_agg),
                self.scalar(node.otherwise, allow_agg),
            )
        if isinstance(node, ast.AggCall):
            if not allow_agg:
                raise SqlError("aggregate not allowed here")
            return E.Col(self._register_agg(node))
        raise SqlError(f"unsupported expression {type(node).__name__}")

    def _register_agg(self, call: ast.AggCall) -> str:
        key = call
        if key in self._agg_names:
            return self._agg_names[key]
        name = f"agg_{len(self._agg_specs)}"
        if call.func == "COUNT" and call.distinct:
            kind = "count_distinct"
        elif call.distinct:
            raise SqlError(f"DISTINCT is only supported inside COUNT")
        else:
            kind = call.func.lower()
        argument = None if call.argument is None else self.scalar(call.argument)
        self._agg_specs.append(AggSpec(name, kind, argument))
        self._agg_names[key] = name
        return name

    # ------------------------------------------------------------ joins

    def _tables_of(self, node: ast.SqlExpr) -> set:
        out: set = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, ast.ColumnRef):
                out.add(self.binding.resolve(current)[0])
            elif isinstance(current, ast.Binary):
                stack.extend((current.left, current.right))
            elif isinstance(current, ast.Unary):
                stack.append(current.operand)
            elif isinstance(current, ast.BetweenExpr):
                stack.extend((current.operand, current.lo, current.hi))
            elif isinstance(current, (ast.InExpr, ast.LikeExpr)):
                stack.append(current.operand)
            elif isinstance(current, ast.CaseExpr):
                stack.extend((current.condition, current.then, current.otherwise))
            elif isinstance(current, ast.AggCall) and current.argument is not None:
                stack.append(current.argument)
        return out

    @staticmethod
    def _conjuncts(node: Optional[ast.SqlExpr]) -> list:
        if node is None:
            return []
        if isinstance(node, ast.Binary) and node.op == "AND":
            return (_Translator._conjuncts(node.left)
                    + _Translator._conjuncts(node.right))
        return [node]

    def _is_equijoin(self, node: ast.SqlExpr) -> Optional[tuple]:
        """Return ((table, col), (table, col)) for a cross-table col=col."""
        if (isinstance(node, ast.Binary) and node.op == "="
                and isinstance(node.left, ast.ColumnRef)
                and isinstance(node.right, ast.ColumnRef)):
            left = self.binding.resolve(node.left)
            right = self.binding.resolve(node.right)
            if left[0] != right[0]:
                return left, right
        return None

    def build_from(self) -> tuple[Logical, list]:
        """Build the join tree; returns (plan, leftover_conjuncts)."""
        stmt = self.stmt
        conjuncts = self._conjuncts(stmt.where)
        # Partition WHERE into per-table filters, join equalities, rest.
        table_filters: dict = {}
        join_conds: list = []
        leftover: list = []
        for conj in conjuncts:
            eq = self._is_equijoin(conj)
            if eq is not None:
                join_conds.append(eq)
                continue
            tables = self._tables_of(conj)
            if len(tables) == 1:
                table_filters.setdefault(tables.pop(), []).append(conj)
            else:
                leftover.append(conj)

        def scan_of(name: str) -> Scan:
            parts = [self.scalar(c) for c in table_filters.pop(name, [])]
            return Scan(name, E.and_all(parts))

        joined: set = set()
        first = stmt.tables[0].name
        plan: Logical = scan_of(first)
        joined.add(first)

        def connect(name: str, kind: str,
                    on: Optional[ast.SqlExpr]) -> None:
            nonlocal plan
            condition = None
            if on is not None:
                eq = self._is_equijoin(on)
                if eq is None:
                    raise SqlError("JOIN ... ON must be a column equality")
                condition = eq
            else:
                for index, (left, right) in enumerate(join_conds):
                    if ((left[0] == name and right[0] in joined)
                            or (right[0] == name and left[0] in joined)):
                        condition = join_conds.pop(index)
                        break
            if condition is None:
                raise SqlError(
                    f"no join condition connects table {name!r}"
                )
            left, right = condition
            if left[0] == name:
                left, right = right, left
            if left[0] not in joined:
                raise SqlError(
                    f"join condition for {name!r} references the "
                    f"not-yet-joined table {left[0]!r}"
                )
            plan = Join(plan, scan_of(name),
                        E.Col(left[1]), E.Col(right[1]), kind=kind)
            joined.add(name)

        for ref in stmt.tables[1:]:
            connect(ref.name, "inner", None)
        for clause in stmt.joins:
            connect(clause.table.name, clause.kind, clause.on)
        # Any remaining extracted equalities act as post-join filters.
        for left, right in join_conds:
            leftover.append(
                ast.Binary("=", ast.ColumnRef(left[1]), ast.ColumnRef(right[1]))
            )
        return plan, leftover

    # ------------------------------------------------------------ driver

    def translate(self) -> Logical:
        stmt = self.stmt
        plan, leftover = self.build_from()
        if leftover:
            parts = [self.scalar(c) for c in leftover]
            plan = Filter(plan, E.and_all(parts))

        has_aggregates = bool(stmt.group_by) or _contains_agg(stmt)
        output_names: list[str] = []
        if has_aggregates:
            if stmt.select_star:
                raise SqlError("SELECT * cannot be combined with aggregates")
            group_by = []
            group_names = {}
            for index, expr in enumerate(stmt.group_by):
                if isinstance(expr, ast.ColumnRef):
                    name = self.binding.resolve(expr)[1]
                else:
                    name = f"group_{index}"
                group_by.append((name, self.scalar(expr)))
                group_names[_freeze(expr)] = name
            outputs = []
            for index, item in enumerate(stmt.items):
                name = item.alias or _default_name(item.expr, self.binding, index)
                frozen = _freeze(item.expr)
                if frozen in group_names:
                    outputs.append((name, E.Col(group_names[frozen])))
                else:
                    outputs.append((name, self.scalar(item.expr, allow_agg=True)))
                output_names.append(name)
            having = (self.scalar(stmt.having, allow_agg=True)
                      if stmt.having is not None else None)
            plan = Aggregate(plan, tuple(group_by), tuple(self._agg_specs),
                             having=having)
            plan = Project(plan, tuple(outputs))
        elif not stmt.select_star:
            outputs = []
            for index, item in enumerate(stmt.items):
                name = item.alias or _default_name(item.expr, self.binding, index)
                outputs.append((name, self.scalar(item.expr)))
                output_names.append(name)
            plan = Project(plan, tuple(outputs))

        if stmt.distinct:
            plan = Distinct(plan)
        if stmt.order_by:
            keys = []
            for item in stmt.order_by:
                expr = item.expr
                if (isinstance(expr, ast.ColumnRef) and expr.table is None
                        and expr.name in output_names):
                    key: E.Expr = E.Col(expr.name)
                else:
                    key = self.scalar(expr, allow_agg=has_aggregates)
                keys.append((key, item.descending))
            plan = Sort(plan, tuple(keys), limit=stmt.limit)
        elif stmt.limit is not None:
            plan = Limit(plan, stmt.limit)
        return plan


def _freeze(node: ast.SqlExpr):
    return node  # AST nodes are frozen dataclasses: hashable as-is


def _default_name(expr: ast.SqlExpr, binding: _Binding, index: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return binding.resolve(expr)[1]
    if isinstance(expr, ast.AggCall):
        return expr.func.lower()
    return f"col_{index}"


def _contains_agg(stmt: ast.SelectStmt) -> bool:
    def walk(node) -> bool:
        if isinstance(node, ast.AggCall):
            return True
        if isinstance(node, ast.Binary):
            return walk(node.left) or walk(node.right)
        if isinstance(node, ast.Unary):
            return walk(node.operand)
        if isinstance(node, ast.CaseExpr):
            return walk(node.condition) or walk(node.then) or walk(node.otherwise)
        if isinstance(node, (ast.BetweenExpr,)):
            return walk(node.operand)
        if isinstance(node, (ast.InExpr, ast.LikeExpr)):
            return walk(node.operand)
        return False

    items = [i.expr for i in stmt.items]
    if stmt.having is not None:
        items.append(stmt.having)
    return any(walk(e) for e in items)


def sql_to_plan(catalog: Catalog, text: str) -> Logical:
    """Parse and bind one SELECT statement into a logical plan."""
    from repro.db.sql.parser import parse

    return _Translator(catalog, parse(text)).translate()


def bind_dml(catalog: Catalog, stmt):
    """Bind an UPDATE/DELETE statement's expressions against its table.

    Returns ``(assignments, predicate)`` for UPDATE and ``predicate``
    for DELETE, with every expression compiled-ready.
    """
    translator = _Translator.for_table(catalog, stmt.table)
    if isinstance(stmt, ast.UpdateStmt):
        schema = catalog.table(stmt.table).schema
        assignments = {}
        for column, expr in stmt.assignments:
            if column not in schema:
                raise SqlError(
                    f"unknown column {column!r} in UPDATE {stmt.table}"
                )
            assignments[column] = translator.scalar(expr)
        predicate = (translator.scalar(stmt.where)
                     if stmt.where is not None else None)
        return assignments, predicate
    if isinstance(stmt, ast.DeleteStmt):
        return (translator.scalar(stmt.where)
                if stmt.where is not None else None)
    raise SqlError(f"not a DML statement: {type(stmt).__name__}")
