"""Tokenizer for the SQL subset.

Token kinds: KEYWORD (upper-cased), IDENT, NUMBER, STRING, and operator
punctuation.  Dates are written ``DATE 'YYYY-MM-DD'`` and folded into
NUMBER tokens (proleptic ordinals) by the parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SqlError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "LIMIT", "AS", "AND", "OR", "NOT", "BETWEEN", "IN", "LIKE",
    "JOIN", "ON", "INNER", "LEFT", "OUTER", "ASC", "DESC", "SUM",
    "COUNT", "AVG", "MIN", "MAX", "DATE", "CASE", "WHEN", "THEN",
    "ELSE", "END", "IS", "NULL", "INSERT", "INTO", "VALUES",
    "UPDATE", "SET", "DELETE",
}

_PUNCT = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "+",
          "-", "*", "/", ".")


@dataclass(frozen=True)
class Token:
    kind: str    # 'KEYWORD' | 'IDENT' | 'NUMBER' | 'STRING' | 'PUNCT' | 'EOF'
    value: str
    pos: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.value == word

    def is_punct(self, *symbols: str) -> bool:
        return self.kind == "PUNCT" and self.value in symbols


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`SqlError` on stray characters."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i:i + 2] == "--":
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token("KEYWORD", upper, start)
            else:
                yield Token("IDENT", word, start)
            continue
        if ch.isdigit():
            start = i
            seen_dot = False
            while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    # A trailing dot followed by non-digit is punctuation.
                    if i + 1 >= n or not text[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            yield Token("NUMBER", text[start:i], start)
            continue
        if ch == "'":
            start = i
            i += 1
            chunks = []
            while True:
                if i >= n:
                    raise SqlError(f"unterminated string at position {start}")
                if text[i] == "'":
                    if text[i:i + 2] == "''":  # escaped quote
                        chunks.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                chunks.append(text[i])
                i += 1
            yield Token("STRING", "".join(chunks), start)
            continue
        matched = False
        for punct in _PUNCT:
            if text.startswith(punct, i):
                yield Token("PUNCT", punct, i)
                i += len(punct)
                matched = True
                break
        if not matched:
            raise SqlError(f"unexpected character {ch!r} at position {i}")
    yield Token("EOF", "", n)
