"""Recursive-descent parser for the SQL subset.

Grammar (roughly)::

    select   := SELECT [DISTINCT] items FROM from_clause
                [WHERE expr] [GROUP BY exprs] [HAVING expr]
                [ORDER BY order_items] [LIMIT n]
    items    := '*' | item (',' item)*
    item     := expr [AS ident]
    from     := table_ref ((',' table_ref) | join_clause)*
    join     := [INNER | LEFT [OUTER]] JOIN table_ref ON expr
    expr     := or_expr
    or_expr  := and_expr (OR and_expr)*
    and_expr := not_expr (AND not_expr)*
    not_expr := [NOT] predicate
    pred     := additive [cmp additive | BETWEEN .. AND .. | IN (..)
                | LIKE '..']
    additive := term (('+'|'-') term)*
    term     := factor (('*'|'/') factor)*
    factor   := literal | ident['.'ident] | agg '(' .. ')' | '(' expr ')'
                | DATE 'Y-M-D' | CASE WHEN e THEN e ELSE e END | '-'factor
"""

from __future__ import annotations

from datetime import date
from typing import Optional

from repro.errors import SqlError
from repro.db.sql.ast import (
    AggCall,
    DeleteStmt,
    InsertStmt,
    UpdateStmt,
    BetweenExpr,
    Binary,
    CaseExpr,
    ColumnRef,
    InExpr,
    JoinClause,
    LikeExpr,
    Literal,
    OrderItem,
    SelectItem,
    SelectStmt,
    SqlExpr,
    TableRef,
    Unary,
)
from repro.db.sql.lexer import Token, tokenize

_AGG_FUNCS = {"SUM", "COUNT", "AVG", "MIN", "MAX"}
_CMP_OPS = {"=", "<", "<=", ">", ">=", "<>", "!="}


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.index = 0

    # ---------------------------------------------------------- plumbing

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SqlError(
                f"expected {word} near position {self.current.pos} "
                f"(got {self.current.value!r})"
            )

    def accept_punct(self, *symbols: str) -> Optional[str]:
        if self.current.is_punct(*symbols):
            return self.advance().value
        return None

    def expect_punct(self, symbol: str) -> None:
        if not self.accept_punct(symbol):
            raise SqlError(
                f"expected {symbol!r} near position {self.current.pos} "
                f"(got {self.current.value!r})"
            )

    def expect_ident(self) -> str:
        if self.current.kind != "IDENT":
            raise SqlError(
                f"expected identifier near position {self.current.pos} "
                f"(got {self.current.value!r})"
            )
        return self.advance().value

    # ------------------------------------------------------------ select

    def parse_select(self) -> SelectStmt:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        select_star = False
        items: list[SelectItem] = []
        if self.accept_punct("*"):
            select_star = True
        else:
            items.append(self._select_item())
            while self.accept_punct(","):
                items.append(self._select_item())
        self.expect_keyword("FROM")
        tables = [self._table_ref()]
        joins: list[JoinClause] = []
        while True:
            if self.accept_punct(","):
                tables.append(self._table_ref())
                continue
            kind = None
            if self.current.is_keyword("JOIN"):
                kind = "inner"
                self.advance()
            elif self.current.is_keyword("INNER"):
                self.advance()
                self.expect_keyword("JOIN")
                kind = "inner"
            elif self.current.is_keyword("LEFT"):
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                kind = "left"
            if kind is None:
                break
            table = self._table_ref()
            self.expect_keyword("ON")
            condition = self.parse_expr()
            joins.append(JoinClause(table=table, on=condition, kind=kind))
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: list[SqlExpr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())
        having = self.parse_expr() if self.accept_keyword("HAVING") else None
        order_by: list[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._order_item())
            while self.accept_punct(","):
                order_by.append(self._order_item())
        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.advance()
            if token.kind != "NUMBER" or "." in token.value:
                raise SqlError("LIMIT expects an integer")
            limit = int(token.value)
        if self.current.kind != "EOF":
            raise SqlError(
                f"unexpected trailing input at position {self.current.pos}: "
                f"{self.current.value!r}"
            )
        return SelectStmt(
            items=tuple(items),
            select_star=select_star,
            tables=tuple(tables),
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "IDENT":
            alias = self.advance().value
        return SelectItem(expr=expr, alias=alias)

    def _table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "IDENT":
            alias = self.advance().value
        return TableRef(name=name, alias=alias)

    def _order_item(self) -> OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr=expr, descending=descending)

    def _expect_eof(self) -> None:
        if self.current.kind != "EOF":
            raise SqlError(
                f"unexpected trailing input at position {self.current.pos}: "
                f"{self.current.value!r}"
            )

    def parse_insert(self) -> InsertStmt:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        self.expect_keyword("VALUES")
        rows = [self._value_tuple()]
        while self.accept_punct(","):
            rows.append(self._value_tuple())
        self._expect_eof()
        return InsertStmt(table=table, rows=tuple(rows))

    def _value_tuple(self) -> tuple:
        self.expect_punct("(")
        values = [self._insert_value()]
        while self.accept_punct(","):
            values.append(self._insert_value())
        self.expect_punct(")")
        return tuple(values)

    def _insert_value(self):
        if self.current.is_keyword("DATE"):
            expr = self._factor()
            return expr.value
        if self.current.is_keyword("NULL"):
            self.advance()
            return None
        negative = bool(self.accept_punct("-"))
        value = self._literal_value()
        return -value if negative else value

    def parse_update(self) -> UpdateStmt:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self._assignment()]
        while self.accept_punct(","):
            assignments.append(self._assignment())
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        self._expect_eof()
        return UpdateStmt(table=table, assignments=tuple(assignments),
                          where=where)

    def _assignment(self) -> tuple:
        column = self.expect_ident()
        self.expect_punct("=")
        return column, self.parse_expr()

    def parse_delete(self) -> DeleteStmt:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        self._expect_eof()
        return DeleteStmt(table=table, where=where)

    # -------------------------------------------------------- expressions

    def parse_expr(self) -> SqlExpr:
        return self._or_expr()

    def _or_expr(self) -> SqlExpr:
        left = self._and_expr()
        while self.accept_keyword("OR"):
            left = Binary("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> SqlExpr:
        left = self._not_expr()
        while self.accept_keyword("AND"):
            left = Binary("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> SqlExpr:
        if self.accept_keyword("NOT"):
            return Unary("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self) -> SqlExpr:
        left = self._additive()
        negated = self.accept_keyword("NOT")
        if self.accept_keyword("BETWEEN"):
            lo = self._additive()
            self.expect_keyword("AND")
            hi = self._additive()
            return BetweenExpr(left, lo, hi, negated=negated)
        if self.accept_keyword("IN"):
            self.expect_punct("(")
            values = [self._literal_value()]
            while self.accept_punct(","):
                values.append(self._literal_value())
            self.expect_punct(")")
            return InExpr(left, tuple(values), negated=negated)
        if self.accept_keyword("LIKE"):
            token = self.advance()
            if token.kind != "STRING":
                raise SqlError("LIKE expects a string pattern")
            return LikeExpr(left, token.value, negated=negated)
        if negated:
            raise SqlError("NOT must precede BETWEEN / IN / LIKE here")
        op = self.accept_punct(*_CMP_OPS)
        if op is not None:
            return Binary(op, left, self._additive())
        return left

    def _additive(self) -> SqlExpr:
        left = self._term()
        while True:
            op = self.accept_punct("+", "-")
            if op is None:
                return left
            left = Binary(op, left, self._term())

    def _term(self) -> SqlExpr:
        left = self._factor()
        while True:
            op = self.accept_punct("*", "/")
            if op is None:
                return left
            left = Binary(op, left, self._factor())

    def _literal_value(self):
        token = self.advance()
        if token.kind == "NUMBER":
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "STRING":
            return token.value
        raise SqlError(f"expected literal at position {token.pos}")

    def _factor(self) -> SqlExpr:
        token = self.current
        if token.is_punct("-"):
            self.advance()
            return Unary("-", self._factor())
        if token.is_punct("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "STRING":
            self.advance()
            return Literal(token.value)
        if token.is_keyword("DATE"):
            self.advance()
            text_token = self.advance()
            if text_token.kind != "STRING":
                raise SqlError("DATE expects a 'YYYY-MM-DD' string")
            try:
                year, month, day = (int(p) for p in text_token.value.split("-"))
                return Literal(date(year, month, day).toordinal())
            except ValueError as exc:
                raise SqlError(
                    f"bad date literal {text_token.value!r}"
                ) from exc
        if token.is_keyword("CASE"):
            self.advance()
            self.expect_keyword("WHEN")
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            then = self.parse_expr()
            self.expect_keyword("ELSE")
            otherwise = self.parse_expr()
            self.expect_keyword("END")
            return CaseExpr(condition, then, otherwise)
        if token.kind == "KEYWORD" and token.value in _AGG_FUNCS:
            func = self.advance().value
            self.expect_punct("(")
            distinct = self.accept_keyword("DISTINCT")
            if self.accept_punct("*"):
                if func != "COUNT":
                    raise SqlError(f"{func}(*) is not valid")
                argument = None
            else:
                argument = self.parse_expr()
            self.expect_punct(")")
            return AggCall(func=func, argument=argument, distinct=distinct)
        if token.kind == "IDENT":
            first = self.advance().value
            if self.accept_punct("."):
                column = self.expect_ident()
                return ColumnRef(name=column, table=first)
            return ColumnRef(name=first)
        raise SqlError(
            f"unexpected token {token.value!r} at position {token.pos}"
        )


def parse(text: str) -> SelectStmt:
    """Parse one SELECT statement."""
    return _Parser(text).parse_select()


def parse_statement(text: str):
    """Parse one statement of any supported kind (SELECT / INSERT /
    UPDATE / DELETE)."""
    parser = _Parser(text)
    token = parser.current
    if token.is_keyword("SELECT"):
        return parser.parse_select()
    if token.is_keyword("INSERT"):
        return parser.parse_insert()
    if token.is_keyword("UPDATE"):
        return parser.parse_update()
    if token.is_keyword("DELETE"):
        return parser.parse_delete()
    raise SqlError(f"expected a statement, got {token.value!r}")
