"""B-tree index over simulated memory, with micro-op accounting.

Every table in SQLite is a B-tree; MySQL/InnoDB clusters rows in the
primary-key B-tree; PostgreSQL uses B-trees for secondary indexes.  The
paper's index-scan analysis (§3.2) hinges on the pointer chasing this
structure causes — descending the tree is a chain of *dependent* loads
with weak locality, in contrast to the sequential table scan.

Nodes live in simulated-memory regions.  The tree issues loads for the
keys it compares and the child/next pointers it follows; payload field
reads are the caller's job (it knows which columns it needs), using the
entry addresses this module hands out.

The §4.2 co-design hook: :meth:`BTree.relocate_top_levels` moves the
root and upper layers into DTCM, so that the hot top-of-tree loads
bypass the L1D cache entirely.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.errors import DatabaseError
from repro.sim.address_space import Region
from repro.sim.machine import Machine
from repro.sim.tcm import TcmAllocator

logger = logging.getLogger(__name__)

#: Per-node header bytes (level, count, sibling pointer, parent hint).
NODE_HEADER_BYTES = 24
#: Bytes of one key and one child pointer.
KEY_BYTES = 8
PTR_BYTES = 8


@dataclass
class _Node:
    leaf: bool
    keys: list
    #: children for internal nodes; payloads for leaves.
    values: list
    region: Region
    next_leaf: Optional["_Node"] = None

    def entry_addr(self, index: int, entry_bytes: int) -> int:
        return self.region.base + NODE_HEADER_BYTES + index * entry_bytes


class BTree:
    """Order-configurable B-tree with bulk load, insert, search, scans.

    Parameters
    ----------
    machine:
        The machine whose memory/ops the tree uses.
    name:
        Label for allocations.
    payload_bytes:
        Width of each leaf payload.  8 for a (page, slot) row reference;
        a full row size for clustered organisations.
    node_bytes:
        Size of every node region (default 4 KiB).
    """

    def __init__(
        self,
        machine: Machine,
        name: str,
        payload_bytes: int = 8,
        node_bytes: int = 4096,
    ):
        self.machine = machine
        self.name = name
        self.node_bytes = node_bytes
        self.payload_bytes = payload_bytes
        self.leaf_entry_bytes = KEY_BYTES + payload_bytes
        self.internal_entry_bytes = KEY_BYTES + PTR_BYTES
        usable = node_bytes - NODE_HEADER_BYTES
        self.leaf_capacity = max(2, usable // self.leaf_entry_bytes)
        self.internal_capacity = max(3, usable // self.internal_entry_bytes)
        self._root = self._new_node(leaf=True)
        self.n_entries = 0
        self.height = 1

    # ------------------------------------------------------------ building

    def _new_node(self, leaf: bool) -> _Node:
        region = self.machine.address_space.alloc(
            self.node_bytes, label=f"btree/{self.name}"
        )
        return _Node(leaf=leaf, keys=[], values=[], region=region)

    def bulk_load(self, pairs: Sequence[tuple]) -> None:
        """Build the tree from sorted ``(key, payload)`` pairs.

        Bottom-up build at ~90% fill factor, the standard bulk path.
        Issues stores for every entry written (index build cost).
        """
        if self.n_entries:
            raise DatabaseError("bulk_load requires an empty tree")
        keys = [p[0] for p in pairs]
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            raise DatabaseError("bulk_load input must be key-sorted")
        machine = self.machine
        with machine.tracer.span(f"btree.bulk_load:{self.name}",
                                 category="index", entries=len(pairs)):
            fill = max(2, self.leaf_capacity * 9 // 10)
            leaves: list[_Node] = []
            for start in range(0, len(pairs), fill):
                node = self._new_node(leaf=True)
                chunk = pairs[start:start + fill]
                node.keys = [k for k, _ in chunk]
                node.values = [v for _, v in chunk]
                machine.store_bytes(node.region.base + NODE_HEADER_BYTES,
                                    len(chunk) * self.leaf_entry_bytes)
                if leaves:
                    leaves[-1].next_leaf = node
                leaves.append(node)
            if not leaves:
                return
            level = leaves
            height = 1
            ifill = max(2, self.internal_capacity * 9 // 10)
            while len(level) > 1:
                parents: list[_Node] = []
                for start in range(0, len(level), ifill):
                    node = self._new_node(leaf=False)
                    chunk = level[start:start + ifill]
                    node.keys = [c.keys[0] for c in chunk]
                    node.values = list(chunk)
                    machine.store_bytes(node.region.base + NODE_HEADER_BYTES,
                                        len(chunk) * self.internal_entry_bytes)
                    parents.append(node)
                level = parents
                height += 1
            self._root = level[0]
            self.height = height
            self.n_entries = len(pairs)
            logger.debug("btree %s: bulk-loaded %d entries, height %d",
                         self.name, len(pairs), height)

    # ------------------------------------------------------------ lookups

    def _binary_search(self, node: _Node, key) -> int:
        """Rightmost position with ``keys[pos] <= key`` (-1 if none).

        Issues one dependent key load + compare + branch per probe —
        the pointer-chasing cost of tree descent."""
        machine = self.machine
        entry_bytes = (
            self.leaf_entry_bytes if node.leaf else self.internal_entry_bytes
        )
        lo, hi = 0, len(node.keys) - 1
        pos = -1
        while lo <= hi:
            mid = (lo + hi) // 2
            machine.load(node.entry_addr(mid, entry_bytes), dependent=True)
            machine.cmp(1)
            machine.branch(1)
            if node.keys[mid] <= key:
                pos = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return pos

    def _binary_search_left(self, node: _Node, key) -> int:
        """Rightmost position with ``keys[pos] < key`` (strict; -1 if none).

        Used for range starts: with duplicate keys the descent must land
        on the *leftmost* subtree that can contain ``key``."""
        machine = self.machine
        entry_bytes = (
            self.leaf_entry_bytes if node.leaf else self.internal_entry_bytes
        )
        lo, hi = 0, len(node.keys) - 1
        pos = -1
        while lo <= hi:
            mid = (lo + hi) // 2
            machine.load(node.entry_addr(mid, entry_bytes), dependent=True)
            machine.cmp(1)
            machine.branch(1)
            if node.keys[mid] < key:
                pos = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return pos

    def _descend(self, key) -> _Node:
        node = self._root
        machine = self.machine
        while not node.leaf:
            pos = self._binary_search(node, key)
            pos = max(pos, 0)
            machine.load(
                node.entry_addr(pos, self.internal_entry_bytes) + KEY_BYTES,
                dependent=True,
            )
            node = node.values[pos]
        return node

    def _descend_left(self, key) -> _Node:
        """Descend to the leftmost leaf that may hold ``key``."""
        node = self._root
        machine = self.machine
        while not node.leaf:
            pos = max(self._binary_search_left(node, key), 0)
            machine.load(
                node.entry_addr(pos, self.internal_entry_bytes) + KEY_BYTES,
                dependent=True,
            )
            node = node.values[pos]
        return node

    def search(self, key) -> Optional[tuple]:
        """Point lookup: returns ``(payload, entry_addr)`` or None."""
        leaf = self._descend(key)
        pos = self._binary_search(leaf, key)
        if pos >= 0 and leaf.keys[pos] == key:
            return leaf.values[pos], leaf.entry_addr(pos, self.leaf_entry_bytes)
        return None

    def peek_entries(self) -> Iterator[tuple]:
        """Charge-free key-order walk yielding ``(key, payload)``.

        The statistics collector (:mod:`repro.db.stats`) reads rows the
        way a real ANALYZE reads its shadow sample: no simulated
        micro-ops are issued, so estimation never perturbs a measured
        window.  Everything that models execution must use
        :meth:`scan_all` / :meth:`range_scan` instead.
        """
        node: Optional[_Node] = self._root
        while not node.leaf:
            node = node.values[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    def scan_all(self, on_leaf=None) -> Iterator[tuple]:
        """Full scan in key order: yields ``(key, payload, entry_addr)``.

        Issues the next-leaf pointer chase per leaf and one key load per
        entry; payload field loads are the caller's responsibility.
        ``on_leaf(node)`` fires when a leaf is entered — the clustered
        table storage uses it to charge pager I/O per leaf page."""
        machine = self.machine
        node: Optional[_Node] = self._leftmost_leaf()
        while node is not None:
            if on_leaf is not None:
                on_leaf(node)
            base = node.region.base + NODE_HEADER_BYTES
            for i, key in enumerate(node.keys):
                addr = base + i * self.leaf_entry_bytes
                machine.load(addr)
                yield key, node.values[i], addr
            machine.load(node.region.base + 8, dependent=True)  # next ptr
            node = node.next_leaf

    def range_scan(self, lo, hi, on_leaf=None) -> Iterator[tuple]:
        """Yield ``(key, payload, entry_addr)`` for lo <= key <= hi."""
        machine = self.machine
        node: Optional[_Node] = self._descend_left(lo)
        # Leftmost entry >= lo inside the leaf.
        start = self._binary_search_left(node, lo) + 1
        index = start
        while node is not None:
            if on_leaf is not None:
                on_leaf(node)
            base = node.region.base + NODE_HEADER_BYTES
            while index < len(node.keys):
                key = node.keys[index]
                machine.load(base + index * self.leaf_entry_bytes)
                machine.cmp(1)
                if key > hi:
                    return
                yield key, node.values[index], base + index * self.leaf_entry_bytes
                index += 1
            machine.load(node.region.base + 8, dependent=True)
            node = node.next_leaf
            index = 0

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        machine = self.machine
        while not node.leaf:
            machine.load(
                node.entry_addr(0, self.internal_entry_bytes) + KEY_BYTES,
                dependent=True,
            )
            node = node.values[0]
        return node

    # ------------------------------------------------------------ insert

    def insert(self, key, payload) -> None:
        """Insert one entry, splitting on the way back up as needed."""
        path: list[tuple[_Node, int]] = []
        node = self._root
        machine = self.machine
        while not node.leaf:
            pos = max(self._binary_search(node, key), 0)
            machine.load(
                node.entry_addr(pos, self.internal_entry_bytes) + KEY_BYTES,
                dependent=True,
            )
            path.append((node, pos))
            node = node.values[pos]
        pos = self._binary_search(node, key) + 1
        node.keys.insert(pos, key)
        node.values.insert(pos, payload)
        machine.store_bytes(
            node.entry_addr(pos, self.leaf_entry_bytes), self.leaf_entry_bytes
        )
        self.n_entries += 1
        self._split_up(node, path)

    def _split_up(self, node: _Node, path: list[tuple[_Node, int]]) -> None:
        machine = self.machine
        while True:
            capacity = self.leaf_capacity if node.leaf else self.internal_capacity
            if len(node.keys) <= capacity:
                return
            mid = len(node.keys) // 2
            sibling = self._new_node(leaf=node.leaf)
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            if node.leaf:
                sibling.next_leaf = node.next_leaf
                node.next_leaf = sibling
            entry = self.leaf_entry_bytes if node.leaf else self.internal_entry_bytes
            moved = len(sibling.keys) * entry
            machine.load_bytes(node.region.base + NODE_HEADER_BYTES, moved)
            machine.store_bytes(sibling.region.base + NODE_HEADER_BYTES, moved)
            separator = sibling.keys[0]
            if not path:
                new_root = self._new_node(leaf=False)
                new_root.keys = [node.keys[0], separator]
                new_root.values = [node, sibling]
                machine.store_bytes(
                    new_root.region.base + NODE_HEADER_BYTES,
                    2 * self.internal_entry_bytes,
                )
                self._root = new_root
                self.height += 1
                return
            parent, pos = path.pop()
            parent.keys.insert(pos + 1, separator)
            parent.values.insert(pos + 1, sibling)
            machine.store_bytes(
                parent.entry_addr(pos + 1, self.internal_entry_bytes),
                self.internal_entry_bytes,
            )
            node = parent

    def update_payload(self, key, payload) -> bool:
        """Overwrite the payload of an existing key; False if absent."""
        leaf = self._descend(key)
        pos = self._binary_search(leaf, key)
        if pos < 0 or leaf.keys[pos] != key:
            return False
        leaf.values[pos] = payload
        self.machine.store_bytes(
            leaf.entry_addr(pos, self.leaf_entry_bytes) + KEY_BYTES,
            self.payload_bytes,
        )
        return True

    _ANY = object()

    def delete(self, key, payload=_ANY) -> bool:
        """Remove one entry with ``key``; returns whether one existed.

        With duplicate keys, ``payload`` selects which entry dies (the
        first duplicate otherwise).  Simple leaf deletion without
        rebalancing: leaves may become underfull (and empty leaves stay
        chained).  That trades a textbook invariant for simplicity —
        searches and scans remain correct, which is all the mini engine
        needs.
        """
        leaf = self._descend_left(key)
        machine = self.machine
        while leaf is not None:
            pos = self._binary_search_left(leaf, key) + 1  # leftmost >= key
            while pos < len(leaf.keys):
                if leaf.keys[pos] != key:
                    return False  # past the duplicates: not found
                if payload is self._ANY or leaf.values[pos] == payload:
                    break
                machine.load(leaf.entry_addr(pos, self.leaf_entry_bytes))
                machine.cmp(1)
                pos += 1
            if pos < len(leaf.keys):
                del leaf.keys[pos]
                del leaf.values[pos]
                # Compact the slot array: shift the tail entries down.
                tail = len(leaf.keys) - pos
                if tail > 0:
                    machine.load_bytes(
                        leaf.entry_addr(pos, self.leaf_entry_bytes),
                        tail * self.leaf_entry_bytes,
                    )
                machine.store_bytes(
                    leaf.entry_addr(pos, self.leaf_entry_bytes),
                    max(1, tail) * self.leaf_entry_bytes,
                )
                self.n_entries -= 1
                return True
            # Every key in this leaf is < key: follow the sibling chain.
            machine.load(leaf.region.base + 8, dependent=True)
            leaf = leaf.next_leaf
        return False

    # ------------------------------------------------------------ topology

    def levels(self) -> list[list[_Node]]:
        """Nodes per level, root first (used by the DTCM co-design)."""
        out = [[self._root]]
        while not out[-1][0].leaf:
            out.append([c for n in out[-1] for c in n.values])
        return out

    @property
    def n_nodes(self) -> int:
        return sum(len(level) for level in self.levels())

    def relocate_top_levels(self, tcm: TcmAllocator, budget_bytes: int) -> int:
        """Move the root and as many upper levels as fit into DTCM.

        Returns the number of nodes relocated.  Node *contents* stay
        put (keys/values are Python state); only the simulated address
        changes, which is exactly what placement in scratchpad means.
        """
        relocated = 0
        spent = 0
        for level in self.levels():
            level_bytes = len(level) * self.node_bytes
            if spent + level_bytes > budget_bytes:
                break
            for node in level:
                region = tcm.alloc(self.node_bytes, label=f"btree/{self.name}/tcm")
                node.region = region
                relocated += 1
            spent += level_bytes
        return relocated

    def keys_in_order(self) -> list:
        """All keys in order, without machine accounting (testing aid)."""
        out = []
        node: Optional[_Node] = self._root
        while not node.leaf:
            node = node.values[0]
        while node is not None:
            out.extend(node.keys)
            node = node.next_leaf
        return out
