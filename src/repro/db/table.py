"""Table storage organisations: heap files and clustered B-trees.

* :class:`HeapTable` — PostgreSQL-style: rows live in heap pages behind
  the buffer pool; indexes are separate B-trees whose payloads are
  ``(page_no, slot)`` row references.
* :class:`ClusteredTable` — SQLite/InnoDB-style: the table *is* a
  B-tree keyed by rowid/primary key, rows stored in the leaves; leaf
  pages go through a pager (LRU over the configured cache size).

Both expose the same access paths so the executor stays storage-neutral:

* ``seq_scan(needed)`` — all rows in physical/key order;
* ``fetch_row(rowref, needed)`` — one row by reference (heap only);
* ``key_lookup`` / ``key_range`` — primary-key access (clustered only).

``needed`` is a tuple of column indexes whose values the query actually
touches; only those columns are charged as loads — reading a 6-column
slice of a 16-column row does not pay for the other 10 (the paper's
scans are costed the same way: the load count tracks touched data).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Sequence

from repro.errors import DatabaseError
from repro.db.bufferpool import BufferPool
from repro.db.btree import BTree, _Node
from repro.db.pagestore import PagedFile
from repro.db.types import Row, Schema
from repro.sim.address_space import LINE_SHIFT
from repro.sim.machine import Machine

RowRef = tuple  # (page_no, slot)


def _word_offsets(schema: Schema, needed: Sequence[int],
                  skip: Optional[int] = None) -> tuple[int, ...]:
    """Ascending byte offsets of every word the needed columns span.

    Wide (string) columns contribute one offset per 8 bytes.  The result
    is memoised on the schema — it is recomputed once per (needed, skip)
    combination, then reused for every row of every scan.
    """
    cache = schema.__dict__.setdefault("_word_offset_cache", {})
    key = (tuple(needed), skip)
    offs = cache.get(key)
    if offs is None:
        out = []
        for index in needed:
            if index == skip:
                continue
            width = schema.columns[index].width
            off = schema.offsets[index]
            out.append(off)
            for extra in range(1, (width + 7) // 8):
                out.append(off + 8 * extra)
        out.sort()
        offs = tuple(out)
        cache[key] = offs
    return offs


def _load_fields(machine: Machine, row_base: int, schema: Schema,
                 needed: Sequence[int], dependent: bool = False) -> None:
    """Charge the loads for the needed columns of one row.

    ``dependent=True`` marks the first load as address-dependent: random
    row fetches (index scans, key lookups) cannot issue the row's loads
    until the index entry that names the row has returned, so the first
    access exposes its full latency (§3.2's index-scan stall)."""
    machine.exec.load_run(row_base, _word_offsets(schema, needed), dependent)


class HeapTable:
    """Heap-file storage behind a buffer pool."""

    kind = "heap"

    def __init__(self, machine: Machine, schema: Schema, file: PagedFile,
                 pool: BufferPool):
        self.machine = machine
        self.schema = schema
        self.file = file
        self.pool = pool

    @property
    def n_rows(self) -> int:
        return self.file.n_live_rows

    def seq_scan(self, needed: Sequence[int]) -> Iterator[tuple[Row, RowRef]]:
        """Physical-order scan over live rows; yields ``(row, rowref)``."""
        machine = self.machine
        schema = self.schema
        row_size = schema.row_size
        is_deleted = self.file.is_deleted
        has_tombstones = self.file.n_deleted > 0
        offs = _word_offsets(schema, needed)
        load_run = machine.exec.load_run
        for page_no in range(self.file.n_pages):
            frame = self.pool.fetch(self.file, page_no)
            base = frame.region.base
            for slot, row in enumerate(frame.rows):
                if has_tombstones and is_deleted(page_no, slot):
                    machine.load(base + slot * row_size)  # header check
                    continue
                load_run(base + slot * row_size, offs)
                yield row, (page_no, slot)

    def peek_rows(self) -> Iterator[Row]:
        """Charge-free row iteration for the statistics sampler."""
        return self.file.peek_rows()

    def fetch_row(self, rowref: RowRef,
                  needed: Sequence[int]) -> Optional[Row]:
        """Random row access through the buffer pool (index-scan path).

        Returns None for tombstoned rows — stale index entries are
        skipped lazily, like a real heap with lazy index cleanup."""
        page_no, slot = rowref
        frame = self.pool.fetch(self.file, page_no)
        # Slot-array indirection: the line pointer in the page header
        # names the tuple's offset, so the tuple loads depend on it.
        self.machine.load(frame.region.base + 8 * (slot % 8), dependent=True)
        if self.file.is_deleted(page_no, slot):
            return None
        row_base = frame.region.base + slot * self.schema.row_size
        _load_fields(self.machine, row_base, self.schema, needed,
                     dependent=True)
        return self.file.row_at(page_no, slot)

    # ------------------------------------------------------------- DML

    def insert(self, row: Row) -> RowRef:
        """Append one row; charges the tuple-write stores."""
        page_no, slot = self.file.append_row(row)
        frame = self.pool.fetch(self.file, page_no)
        self.machine.store_bytes(
            frame.region.base + slot * self.schema.row_size,
            self.schema.row_size,
        )
        frame.rows = self.file.page(page_no)
        return (page_no, slot)

    def update(self, rowref: RowRef, row: Row) -> None:
        page_no, slot = rowref
        frame = self.pool.fetch(self.file, page_no)
        self.file.update_row(page_no, slot, row)
        self.machine.store_bytes(
            frame.region.base + slot * self.schema.row_size,
            self.schema.row_size,
        )

    def delete(self, rowref: RowRef) -> None:
        page_no, slot = rowref
        frame = self.pool.fetch(self.file, page_no)
        self.file.delete_row(page_no, slot)
        # Tombstoning writes the tuple header.
        self.machine.store(frame.region.base + slot * self.schema.row_size)


class _LeafPager:
    """LRU cache of clustered-tree leaf pages (the SQLite pager model).

    A leaf visit outside the cache costs a disk read and invalidates the
    leaf's lines (the page image was re-read into the page cache)."""

    def __init__(self, machine: Machine, capacity_pages: int, node_bytes: int,
                 first_block: int):
        self.machine = machine
        self.capacity = max(1, capacity_pages)
        self.node_bytes = node_bytes
        self.first_block = first_block
        self._cached: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def visit(self, node: _Node) -> None:
        key = node.region.base
        if key in self._cached:
            self._cached.move_to_end(key)
            self.hits += 1
            return
        self.misses += 1
        block = self.first_block + (key >> LINE_SHIFT) % (1 << 20)
        self.machine.disk_read(block, self.node_bytes)
        first_line = node.region.base >> LINE_SHIFT
        hierarchy = self.machine.hierarchy
        hierarchy.mut_epoch += 1
        for line in range(first_line, first_line + node.region.n_lines):
            hierarchy.l1d.invalidate(line)
            if hierarchy.l2 is not None:
                hierarchy.l2.invalidate(line)
            if hierarchy.l3 is not None:
                hierarchy.l3.invalidate(line)
        if len(self._cached) >= self.capacity:
            self._cached.popitem(last=False)
        self._cached[key] = None

    def clear(self) -> None:
        self._cached.clear()


class ClusteredTable:
    """B-tree-organised storage (rows in the leaves), with a pager."""

    kind = "clustered"

    def __init__(self, machine: Machine, schema: Schema, key_column: int,
                 tree: BTree, pager: Optional[_LeafPager] = None):
        self.machine = machine
        self.schema = schema
        self.key_column = key_column
        self.tree = tree
        self.pager = pager

    @property
    def n_rows(self) -> int:
        return self.tree.n_entries

    def _on_leaf(self, node: _Node) -> None:
        if self.pager is not None:
            self.pager.visit(node)

    def _field_loads_at(self, entry_addr: int, needed: Sequence[int]) -> None:
        # The key load was already issued by the tree; charge the other
        # touched columns relative to the entry's payload base (the key
        # precedes the stored row, hence the +8).
        self.machine.exec.load_run(
            entry_addr + 8, _word_offsets(self.schema, needed, self.key_column)
        )

    def seq_scan(self, needed: Sequence[int]) -> Iterator[tuple[Row, RowRef]]:
        """Key-order scan over the leaves (what SQLite's table scan is)."""
        offs = _word_offsets(self.schema, needed, self.key_column)
        load_run = self.machine.exec.load_run
        for key, row, addr in self.tree.scan_all(on_leaf=self._on_leaf):
            load_run(addr + 8, offs)
            yield row, (0, key)

    def peek_rows(self) -> Iterator[Row]:
        """Charge-free row iteration for the statistics sampler."""
        for _key, row in self.tree.peek_entries():
            yield row

    def key_lookup(self, key, needed: Sequence[int]) -> Optional[Row]:
        hit = self.tree.search(key)
        if hit is None:
            return None
        row, addr = hit
        if self.pager is not None:
            # search() does not report the leaf; approximate with one
            # pager touch keyed on the entry's node region.
            pass
        self._field_loads_at(addr, needed)
        return row

    def key_range(self, lo, hi, needed: Sequence[int]) -> Iterator[tuple[Row, RowRef]]:
        offs = _word_offsets(self.schema, needed, self.key_column)
        load_run = self.machine.exec.load_run
        for key, row, addr in self.tree.range_scan(lo, hi, on_leaf=self._on_leaf):
            load_run(addr + 8, offs)
            yield row, (0, key)

    # ------------------------------------------------------------- DML

    def insert(self, row: Row) -> RowRef:
        key = row[self.key_column]
        self.tree.insert(key, tuple(row))
        return (0, key)

    def update(self, rowref: RowRef, row: Row) -> None:
        _page, key = rowref
        if not self.tree.update_payload(key, tuple(row)):
            raise DatabaseError(f"no row with key {key!r} to update")

    def delete(self, rowref: RowRef) -> None:
        _page, key = rowref
        if not self.tree.delete(key):
            raise DatabaseError(f"no row with key {key!r} to delete")


def build_clustered(
    machine: Machine,
    schema: Schema,
    key_column: int,
    rows: Sequence[Row],
    node_bytes: int,
    pager_pages: Optional[int] = None,
    first_block: int = 0,
    name: str = "table",
) -> ClusteredTable:
    """Sort rows by the key column and bulk-load a clustered tree."""
    ordered = sorted(rows, key=lambda r: r[key_column])
    tree = BTree(
        machine, name,
        payload_bytes=schema.row_size,
        node_bytes=node_bytes,
    )
    tree.bulk_load([(r[key_column], r) for r in ordered])
    pager = None
    if pager_pages is not None:
        pager = _LeafPager(machine, pager_pages, node_bytes, first_block)
    return ClusteredTable(machine, schema, key_column, tree, pager)


def build_heap(
    machine: Machine,
    schema: Schema,
    rows: Sequence[Row],
    page_size: int,
    pool: BufferPool,
    file_id: int,
    first_block: int = 0,
) -> HeapTable:
    """Pack rows into a paged file and wrap it as a heap table."""
    file = PagedFile(file_id, schema, page_size, first_block=first_block)
    file.append_rows(rows)
    return HeapTable(machine, schema, file, pool)
