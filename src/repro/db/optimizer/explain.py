"""EXPLAIN rendering for optimizer decisions.

Two views: the per-pass pipeline audit (what changed, what the energy
model predicted before/after, what survived the gate) and the chosen
plan as an annotated tree showing each node's estimated output rows and
predicted joules.  ``repro optimize`` prints both.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.db.costs import EnergyModel, NodeEnergy
from repro.db.planner import Logical

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.optimizer import OptimizationResult


def _fmt_j(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f} J"
    if value >= 1e-3:
        return f"{value * 1e3:.3f} mJ"
    return f"{value * 1e6:.2f} uJ"


def render_energy_tree(model: EnergyModel, plan: Logical) -> str:
    """The plan as an indented tree: predicted rows and J per node."""
    root = model.estimate(plan)
    lines: list[str] = []

    def emit(node: NodeEnergy, depth: int) -> None:
        pad = "  " * depth
        lines.append(
            f"{pad}{node.label:<28} rows~{node.rows:>10.0f}  "
            f"self {_fmt_j(node.energy_j):>11}  "
            f"subtree {_fmt_j(node.total_j):>11}"
        )
        for child in node.children:
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)


def render_explain(result: "OptimizationResult",
                   model: EnergyModel) -> str:
    """Per-pass audit plus the final annotated plan."""
    lines = [
        f"{'pass':<22} {'proposed':>8} {'kept':>5} "
        f"{'predicted before':>17} {'predicted after':>16}"
    ]
    for report in result.passes:
        proposed = "yes" if report.changed else "-"
        kept = ("yes" if report.kept
                else ("no" if report.changed else "-"))
        lines.append(
            f"{report.name:<22} {proposed:>8} {kept:>5} "
            f"{_fmt_j(report.predicted_before_j):>17} "
            f"{_fmt_j(report.predicted_after_j):>16}"
        )
    ratio = (result.predicted_j / result.predicted_baseline_j
             if result.predicted_baseline_j > 0 else 1.0)
    lines.append(
        f"predicted: {_fmt_j(result.predicted_baseline_j)} -> "
        f"{_fmt_j(result.predicted_j)} ({ratio:.3f}x)"
    )
    lines.append("")
    lines.append(render_energy_tree(model, result.plan))
    return "\n".join(lines)
