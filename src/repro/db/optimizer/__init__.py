"""Energy-aware cost-based query optimizer.

A pipeline of pluggable rewrite passes over logical trees, driven by
the energy cost model in :mod:`repro.db.costs`: each pass proposes an
equivalent tree, the :class:`~repro.db.costs.EnergyModel` prices both
under the active engine profile's (calibrated) per-micro-op energies,
and the proposal is kept only when the predicted J/query does not rise.
The pipeline therefore never makes a plan worse than the hand-built
one by its own estimate — and the TPC-H harness
(:mod:`repro.workloads.tpch.optimize`) verifies that holds for
*measured* joules across all 22 queries × 3 engine profiles.

Default pass order::

    predicate-pushdown    sink conjuncts into the scans
    projection-pruning    collapse stacked projections
    limit-pushdown        Limit+Sort -> bounded sort (TopNHeapOp)
    join-order            left-deep subset DP by predicted joules
    access-path           seq vs index/range scan per predicted joules

Add a pass by subclassing
:class:`~repro.db.optimizer.strategies.OptimizationStrategy` and
passing a custom ``passes`` tuple to :class:`Optimizer` (see
``docs/optimizer.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.model import DeltaE
from repro.db.catalog import Catalog
from repro.db.costs import EnergyModel
from repro.db.planner import Logical
from repro.db.profiles import EngineProfile
from repro.db.optimizer.joins import JoinOrderEnumeration
from repro.db.optimizer.strategies import (
    AccessPathSelection,
    LimitPushdown,
    OptimizationStrategy,
    OptimizerContext,
    PredicatePushdown,
    ProjectionPruning,
)

#: The tolerance under which "no worse" is judged: measured energies of
#: identical executions can differ by float-accumulation dust, and the
#: gate must not fail on it.
KEEP_EPSILON = 1e-9


@dataclass(frozen=True)
class PassReport:
    """What one pass did to one plan."""

    name: str
    changed: bool          # the pass proposed a different tree
    kept: bool             # the proposal survived the energy gate
    predicted_before_j: float
    predicted_after_j: float


@dataclass(frozen=True)
class OptimizationResult:
    """An optimized plan plus the audit trail that produced it."""

    plan: Logical
    original: Logical
    passes: tuple[PassReport, ...]
    predicted_j: float           # of the chosen plan
    predicted_baseline_j: float  # of the original plan

    @property
    def changed(self) -> bool:
        return self.plan != self.original

    @property
    def kept_passes(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes if p.kept)


def default_passes() -> tuple[OptimizationStrategy, ...]:
    return (
        PredicatePushdown(),
        ProjectionPruning(),
        LimitPushdown(),
        JoinOrderEnumeration(),
        AccessPathSelection(),
    )


class Optimizer:
    """The pass pipeline for one catalog + engine profile."""

    def __init__(self, catalog: Catalog, profile: EngineProfile,
                 delta_e: Optional[DeltaE] = None,
                 passes: Optional[Sequence[OptimizationStrategy]] = None):
        self.ctx = OptimizerContext.build(catalog, profile, delta_e)
        self.passes = tuple(passes if passes is not None
                            else default_passes())

    @property
    def model(self) -> EnergyModel:
        return self.ctx.model

    def optimize(self, plan: Logical) -> OptimizationResult:
        """Run every pass, keeping only predicted-no-worse rewrites."""
        model = self.ctx.model
        baseline_j = model.plan_energy_j(plan)
        current = plan
        current_j = baseline_j
        reports = []
        for strategy in self.passes:
            proposal = strategy.apply(current, self.ctx)
            changed = proposal != current
            if not changed:
                reports.append(PassReport(strategy.name, False, False,
                                          current_j, current_j))
                continue
            proposal_j = model.plan_energy_j(proposal)
            kept = proposal_j <= current_j * (1.0 + KEEP_EPSILON)
            reports.append(PassReport(strategy.name, True, kept,
                                      current_j, proposal_j))
            if kept:
                current, current_j = proposal, proposal_j
        return OptimizationResult(current, plan, tuple(reports),
                                  current_j, baseline_j)


from repro.db.optimizer.explain import render_explain  # noqa: E402

__all__ = [
    "AccessPathSelection",
    "JoinOrderEnumeration",
    "KEEP_EPSILON",
    "LimitPushdown",
    "OptimizationResult",
    "OptimizationStrategy",
    "Optimizer",
    "OptimizerContext",
    "PassReport",
    "PredicatePushdown",
    "ProjectionPruning",
    "default_passes",
    "render_explain",
]
