"""The optimizer's rewrite passes.

Each pass is an :class:`OptimizationStrategy`: a pure function from one
logical tree to an equivalent logical tree, parameterised by an
:class:`OptimizerContext` (catalog, engine profile, and the energy
model).  Passes only *propose* rewrites — the pipeline in
:mod:`repro.db.optimizer` keeps a proposal only when the energy model
predicts it is no worse, so a misfiring heuristic can never regress a
query's measured joules.

Every rewrite here preserves the result multiset (and result order
where a ``Sort`` above fixes one); the equivalence suite in
``tests/workloads/test_tpch_optimizer.py`` holds them to that across
all 22 TPC-H plans × 3 engine profiles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.model import DeltaE
from repro.db.catalog import Catalog
from repro.db.costs import EnergyModel
from repro.db.exprs import (
    And,
    Col,
    Expr,
    Or,
    TupleOf,
    and_all,
    columns_used,
    conjuncts,
)
from repro.db.planner import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    Logical,
    Project,
    Scan,
    Sort,
    _range_bounds,
    has_access_path,
)
from repro.db.profiles import INDEX_NL_JOIN, EngineProfile


@dataclass
class OptimizerContext:
    """Shared state every pass sees."""

    catalog: Catalog
    profile: EngineProfile
    model: EnergyModel

    @classmethod
    def build(cls, catalog: Catalog, profile: EngineProfile,
              delta_e: Optional[DeltaE] = None) -> "OptimizerContext":
        from repro.db.stats import Statistics

        stats = Statistics(catalog)
        return cls(catalog, profile,
                   EnergyModel(catalog, profile, delta_e, stats=stats))


class OptimizationStrategy:
    """One rewrite pass; subclasses override :meth:`apply`."""

    #: Short name shown in EXPLAIN output and artifacts.
    name = "noop"

    def apply(self, plan: Logical, ctx: OptimizerContext) -> Logical:
        raise NotImplementedError


# ------------------------------------------------------------ tree helpers

def map_children(node: Logical,
                 fn: Callable[[Logical], Logical]) -> Logical:
    """Rebuild ``node`` with every direct child rewritten by ``fn``."""
    if isinstance(node, Scan):
        return node
    if isinstance(node, Join):
        left, right = fn(node.left), fn(node.right)
        if left is node.left and right is node.right:
            return node
        return dataclasses.replace(node, left=left, right=right)
    child = fn(node.child)
    if child is node.child:
        return node
    return dataclasses.replace(node, child=child)


def output_columns(catalog: Catalog, node: Logical) -> Optional[set[str]]:
    """Column names a logical node's output rows carry, or None when
    they cannot be determined (duplicate-name renames make the set
    ambiguous, so callers treat None as "hands off")."""
    if isinstance(node, Scan):
        return set(catalog.table(node.table).schema.names())
    if isinstance(node, Join):
        left = output_columns(catalog, node.left)
        if node.kind in ("semi", "anti"):
            return left
        right = output_columns(catalog, node.right)
        if left is None or right is None:
            return None
        if left & right:
            return None  # schema.concat would rename; sets go ambiguous
        return left | right
    if isinstance(node, Project):
        return {name for name, _ in node.outputs}
    if isinstance(node, Aggregate):
        return ({name for name, _ in node.group_by}
                | {spec.name for spec in node.aggs})
    return output_columns(catalog, node.child)


def substitute(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Replace every column reference via ``mapping`` (recursive)."""
    if isinstance(expr, Col):
        return mapping.get(expr.name, expr)
    if isinstance(expr, (And, Or, TupleOf)):  # variadic constructors
        parts = tuple(substitute(p, mapping) for p in expr.parts)
        return expr if parts == expr.parts else type(expr)(*parts)
    kwargs = {}
    for field in dataclasses.fields(expr):
        value = getattr(expr, field.name)
        if isinstance(value, Expr):
            replaced = substitute(value, mapping)
            if replaced is not value:
                kwargs[field.name] = replaced
        elif isinstance(value, tuple) and any(
            isinstance(part, Expr) for part in value
        ):
            replaced_t = tuple(
                substitute(part, mapping) if isinstance(part, Expr) else part
                for part in value
            )
            if replaced_t != value:
                kwargs[field.name] = replaced_t
    return dataclasses.replace(expr, **kwargs) if kwargs else expr


def _settle(node: Logical, preds: list[Expr]) -> Logical:
    residual = and_all(preds)
    return node if residual is None else Filter(node, residual)


# ------------------------------------------------------------------ passes

class PredicatePushdown(OptimizationStrategy):
    """Sink filter conjuncts towards the scans they constrain.

    Conjuncts travel down through projections (rewritten through the
    output expressions), full sorts, distincts, aggregate group keys,
    and the join side that owns their columns; whatever reaches a scan
    merges into its predicate so the storage layer filters during the
    visit instead of a FilterOp afterwards.  Bounded sorts and limits
    are barriers — filtering below them changes which rows they keep.
    """

    name = "predicate-pushdown"

    def apply(self, plan: Logical, ctx: OptimizerContext) -> Logical:
        self._catalog = ctx.catalog
        return self._push(plan, [])

    def _push(self, node: Logical, preds: list[Expr]) -> Logical:
        if isinstance(node, Filter):
            return self._push(node.child, preds + conjuncts(node.predicate))
        if isinstance(node, Scan):
            schema = set(self._catalog.table(node.table).schema.names())
            sink = [p for p in preds if columns_used(p) <= schema]
            rest = [p for p in preds if columns_used(p) - schema]
            if sink:
                merged = and_all(conjuncts(node.predicate) + sink)
                node = dataclasses.replace(node, predicate=merged)
            return _settle(node, rest)
        if isinstance(node, Join):
            left_cols = output_columns(self._catalog, node.left)
            right_cols = (output_columns(self._catalog, node.right)
                          if node.kind == "inner" else None)
            left_preds: list[Expr] = []
            right_preds: list[Expr] = []
            rest = []
            for p in preds:
                cols = columns_used(p)
                if left_cols is not None and cols <= left_cols:
                    left_preds.append(p)
                elif right_cols is not None and cols <= right_cols:
                    right_preds.append(p)
                else:
                    rest.append(p)
            rewritten = dataclasses.replace(
                node,
                left=self._push(node.left, left_preds),
                right=self._push(node.right, right_preds),
            )
            return _settle(rewritten, rest)
        if isinstance(node, Project):
            mapping = {name: expr for name, expr in node.outputs}
            through = [substitute(p, mapping) for p in preds
                       if columns_used(p) <= set(mapping)]
            rest = [p for p in preds if columns_used(p) - set(mapping)]
            rewritten = dataclasses.replace(
                node, child=self._push(node.child, through)
            )
            return _settle(rewritten, rest)
        if isinstance(node, Aggregate):
            mapping = {name: expr for name, expr in node.group_by}
            through = [substitute(p, mapping) for p in preds
                       if columns_used(p) <= set(mapping)]
            rest = [p for p in preds if columns_used(p) - set(mapping)]
            rewritten = dataclasses.replace(
                node, child=self._push(node.child, through)
            )
            return _settle(rewritten, rest)
        if isinstance(node, Sort) and node.limit is None:
            return dataclasses.replace(
                node, child=self._push(node.child, preds)
            )
        if isinstance(node, Distinct):
            return dataclasses.replace(
                node, child=self._push(node.child, preds)
            )
        # Limit and bounded Sort are barriers; unknown nodes too.
        return _settle(map_children(node, lambda c: self._push(c, [])),
                       preds)


class ProjectionPruning(OptimizationStrategy):
    """Collapse stacked projections and drop no-op ones.

    ``Project(Project(x))`` composes into one projection (outer
    expressions rewritten through the inner outputs); an outer
    projection that merely re-selects the inner's outputs by name, in
    order, disappears entirely.
    """

    name = "projection-pruning"

    def apply(self, plan: Logical, ctx: OptimizerContext) -> Logical:
        return self._rewrite(plan)

    def _rewrite(self, node: Logical) -> Logical:
        node = map_children(node, self._rewrite)
        if not isinstance(node, Project):
            return node
        child = node.child
        if not isinstance(child, Project):
            return node
        inner_names = tuple(name for name, _ in child.outputs)
        if tuple(name for name, _ in node.outputs) == inner_names and all(
            isinstance(e, Col) and e.name == name
            for name, e in node.outputs
        ):
            return child  # pure re-selection of the inner outputs
        mapping = {name: expr for name, expr in child.outputs}
        if any(columns_used(e) - set(mapping) for _, e in node.outputs):
            return node
        composed = tuple(
            (name, substitute(expr, mapping)) for name, expr in node.outputs
        )
        return Project(child.child, composed)


class LimitPushdown(OptimizationStrategy):
    """Move limits next to the operator that can exploit them.

    ``Limit(Sort)`` becomes a bounded sort — which the planner lowers
    to the streaming :class:`~repro.db.operators.TopNHeapOp`, the big
    win —, stacked limits collapse to the tighter one, and limits slide
    below projections (1:1 operators) so less work is produced.
    """

    name = "limit-pushdown"

    def apply(self, plan: Logical, ctx: OptimizerContext) -> Logical:
        return self._rewrite(plan)

    def _rewrite(self, node: Logical) -> Logical:
        if isinstance(node, Limit):
            child = node.child
            if isinstance(child, Limit):
                return self._rewrite(Limit(child.child, min(node.n, child.n)))
            if isinstance(child, Sort):
                bound = (node.n if child.limit is None
                         else min(node.n, child.limit))
                return self._rewrite(Sort(child.child, child.keys, bound))
            if isinstance(child, Project):
                return Project(self._rewrite(Limit(child.child, node.n)),
                               child.outputs)
            return Limit(self._rewrite(child), node.n)
        return map_children(node, self._rewrite)


class AccessPathSelection(OptimizationStrategy):
    """Pick each scan's access path by predicted joules.

    For every scan with a predicate, the candidates are the planner's
    default, a forced sequential scan, and a forced range scan on each
    indexed column with a range conjunct; the energy model prices each
    (descents, leaf streaming, row fetches vs. a prefetched full
    stream) and the cheapest wins.  Scans that an ``index_nl`` profile
    would use as nested-loop inners are left untouched — forcing an
    access path there would rob the join of its index probes.
    """

    name = "access-path"

    def apply(self, plan: Logical, ctx: OptimizerContext) -> Logical:
        self._ctx = ctx
        return self._rewrite(plan, nl_inner=False)

    def _rewrite(self, node: Logical, nl_inner: bool) -> Logical:
        if isinstance(node, Scan):
            if nl_inner:
                return node
            return self._choose(node)
        if isinstance(node, Join):
            right_is_inner = (
                self._ctx.profile.join_strategy == INDEX_NL_JOIN
                and isinstance(node.right, Scan)
                and isinstance(node.right_key, Col)
            )
            left = self._rewrite(node.left, nl_inner=False)
            right = self._rewrite(node.right, nl_inner=right_is_inner)
            if left is node.left and right is node.right:
                return node
            return dataclasses.replace(node, left=left, right=right)
        return map_children(node, lambda c: self._rewrite(c, False))

    def _choose(self, node: Scan) -> Scan:
        if node.predicate is None or node.access is not None:
            return node
        table = self._ctx.catalog.table(node.table)
        candidates: list[Optional[str]] = [None, "seq"]
        for part in conjuncts(node.predicate):
            bounds = _range_bounds(part)
            if bounds is None:
                continue
            column = bounds[0]
            if (column in table.schema and has_access_path(table, column)
                    and column not in candidates):
                candidates.append(column)
        model = self._ctx.model
        scored = [
            (model.estimate(dataclasses.replace(node, access=a)).total_j, i)
            for i, a in enumerate(candidates)
        ]
        best_j, best_i = min(scored)
        default_j = scored[0][0]
        # Keep the planner's default unless a forced path is strictly
        # cheaper (ties always resolve to the default).
        if best_j >= default_j * (1.0 - 1e-9):
            return node
        return dataclasses.replace(node, access=candidates[best_i])
