"""Join-order enumeration: Selinger-style left-deep search by joules.

A maximal region of inner joins is flattened into base *relations* and
equality *edges* (each original join's key pair), then a dynamic
program over relation subsets rebuilds the cheapest left-deep order,
costing every candidate with the energy model (hash-build sizes,
``work_mem`` residency, index-nested-loop opportunities all priced in
predicted joules).

Reordering a join changes the concatenated column order of its output
rows, so only regions *insulated* by a Project or Aggregate above them
(whose expressions re-resolve columns by name) are touched, and only
when every relation's column names are disjoint — ``Schema.concat``'s
``_r`` collision renames would otherwise rebind references.  A
reordered plan is kept only if every original join condition was
applied exactly once and no step degenerated into a cross product;
otherwise the original order stands.  All tie-breaks are on relation
index, so the search is deterministic for a given catalog.
"""

from __future__ import annotations

import dataclasses
from itertools import combinations
from typing import Optional

from repro.db.exprs import Expr, TupleOf, columns_used
from repro.db.planner import Aggregate, Join, Logical, Project
from repro.db.optimizer.strategies import (
    OptimizationStrategy,
    OptimizerContext,
    map_children,
    output_columns,
)

#: Subset-DP is exponential; past this many relations the original
#: order is kept (TPC-H's largest reorderable region has 6).
MAX_RELATIONS = 8


@dataclasses.dataclass(frozen=True)
class _Edge:
    index: int
    left_key: Expr
    right_key: Expr
    left_cols: frozenset[str]
    right_cols: frozenset[str]


class JoinOrderEnumeration(OptimizationStrategy):
    name = "join-order"

    def apply(self, plan: Logical, ctx: OptimizerContext) -> Logical:
        self._ctx = ctx
        return self._rewrite(plan, insulated=False)

    def _rewrite(self, node: Logical, insulated: bool) -> Logical:
        if isinstance(node, (Project, Aggregate)):
            return map_children(node, lambda c: self._rewrite(c, True))
        if isinstance(node, Join) and node.kind == "inner" and insulated:
            reordered = self._try_region(node, insulated)
            if reordered is not None:
                return reordered
        if isinstance(node, Join):
            # Children keep the current insulation: their output column
            # order feeds this join's concatenation, which is itself
            # only reorderable when something above resolves by name.
            left = self._rewrite(node.left, insulated)
            right = self._rewrite(node.right, insulated)
            if left is node.left and right is node.right:
                return node
            return dataclasses.replace(node, left=left, right=right)
        return map_children(node, lambda c: self._rewrite(c, insulated))

    # -- flattening ---------------------------------------------------------

    def _try_region(self, join: Join, insulated: bool) -> Optional[Logical]:
        relations: list[Logical] = []
        key_pairs: list[tuple[Expr, Expr]] = []

        def walk(n: Logical) -> None:
            if isinstance(n, Join) and n.kind == "inner":
                walk(n.left)
                walk(n.right)
                key_pairs.append((n.left_key, n.right_key))
            else:
                relations.append(n)

        walk(join)
        if not 2 <= len(relations) <= MAX_RELATIONS:
            return None

        # Recurse into the relations first (sub-regions under nested
        # outer joins etc.), then reorder this region around them.
        relations = [self._rewrite(r, insulated) for r in relations]

        catalog = self._ctx.catalog
        col_sets = [output_columns(catalog, r) for r in relations]
        if any(cols is None for cols in col_sets):
            return None
        for a, b in combinations(col_sets, 2):
            if a & b:
                return None  # concat would rename; names would rebind

        edges = []
        for i, (lk, rk) in enumerate(key_pairs):
            edges.append(_Edge(i, lk, rk,
                               frozenset(columns_used(lk)),
                               frozenset(columns_used(rk))))
        return self._enumerate(relations, col_sets, edges)

    # -- the subset DP ------------------------------------------------------

    def _enumerate(self, relations: list[Logical],
                   col_sets: list[set[str]],
                   edges: list[_Edge]) -> Optional[Logical]:
        model = self._ctx.model
        n = len(relations)
        all_edges = frozenset(range(len(edges)))

        def applicable(s_cols: frozenset[str], r_cols: frozenset[str],
                       remaining: frozenset[int]):
            """Edges joinable between accumulated set S and relation r,
            oriented as (S-side key, r-side key)."""
            out = []
            for ei in sorted(remaining):
                e = edges[ei]
                if e.left_cols <= s_cols and e.right_cols <= r_cols:
                    out.append((ei, e.left_key, e.right_key))
                elif e.right_cols <= s_cols and e.left_cols <= r_cols:
                    out.append((ei, e.right_key, e.left_key))
            return out

        # state: frozenset(relation indices) ->
        #   (applied_count, cost_j, plan, applied_edge_set, cols)
        states: dict[frozenset, tuple] = {}
        for i in range(n):
            s = frozenset((i,))
            cost = model.estimate(relations[i]).total_j
            states[s] = (0, cost, relations[i], frozenset(),
                         frozenset(col_sets[i]))

        for size in range(2, n + 1):
            for subset in map(frozenset, combinations(range(n), size)):
                best = None
                for r in sorted(subset):
                    prev = states.get(subset - {r})
                    if prev is None:
                        continue
                    _, _, plan, applied, s_cols = prev
                    remaining = all_edges - applied
                    usable = applicable(s_cols, frozenset(col_sets[r]),
                                        remaining)
                    if not usable:
                        continue  # never introduce a cross product
                    if len(usable) == 1:
                        _, lk, rk = usable[0]
                    else:
                        lk = TupleOf(*(u[1] for u in usable))
                        rk = TupleOf(*(u[2] for u in usable))
                    candidate = Join(plan, relations[r], lk, rk, "inner")
                    cost = model.estimate(candidate).total_j
                    entry = (len(applied) + len(usable), -cost, candidate,
                             applied | {u[0] for u in usable},
                             s_cols | col_sets[r])
                    # Prefer more conditions applied, then lower cost;
                    # the sorted() iteration makes remaining ties land
                    # on the lowest relation index deterministically.
                    if best is None or entry[:2] > best[:2]:
                        best = entry
                if best is not None:
                    states[subset] = best
        final = states.get(frozenset(range(n)))
        if final is None or final[3] != all_edges:
            return None  # some join condition could not be placed
        return final[2]
