"""Hash sharding and shard-aware scan planning.

The cluster layer (:mod:`repro.cluster`) splits each table into
``n_shards`` hash partitions and stores every partition as its *own*
catalog table named ``{table}@s{shard}`` on each replica node.  That
naming trick keeps the whole database engine shard-oblivious: a
per-shard scan is a plain :class:`~repro.db.planner.Scan` of the shard
table, planned, cached, and charged exactly like any other table.

Rows are routed by :func:`repro.seeding.stable_hash` of their first
column (every TPC-H table here leads with a scalar primary key), so

* the same rows land on the same shards in every process — reports
  stay byte-identical across runs (builtin ``hash`` is randomised per
  process and would not) — and
* partitioning preserves the original row order inside each shard, so
  a 1-shard partition is the identity and a replication-factor-1,
  zero-fault cluster reproduces single-node energies exactly.

Scatter-gather decomposition is restricted to algebraically mergeable
scalar aggregates (count / sum / min / max): every shard computes the
same aggregate over its partition and :func:`merge_partials` folds the
partial rows into the global answer.
"""

from __future__ import annotations

from typing import Sequence

from repro.db.operators import AggSpec
from repro.db.planner import Aggregate, Logical, Scan
from repro.errors import PlanError
from repro.seeding import stable_hash

#: Aggregate kinds whose per-shard partials merge exactly.
MERGEABLE_KINDS = ("count", "sum", "min", "max")


def shard_table_name(table: str, shard: int) -> str:
    """Catalog name of one hash partition (``lineitem@s2``)."""
    return f"{table}@s{shard}"


def shard_of(key, n_shards: int) -> int:
    """Shard index of a row keyed by ``key`` (stable across processes)."""
    return stable_hash(key) % n_shards


def partition_rows(rows: Sequence[tuple], n_shards: int,
                   key_index: int = 0) -> list[list[tuple]]:
    """Split ``rows`` into ``n_shards`` hash partitions by one column.

    Row order within each partition follows the input order, so the
    1-shard partition is the identity.
    """
    parts: list[list[tuple]] = [[] for _ in range(n_shards)]
    for row in rows:
        parts[shard_of(row[key_index], n_shards)].append(row)
    return parts


def shard_scan(table: str, shard: int) -> Scan:
    """Sequential scan of one shard of ``table``."""
    return Scan(shard_table_name(table, shard), access="seq")


def shard_aggregate(table: str, shard: int,
                    aggs: Sequence[AggSpec]) -> Logical:
    """The per-shard sub-plan of a scatter-gather scalar aggregate.

    Every agg must be mergeable (count/sum/min/max, no grouping): the
    shard computes the same aggregate shape over its partition and the
    coordinator folds the partial rows with :func:`merge_partials`.
    """
    for spec in aggs:
        if spec.kind not in MERGEABLE_KINDS:
            raise PlanError(
                f"aggregate kind {spec.kind!r} does not decompose over "
                f"shards; mergeable kinds: {MERGEABLE_KINDS}"
            )
    return Aggregate(shard_scan(table, shard), (), tuple(aggs))


def merge_partials(aggs: Sequence[AggSpec],
                   partial_rows: Sequence[tuple]) -> tuple:
    """Fold per-shard partial rows into the global aggregate row.

    ``partial_rows[i][j]`` is shard ``i``'s value of aggregate ``j``.
    count and sum partials add; min/max partials take the extremum
    (None partials — an empty shard — are skipped).
    """
    if not partial_rows:
        raise PlanError("merge_partials needs at least one partial row")
    merged = []
    for j, spec in enumerate(aggs):
        values = [row[j] for row in partial_rows if row[j] is not None]
        if not values:
            merged.append(0 if spec.kind == "count" else None)
        elif spec.kind in ("count", "sum"):
            merged.append(sum(values))
        elif spec.kind == "min":
            merged.append(min(values))
        elif spec.kind == "max":
            merged.append(max(values))
        else:
            raise PlanError(f"unmergeable aggregate kind {spec.kind!r}")
    return tuple(merged)
