"""Logical query algebra and the per-engine physical planner.

Queries (TPC-H, the basic operations, and the SQL front-end) are built
as logical trees; :func:`lower` turns a logical tree into a physical
operator tree according to the engine profile's rules:

* **access paths** — engines with ``prefer_index_scan`` turn a range or
  equality conjunct on an indexed column into an index-range scan; the
  SQLite profile keeps its sequential-scan tendency (§3.3);
* **joins** — ``hash`` profiles build a hash table on the right child;
  ``index_nl`` profiles probe the inner table's B-tree per outer row
  when the join column has an access path, falling back to a hash join
  otherwise (SQLite's transient-index fallback);
* **column touching** — the planner collects every column name used
  anywhere in the query and tells each scan which of its columns are
  actually read, so untouched bytes are not charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import PlanError
from repro.db.catalog import Catalog, TableDef
from repro.db.exprs import (
    Between,
    Cmp,
    Col,
    Const,
    Expr,
    and_all,
    columns_used,
    conjuncts,
)
from repro.db.operators import (
    AggOp,
    DistinctOp,
    FilterOp,
    HashJoinOp,
    IndexNLJoinOp,
    IndexOrderScanOp,
    IndexRangeScanOp,
    LimitOp,
    ProjectOp,
    SeqScanOp,
    SortOp,
    TopNHeapOp,
)
from repro.db.operators.base import PhysicalOp
from repro.db.profiles import EngineProfile, HASH_JOIN, INDEX_NL_JOIN
from repro.db.table import ClusteredTable


# --------------------------------------------------------------- logical tree

@dataclass(frozen=True)
class Scan:
    """Read a base table, with an optional filter."""

    table: str
    predicate: Optional[Expr] = None
    #: force a particular access path: None (planner decides), "seq",
    #: "index_order" (the Figure 6 "index scan" operation), or a column
    #: name to range-scan on.
    access: Optional[str] = None


@dataclass(frozen=True)
class Join:
    left: "Logical"
    right: "Logical"
    left_key: Expr
    right_key: Expr
    kind: str = "inner"


@dataclass(frozen=True)
class Filter:
    child: "Logical"
    predicate: Expr


@dataclass(frozen=True)
class Project:
    child: "Logical"
    outputs: tuple  # of (name, Expr)


@dataclass(frozen=True)
class Aggregate:
    child: "Logical"
    group_by: tuple  # of (name, Expr)
    aggs: tuple      # of AggSpec
    having: Optional[Expr] = None


@dataclass(frozen=True)
class Sort:
    child: "Logical"
    keys: tuple  # of (Expr, desc)
    limit: Optional[int] = None


@dataclass(frozen=True)
class Limit:
    child: "Logical"
    n: int


@dataclass(frozen=True)
class Distinct:
    child: "Logical"


Logical = Union[Scan, Join, Filter, Project, Aggregate, Sort, Limit, Distinct]


# ----------------------------------------------------------- column gathering

def _exprs_of(node: Logical) -> list[Expr]:
    if isinstance(node, Scan):
        return [node.predicate] if node.predicate is not None else []
    if isinstance(node, Join):
        return [node.left_key, node.right_key]
    if isinstance(node, Filter):
        return [node.predicate]
    if isinstance(node, Project):
        return [e for _, e in node.outputs]
    if isinstance(node, Aggregate):
        out = [e for _, e in node.group_by]
        out += [s.expr for s in node.aggs if s.expr is not None]
        if node.having is not None:
            out.append(node.having)
        return out
    if isinstance(node, Sort):
        return [e for e, _ in node.keys]
    if isinstance(node, (Limit, Distinct)):
        return []
    raise PlanError(f"unknown logical node {type(node).__name__}")


def _children_of(node: Logical) -> tuple[Logical, ...]:
    if isinstance(node, Scan):
        return ()
    if isinstance(node, Join):
        return (node.left, node.right)
    return (node.child,)


def collect_used_columns(node: Logical) -> tuple[set[str], set[str]]:
    """Columns referenced in the tree, plus tables whose *full* rows
    reach the output.

    A scan that feeds the result without passing through a Project or
    Aggregate emits whole tuples, so every column of its table is
    touched (materialising the result reads all of it).  Semi/anti
    joins hide their right side; all other nodes pass visibility down.
    """
    used: set[str] = set()
    fully_visible: set[str] = set()
    stack: list[tuple[Logical, bool]] = [(node, True)]
    while stack:
        current, visible = stack.pop()
        for expr in _exprs_of(current):
            used.update(columns_used(expr))
        if isinstance(current, Scan):
            if visible:
                fully_visible.add(current.table)
        elif isinstance(current, Join):
            right_visible = visible and current.kind not in ("semi", "anti")
            stack.append((current.left, visible))
            stack.append((current.right, right_visible))
        elif isinstance(current, (Project, Aggregate)):
            stack.append((current.child, False))
        else:
            stack.append((current.child, visible))
    return used, fully_visible


# ------------------------------------------------------------------- lowering

@dataclass
class Planner:
    """Lowers logical trees for one engine profile over one catalog."""

    catalog: Catalog
    profile: EngineProfile

    def lower(self, node: Logical) -> PhysicalOp:
        used, fully_visible = collect_used_columns(node)
        self._fully_visible = fully_visible
        return self._lower(node, used)

    # -- scans ------------------------------------------------------------

    def _touched(self, table: TableDef, used: set[str]) -> list[str]:
        if table.name in getattr(self, "_fully_visible", ()):
            return list(table.schema.names())
        touched = [n for n in table.schema.names() if n in used]
        # A scan that touches nothing still reads its first column (the
        # row must at least be visited, e.g. COUNT(*) scans).
        return touched or [table.schema.names()[0]]

    def _lower_scan(self, node: Scan, used: set[str]) -> PhysicalOp:
        table = self.catalog.table(node.table)
        touched = self._touched(table, used)
        if node.access == "seq":
            return SeqScanOp(table, node.predicate, touched)
        if node.access == "index_order":
            # Prefer a secondary index: on clustered tables the primary
            # key *is* the storage order, so only a secondary index
            # exhibits the index-scan pointer chasing of Figure 6.  The
            # *last* registered secondary index is chosen: foreign-key
            # indexes registered first tend to correlate with load
            # order, while later ones (dates, attributes) do not —
            # giving the paper's weak-locality access pattern.
            column = None
            for index in table.indexes.values():
                if index.column != table.primary_key:
                    column = index.column
            if column is None and table.index_on(table.primary_key) is not None:
                column = table.primary_key
            if column is None:
                raise PlanError(
                    f"index-order scan needs an index on {table.name}"
                )
            return IndexOrderScanOp(table, column, node.predicate, touched)
        if node.access is not None:
            return self._range_scan(table, node.access, node.predicate, touched)
        # Planner's choice: try to turn one conjunct into an index range.
        if self.profile.prefer_index_scan and node.predicate is not None:
            chosen = self._choose_range_conjunct(table, node.predicate)
            if chosen is not None:
                column, lo, hi, residual = chosen
                return IndexRangeScanOp(table, column, lo, hi, residual, touched)
        return SeqScanOp(table, node.predicate, touched)

    @staticmethod
    def _is_clustered_key(table: TableDef, column: str) -> bool:
        return is_clustered_key(table, column)

    def _has_access_path(self, table: TableDef, column: str) -> bool:
        return has_access_path(table, column)

    def _choose_range_conjunct(self, table: TableDef, predicate: Expr):
        return choose_range_conjunct(table, predicate)

    def _range_scan(self, table: TableDef, column: str,
                    predicate: Optional[Expr], touched) -> PhysicalOp:
        parts = conjuncts(predicate)
        for i, part in enumerate(parts):
            bounds = _range_bounds(part)
            if bounds is not None and bounds[0] == column:
                _, lo, hi, keep = bounds
                rest = parts[:i] + parts[i + 1:]
                if keep:
                    rest = rest + [part]
                residual = and_all(rest)
                return IndexRangeScanOp(table, column, lo, hi, residual, touched)
        raise PlanError(
            f"forced range access on {column!r} but no range conjunct found"
        )

    # -- joins ------------------------------------------------------------

    def _lower_join(self, node: Join, used: set[str]) -> PhysicalOp:
        left = self._lower(node.left, used)
        if self.profile.join_strategy == INDEX_NL_JOIN:
            inner = self._index_nl_candidate(node, used)
            if inner is not None:
                return inner.bind(left)
        if self.profile.join_strategy not in (HASH_JOIN, INDEX_NL_JOIN):
            raise PlanError(
                f"unknown join strategy {self.profile.join_strategy!r}"
            )
        right = self._lower(node.right, used)
        return HashJoinOp(left, right, node.left_key, node.right_key, node.kind)

    def _index_nl_candidate(self, node: Join, used: set[str]):
        """If the right side is a plain scan whose join column has an
        access path, produce an index nested-loop join binder."""
        right = node.right
        if not isinstance(right, Scan) or right.access not in (None, "seq"):
            return None
        if not isinstance(node.right_key, Col):
            return None
        table = self.catalog.table(right.table)
        column = node.right_key.name
        if column not in table.schema or not self._has_access_path(table, column):
            return None
        touched = self._touched(table, used)
        predicate = right.predicate
        outer_key = node.left_key
        kind = node.kind

        class _Binder:
            @staticmethod
            def bind(outer: PhysicalOp) -> PhysicalOp:
                return IndexNLJoinOp(
                    outer, table, outer_key, column, kind,
                    inner_predicate=predicate, touched_inner=touched,
                )

        return _Binder

    # -- everything else ----------------------------------------------------

    def _lower(self, node: Logical, used: set[str]) -> PhysicalOp:
        if isinstance(node, Scan):
            return self._lower_scan(node, used)
        if isinstance(node, Join):
            return self._lower_join(node, used)
        if isinstance(node, Filter):
            return FilterOp(self._lower(node.child, used), node.predicate)
        if isinstance(node, Project):
            return ProjectOp(self._lower(node.child, used), node.outputs)
        if isinstance(node, Aggregate):
            agg = AggOp(self._lower(node.child, used), node.group_by, node.aggs)
            if node.having is not None:
                return FilterOp(agg, node.having)
            return agg
        if isinstance(node, Sort):
            child = self._lower(node.child, used)
            # A bounded sort whose kept rows fit in work_mem runs as a
            # streaming top-N heap instead of a full materialising sort
            # (same output: the heap tie-breaks on arrival order, which
            # is exactly the stable sort's prefix).
            limit = node.limit
            if (limit is not None
                    and limit * child.schema.row_size
                    <= self.profile.work_mem_bytes):
                return TopNHeapOp(child, node.keys, limit)
            return SortOp(child, node.keys, node.limit)
        if isinstance(node, Limit):
            return LimitOp(self._lower(node.child, used), node.n)
        if isinstance(node, Distinct):
            return DistinctOp(self._lower(node.child, used))
        raise PlanError(f"unknown logical node {type(node).__name__}")


def is_clustered_key(table: TableDef, column: str) -> bool:
    """True when ``column`` is the storage order of a clustered table."""
    storage = table.storage
    return (
        isinstance(storage, ClusteredTable)
        and storage.key_column == table.schema.index_of(column)
    )


def has_access_path(table: TableDef, column: str) -> bool:
    """True when ``column`` can be range-scanned (clustered key or
    secondary index) — the condition both the planner's access-path
    choice and the optimizer's access-path enumeration share."""
    return is_clustered_key(table, column) or (
        table.index_on(column) is not None
    )


def choose_range_conjunct(table: TableDef, predicate: Expr):
    """Find a ``Between``/``Cmp`` conjunct on an indexed column; returns
    ``(column, lo, hi, residual)`` or None."""
    parts = conjuncts(predicate)
    for i, part in enumerate(parts):
        bounds = _range_bounds(part)
        if bounds is None:
            continue
        column, lo, hi, keep = bounds
        if column in table.schema and has_access_path(table, column):
            rest = parts[:i] + parts[i + 1:]
            if keep:
                rest = rest + [part]
            residual = and_all(rest)
            return column, lo, hi, residual
    return None


def _range_bounds(expr: Expr):
    """Extract ``(column, lo, hi, keep_conjunct)`` from a Between or a
    constant comparison.  ``keep_conjunct`` is True for strict bounds:
    the inclusive index range over-approximates, so the original
    conjunct must stay in the residual filter."""
    if isinstance(expr, Between) and isinstance(expr.part, Col):
        return expr.part.name, expr.lo, expr.hi, False
    if isinstance(expr, Cmp) and isinstance(expr.left, Col) and isinstance(
        expr.right, Const
    ):
        column = expr.left.name
        value = expr.right.value
        if expr.op == "=":
            return column, value, value, False
        if not isinstance(value, (int, float)):
            return None
        if expr.op == "<=":
            return column, float("-inf"), value, False
        if expr.op == "<":
            return column, float("-inf"), value, True
        if expr.op == ">=":
            return column, value, float("inf"), False
        if expr.op == ">":
            return column, value, float("inf"), True
    return None
