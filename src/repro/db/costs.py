"""Planner cost estimates over logical trees.

The serving layer's shortest-job-first policy needs a *relative* cost
ordering before a query runs; these estimates provide it from catalog
cardinalities alone.  The model is deliberately classical: costs are
abstract work units proportional to rows visited, with the usual
textbook multipliers (``n log n`` sorts, build+probe hash joins,
per-row index descents).  No randomness enters anywhere, so estimates
depend only on the catalog's table sizes: two datasets at the same tier
may differ slightly in generated cardinalities, but the planner's join
orders and the relative cost ordering of queries stay stable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PlanError
from repro.db.catalog import Catalog
from repro.db.planner import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    Logical,
    Project,
    Scan,
    Sort,
)

#: Default selectivity of a filter/predicate with no statistics.
DEFAULT_SELECTIVITY = 0.33

#: Relative per-row weights (scan rows are the unit of work).
ROW_VISIT_COST = 1.0
ROW_PRODUCE_COST = 0.25
HASH_BUILD_COST = 1.5
HASH_PROBE_COST = 1.0
SORT_COST = 0.5
AGG_UPDATE_COST = 0.75
INDEX_DESCENT_COST = 2.0


@dataclass(frozen=True)
class CostEstimate:
    """Estimated work units and output cardinality of a logical node."""

    cost: float
    rows: float


def tables_used(node: Logical) -> tuple[str, ...]:
    """Base tables scanned anywhere in the tree, sorted and deduplicated.

    The serving layer's locality-batching policy keys on this set: two
    queries sharing hot tables keep the buffer pool and caches warm for
    each other.
    """
    names: set[str] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Scan):
            names.add(current.table)
        elif isinstance(current, Join):
            stack.append(current.left)
            stack.append(current.right)
        else:
            stack.append(current.child)
    return tuple(sorted(names))


def estimate(catalog: Catalog, node: Logical) -> CostEstimate:
    """Bottom-up cost and cardinality estimate for one logical tree."""
    if isinstance(node, Scan):
        n_rows = float(catalog.table(node.table).storage.n_rows)
        rows = n_rows
        cost = n_rows * ROW_VISIT_COST
        if node.predicate is not None:
            rows *= DEFAULT_SELECTIVITY
        if node.access == "index_order":
            cost += n_rows * INDEX_DESCENT_COST
        return CostEstimate(cost, max(rows, 1.0))
    if isinstance(node, Join):
        left = estimate(catalog, node.left)
        right = estimate(catalog, node.right)
        cost = (left.cost + right.cost
                + right.rows * HASH_BUILD_COST
                + left.rows * HASH_PROBE_COST)
        if node.kind in ("semi", "anti"):
            rows = left.rows * DEFAULT_SELECTIVITY
        else:
            # Key-FK heuristic: the output is about as large as the
            # bigger input, never the cross product.
            rows = max(left.rows, right.rows)
        return CostEstimate(cost, max(rows, 1.0))
    if isinstance(node, Filter):
        child = estimate(catalog, node.child)
        return CostEstimate(
            child.cost + child.rows * ROW_VISIT_COST,
            max(child.rows * DEFAULT_SELECTIVITY, 1.0),
        )
    if isinstance(node, Project):
        child = estimate(catalog, node.child)
        return CostEstimate(
            child.cost + child.rows * ROW_PRODUCE_COST, child.rows
        )
    if isinstance(node, Aggregate):
        child = estimate(catalog, node.child)
        groups = math.sqrt(child.rows) if node.group_by else 1.0
        return CostEstimate(
            child.cost + child.rows * AGG_UPDATE_COST, max(groups, 1.0)
        )
    if isinstance(node, Sort):
        child = estimate(catalog, node.child)
        n = max(child.rows, 2.0)
        rows = child.rows if node.limit is None else min(child.rows,
                                                         float(node.limit))
        return CostEstimate(
            child.cost + SORT_COST * n * math.log2(n), max(rows, 1.0)
        )
    if isinstance(node, Limit):
        child = estimate(catalog, node.child)
        return CostEstimate(child.cost, min(child.rows, float(node.n)))
    if isinstance(node, Distinct):
        child = estimate(catalog, node.child)
        return CostEstimate(
            child.cost + child.rows * HASH_PROBE_COST,
            max(child.rows * 0.5, 1.0),
        )
    raise PlanError(f"unknown logical node {type(node).__name__}")


def estimate_cost(catalog: Catalog, node: Logical) -> float:
    """The scalar work-unit estimate the SJF scheduler orders by."""
    return estimate(catalog, node).cost
