"""Planner cost estimates over logical trees.

Two estimators live here, sharing one cardinality model:

* the **classical** estimator (:func:`estimate`) — abstract work units
  proportional to rows visited, with the usual textbook multipliers
  (``n log n`` sorts, build+probe hash joins, per-row index descents).
  The serving layer's shortest-job-first policy orders queries by it.
* the **energy** estimator (:class:`EnergyModel`) — predicts the MS
  micro-op counts (L1D, Reg2L1D, L2, L3, mem, pf, stall; §2.4) a plan
  would generate under one engine profile and prices them with the
  calibrated per-micro-op energies ``dE_m``
  (:class:`repro.core.MicroOpPricing`), yielding a predicted J/query.
  The optimizer (:mod:`repro.db.optimizer`) minimises this.

No randomness enters anywhere, so estimates depend only on the
catalog's table sizes: two datasets at the same tier may differ
slightly in generated cardinalities, but join orders and relative cost
orderings stay stable across data seeds.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import PlanError
from repro.core.coefficients import PRICE_COMPONENTS, MicroOpPricing
from repro.core.model import DeltaE
from repro.db.catalog import Catalog, TableDef
from repro.db.exprs import (
    And,
    Between,
    Cmp,
    Expr,
    InList,
    Not,
    Or,
    StrContains,
    StrPrefix,
    StrSuffix,
)
from repro.db.planner import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    Logical,
    Project,
    Scan,
    Sort,
)
from repro.db.profiles import CLUSTERED, INDEX_NL_JOIN, EngineProfile

#: Default selectivity of a predicate conjunct with no statistics.
DEFAULT_SELECTIVITY = 0.33

#: Selectivities are composed per-conjunct (an AND multiplies), so a
#: deep chain would otherwise collapse the estimate to ~0 rows and
#: mislead join-order enumeration into treating the input as free.
#: Composition clamps here, and row estimates never drop below
#: :data:`MIN_ROW_ESTIMATE`.
MIN_SELECTIVITY = 0.01
MIN_ROW_ESTIMATE = 1.0

#: Per-construct selectivity guesses (System R flavoured).
EQ_SELECTIVITY = 0.10
RANGE_SELECTIVITY = DEFAULT_SELECTIVITY
BETWEEN_SELECTIVITY = 0.30
STRING_MATCH_SELECTIVITY = 0.15

#: Relative per-row weights (scan rows are the unit of work).
ROW_VISIT_COST = 1.0
ROW_PRODUCE_COST = 0.25
HASH_BUILD_COST = 1.5
HASH_PROBE_COST = 1.0
SORT_COST = 0.5
AGG_UPDATE_COST = 0.75
INDEX_DESCENT_COST = 2.0


# ------------------------------------------------------------- selectivity

def conjunct_selectivity(expr: Expr) -> float:
    """Selectivity of one predicate conjunct, from its shape alone."""
    if isinstance(expr, And):
        return predicate_selectivity(expr)
    if isinstance(expr, Or):
        total = sum(conjunct_selectivity(p) for p in expr.parts)
        return max(MIN_SELECTIVITY, min(1.0, total))
    if isinstance(expr, Not):
        return min(1.0, max(MIN_SELECTIVITY,
                            1.0 - conjunct_selectivity(expr.part)))
    if isinstance(expr, Cmp):
        if expr.op == "=":
            return EQ_SELECTIVITY
        if expr.op == "!=":
            return 1.0 - EQ_SELECTIVITY
        return RANGE_SELECTIVITY
    if isinstance(expr, Between):
        return BETWEEN_SELECTIVITY
    if isinstance(expr, InList):
        return max(MIN_SELECTIVITY,
                   min(0.9, EQ_SELECTIVITY * len(expr.values)))
    if isinstance(expr, (StrPrefix, StrSuffix, StrContains)):
        return STRING_MATCH_SELECTIVITY
    return DEFAULT_SELECTIVITY


def predicate_selectivity(predicate: Optional[Expr]) -> float:
    """Composed selectivity of a whole predicate, clamped to
    :data:`MIN_SELECTIVITY` so deep AND chains never estimate ~0 rows."""
    if predicate is None:
        return 1.0
    parts = predicate.parts if isinstance(predicate, And) else (predicate,)
    out = 1.0
    for part in parts:
        out *= conjunct_selectivity(part)
    return max(MIN_SELECTIVITY, min(1.0, out))


@dataclass(frozen=True)
class CostEstimate:
    """Estimated work units and output cardinality of a logical node.

    ``startup`` is the blocking portion of ``cost``: work that must
    finish before the first row can be emitted (hash builds, sorts,
    aggregations).  ``cost - startup`` is pipelined per-row work that an
    enclosing ``Limit`` cuts short.
    """

    cost: float
    rows: float
    startup: float = 0.0


def tables_used(node: Logical) -> tuple[str, ...]:
    """Base tables scanned anywhere in the tree, sorted and deduplicated.

    The serving layer's locality-batching policy keys on this set: two
    queries sharing hot tables keep the buffer pool and caches warm for
    each other.
    """
    names: set[str] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Scan):
            names.add(current.table)
        elif isinstance(current, Join):
            stack.append(current.left)
            stack.append(current.right)
        else:
            stack.append(current.child)
    return tuple(sorted(names))


def estimate(catalog: Catalog, node: Logical) -> CostEstimate:
    """Bottom-up cost and cardinality estimate for one logical tree."""
    if isinstance(node, Scan):
        n_rows = float(catalog.table(node.table).storage.n_rows)
        rows = n_rows * predicate_selectivity(node.predicate)
        cost = n_rows * ROW_VISIT_COST
        if node.access == "index_order":
            cost += n_rows * INDEX_DESCENT_COST
        return CostEstimate(cost, max(rows, MIN_ROW_ESTIMATE))
    if isinstance(node, Join):
        left = estimate(catalog, node.left)
        right = estimate(catalog, node.right)
        cost = (left.cost + right.cost
                + right.rows * HASH_BUILD_COST
                + left.rows * HASH_PROBE_COST)
        if node.kind in ("semi", "anti"):
            rows = left.rows * DEFAULT_SELECTIVITY
        else:
            # Key-FK heuristic: the output is about as large as the
            # bigger input, never the cross product.
            rows = max(left.rows, right.rows)
        # The build side must finish before the probe side streams.
        startup = left.startup + right.cost + right.rows * HASH_BUILD_COST
        return CostEstimate(cost, max(rows, MIN_ROW_ESTIMATE),
                            min(startup, cost))
    if isinstance(node, Filter):
        child = estimate(catalog, node.child)
        rows = child.rows * predicate_selectivity(node.predicate)
        return CostEstimate(
            child.cost + child.rows * ROW_VISIT_COST,
            max(rows, MIN_ROW_ESTIMATE),
            child.startup,
        )
    if isinstance(node, Project):
        child = estimate(catalog, node.child)
        return CostEstimate(
            child.cost + child.rows * ROW_PRODUCE_COST, child.rows,
            child.startup,
        )
    if isinstance(node, Aggregate):
        child = estimate(catalog, node.child)
        groups = math.sqrt(child.rows) if node.group_by else 1.0
        cost = child.cost + child.rows * AGG_UPDATE_COST
        # Hash aggregation is blocking: nothing streams until the whole
        # input has been consumed.
        return CostEstimate(cost, max(groups, MIN_ROW_ESTIMATE), cost)
    if isinstance(node, Sort):
        child = estimate(catalog, node.child)
        n = max(child.rows, 2.0)
        rows = child.rows if node.limit is None else min(child.rows,
                                                         float(node.limit))
        cost = child.cost + SORT_COST * n * math.log2(n)
        return CostEstimate(cost, max(rows, MIN_ROW_ESTIMATE), cost)
    if isinstance(node, Limit):
        child = estimate(catalog, node.child)
        rows = min(child.rows, float(node.n))
        # A limit stops pulling once satisfied: the child's blocking
        # (startup) work is paid in full, but its pipelined portion only
        # runs for the fraction of rows actually pulled.
        fraction = min(1.0, float(node.n) / max(child.rows, 1.0))
        cost = child.startup + (child.cost - child.startup) * fraction
        return CostEstimate(cost, max(rows, MIN_ROW_ESTIMATE), child.startup)
    if isinstance(node, Distinct):
        child = estimate(catalog, node.child)
        return CostEstimate(
            child.cost + child.rows * HASH_PROBE_COST,
            max(child.rows * 0.5, MIN_ROW_ESTIMATE),
            child.startup,
        )
    raise PlanError(f"unknown logical node {type(node).__name__}")


def estimate_cost(catalog: Catalog, node: Logical) -> float:
    """The scalar work-unit estimate the SJF scheduler orders by."""
    return estimate(catalog, node).cost


# ------------------------------------------------------------ energy model

#: Cache-line granularity of all modelled data traffic.
LINE = 64

#: Predicted stall events per latency-exposed (random) memory access;
#: sequential streams are prefetch-covered and charge far fewer.
RANDOM_STALLS = 6.0
STREAM_STALLS = 0.5

#: The executor's chained hash table (``operators.join``): fixed-width
#: entries in the temp arena — row payloads stay host-side, so hash
#: memory traffic scales with entry *count*, not row width.
HASH_ENTRY_BYTES = 24.0
HASH_BUCKET_BYTES = 2048 * 8.0


def _zero_counts() -> dict[str, float]:
    return {name: 0.0 for name in PRICE_COMPONENTS}


@dataclass
class NodeEnergy:
    """Predicted micro-op counts and joules for one plan node."""

    label: str
    rows: float                      # estimated output cardinality
    row_bytes: float                 # estimated output row width
    counts: dict[str, float]         # this node's own MS counts
    energy_j: float                  # this node's own joules
    startup_j: float                 # blocking portion of total_j
    total_j: float                   # subtree joules
    children: tuple["NodeEnergy", ...] = ()
    breakdown_j: dict[str, float] = field(default_factory=dict)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


class EnergyModel:
    """Predicts J/query for a logical plan under one engine profile.

    The prediction mirrors what the simulated executor charges: per-row
    interpreter state traffic (the profile's ``state_*_per_row`` knobs
    → L1D/Reg2L1D), weak-locality engine state (``cold_loads_per_row``
    → L2), table data streamed by buffer-pool residency (resident pages
    → L2, the streaming remainder → prefetch-covered DRAM), B-tree
    descents as dependent, latency-exposed random accesses (L3/mem +
    stall), and sort/hash structures sized against ``work_mem``.  Counts
    are priced with :class:`repro.core.MicroOpPricing` — calibrated
    ``dE_m`` when available, Table-2 magnitudes otherwise.

    Absolute joules are an estimate; what the optimizer relies on is
    the *ordering* of candidate plans, which tracks the executor because
    both charge the same per-row shapes.
    """

    def __init__(self, catalog: Catalog, profile: EngineProfile,
                 delta_e: Optional[DeltaE] = None, stats=None):
        self.catalog = catalog
        self.profile = profile
        self.pricing = MicroOpPricing.from_delta_e(delta_e)
        #: Optional :class:`repro.db.stats.Statistics`; scan predicates
        #: then use sampled selectivities instead of shape guesses.
        self.stats = stats

    # -- selectivity (sampled when statistics are available) ----------------

    def _sampled_conjunct(self, table_name: str,
                          expr: Expr) -> Optional[float]:
        """Sampled selectivity of one conjunct, or None when the shape
        is not a plain column-vs-constant test (callers fall back to the
        heuristic guesses)."""
        from repro.db.exprs import Col, Const

        if self.stats is None:
            return None
        if isinstance(expr, And):
            out = 1.0
            for part in expr.parts:
                s = self._sampled_conjunct(table_name, part)
                out *= conjunct_selectivity(part) if s is None else s
            return out
        if isinstance(expr, Or):
            total = 0.0
            for part in expr.parts:
                s = self._sampled_conjunct(table_name, part)
                total += conjunct_selectivity(part) if s is None else s
            return min(1.0, total)
        if isinstance(expr, Not):
            s = self._sampled_conjunct(table_name, expr.part)
            return None if s is None else max(0.0, 1.0 - s)
        if isinstance(expr, Cmp):
            col, const, op = expr.left, expr.right, expr.op
            if isinstance(col, Const) and isinstance(const, Col):
                col, const = const, col
                flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
                op = flip.get(op, op)
            if not (isinstance(col, Col) and isinstance(const, Const)):
                return None
            cs = self.stats.table(table_name).column(col.name)
            if cs is None:
                return None
            v = const.value
            if op == "=":
                return cs.eq_selectivity(v)
            if op == "!=":
                s = cs.eq_selectivity(v)
                return None if s is None else 1.0 - s
            if op == "<":
                return cs.range_selectivity(hi=v, hi_strict=True)
            if op == "<=":
                return cs.range_selectivity(hi=v)
            if op == ">":
                return cs.range_selectivity(lo=v, lo_strict=True)
            if op == ">=":
                return cs.range_selectivity(lo=v)
            return None
        if isinstance(expr, Between) and isinstance(expr.part, Col):
            cs = self.stats.table(table_name).column(expr.part.name)
            if cs is None:
                return None
            return cs.range_selectivity(lo=expr.lo, hi=expr.hi)
        if isinstance(expr, InList) and isinstance(expr.part, Col):
            cs = self.stats.table(table_name).column(expr.part.name)
            if cs is None:
                return None
            total = 0.0
            for v in set(expr.values):
                s = cs.eq_selectivity(v)
                if s is None:
                    return None
                total += s
            return min(1.0, total)
        return None

    def _scan_selectivity(self, table_name: str,
                          predicate: Optional[Expr]) -> float:
        """Composed selectivity of a scan predicate: sampled per-conjunct
        where statistics allow, shape guesses otherwise.  With a sample
        backing the estimate the floor drops to one row's worth — a
        sampled 0.1% is real, unlike a guessed one."""
        if predicate is None:
            return 1.0
        from repro.db.exprs import conjuncts

        out = 1.0
        any_sampled = False
        for part in conjuncts(predicate):
            s = self._sampled_conjunct(table_name, part)
            if s is None:
                s = conjunct_selectivity(part)
            else:
                any_sampled = True
            out *= s
        if any_sampled:
            n_rows = max(1.0, float(self.catalog.table(table_name)
                                    .storage.n_rows))
            return max(1.0 / n_rows, min(1.0, out))
        return max(MIN_SELECTIVITY, min(1.0, out))

    def _base_distinct(self, node: Logical, column: str) -> Optional[float]:
        """Distinct-value estimate of ``column``'s base domain under
        ``node`` — the table-wide count, deliberately *not* clamped to
        the filtered cardinality.  Join selectivity assumes filters hit
        join keys uniformly, so the divisor is the domain size; clamping
        to the filtered rows would re-introduce the containment bias
        that inflates filtered-FK join estimates."""
        if isinstance(node, Scan):
            if self.stats is None:
                return None
            table = self.catalog.table(node.table)
            if column not in table.schema:
                return None
            ts = self.stats.table(node.table)
            cs = ts.column(column)
            if cs is None or not cs.sample:
                return None
            # Average multiplicity in the sample extrapolates: a column
            # with m rows per value in the sample has ~n_rows/m values.
            return max(1.0, ts.n_rows * cs.n_distinct / len(cs.sample))
        if isinstance(node, Join):
            found = self._base_distinct(node.left, column)
            if found is None and node.kind == "inner":
                found = self._base_distinct(node.right, column)
            return found
        if isinstance(node, Project):
            for name, expr in node.outputs:
                if name == column:
                    from repro.db.exprs import Col
                    if isinstance(expr, Col):
                        return self._base_distinct(node.child, expr.name)
                    return None
            return None
        if isinstance(node, Aggregate):
            # A group-by output's domain is the grouped column's domain
            # (each base value yields at most one group).
            for name, expr in node.group_by:
                if name == column:
                    from repro.db.exprs import Col
                    if isinstance(expr, Col):
                        return self._base_distinct(node.child, expr.name)
                    return None
            return None
        return self._base_distinct(node.child, column)

    def _join_rows(self, node: Join, left_rows: float,
                   right_rows: float) -> float:
        """Inner-join output estimate ``|L||R| / max(V_l, V_r)`` with
        sampled base-domain distinct counts; falls back to the key-FK
        heuristic ``max(|L|, |R|)`` when a key side has no statistics."""
        from repro.db.exprs import Col, TupleOf

        fallback = max(left_rows, right_rows)

        def key_columns(key: Expr) -> Optional[tuple]:
            if isinstance(key, Col):
                return (key.name,)
            if isinstance(key, TupleOf) and all(
                isinstance(p, Col) for p in key.parts
            ):
                return tuple(p.name for p in key.parts)
            return None

        lcols = key_columns(node.left_key)
        rcols = key_columns(node.right_key)
        if lcols is None or rcols is None or len(lcols) != len(rcols):
            return fallback
        # Scan-scan joins: join the statistics samples directly, which
        # captures filter correlation through the join keys that the
        # independence formula below cannot see.
        if (self.stats is not None and isinstance(node.left, Scan)
                and isinstance(node.right, Scan)):
            sampled = self.stats.sample_join_rows(
                node.left.table, node.left.predicate, node.left_key,
                node.right.table, node.right.predicate, node.right_key,
            )
            if sampled is not None:
                return max(MIN_ROW_ESTIMATE,
                           min(sampled, left_rows * right_rows))
        v_left = v_right = 1.0
        for lc, rc in zip(lcols, rcols):
            vl = self._base_distinct(node.left, lc)
            vr = self._base_distinct(node.right, rc)
            if vl is None or vr is None:
                return fallback
            v_left *= vl
            v_right *= vr
        rows = left_rows * right_rows / max(v_left, v_right, 1.0)
        return max(MIN_ROW_ESTIMATE, min(rows, left_rows * right_rows))

    # -- public entry points ------------------------------------------------

    def estimate(self, node: Logical) -> NodeEnergy:
        """Bottom-up per-node energy estimate for one logical tree."""
        return self._node(node)

    def plan_energy_j(self, node: Logical) -> float:
        """Predicted J for the whole plan, including emitting the
        result rows into the output sink."""
        root = self._node(node)
        emit = _zero_counts()
        emit["Reg2L1D"] = root.rows * (root.row_bytes / 8.0)
        emit["other"] = root.rows * self.profile.operator_overhead_ops
        return root.total_j + self.pricing.total_j(emit)

    # -- shared count shapes ------------------------------------------------

    def _finish(self, label, rows, row_bytes, counts, children,
                startup_j=None, blocking=False) -> NodeEnergy:
        breakdown = self.pricing.energy_j(counts)
        own = sum(breakdown.values())
        total = own + sum(c.total_j for c in children)
        if blocking:
            startup = total
        elif startup_j is None:
            startup = sum(c.startup_j for c in children)
        else:
            startup = min(startup_j, total)
        return NodeEnergy(label, max(rows, MIN_ROW_ESTIMATE),
                          max(row_bytes, 8.0), counts, own, startup, total,
                          tuple(children), breakdown)

    def _visit(self, counts: dict, rows: float) -> None:
        """Per-row interpreter work of visiting a stored tuple."""
        p = self.profile
        counts["L1D"] += rows * p.state_loads_per_row
        counts["Reg2L1D"] += rows * p.state_stores_per_row
        counts["L2"] += rows * p.cold_loads_per_row
        counts["other"] += rows * (
            p.state_other_per_row + p.state_branch_per_row
            + p.state_cmp_per_row + p.state_add_per_row + p.row_overhead_ops
        )

    def _produce(self, counts: dict, rows: float) -> None:
        """Per-row work of an operator handing a tuple upward — the
        mirror of ``produce_overhead``: fixed interpreter state traffic,
        independent of row width (rows travel as host tuples; only
        materialising operators and the output sink pay width)."""
        p = self.profile
        counts["L1D"] += rows * p.op_loads_per_row
        counts["Reg2L1D"] += rows * p.op_stores_per_row
        counts["other"] += rows * (
            p.operator_overhead_ops
            + (p.state_other_per_row + p.state_branch_per_row
               + p.state_cmp_per_row + p.state_add_per_row) / 4.0
        )

    def _stream(self, counts: dict, total_bytes: float) -> None:
        """Sequentially streamed data, split by buffer-pool residency:
        resident lines re-walk pool structures (L2); the remainder is a
        prefetch-covered DRAM stream (mem + pf, few stalls)."""
        lines = total_bytes / LINE
        resident = min(1.0, self.profile.buffer_pool_bytes
                       / max(total_bytes, 1.0))
        counts["L2"] += lines * resident
        miss = lines * (1.0 - resident)
        counts["mem"] += miss
        counts["pf"] += miss
        counts["stall"] += miss * STREAM_STALLS

    def _btree_depth(self, n_rows: float) -> float:
        fanout = max(4.0, self.profile.btree_node_bytes / 32.0)
        return max(1.0, math.ceil(math.log(max(n_rows, 2.0), fanout)))

    def _descend(self, counts: dict, table_rows: float, probes: float,
                 table_bytes: float) -> None:
        """Random B-tree descents: upper levels stay cached, the leaf
        level's residency follows the buffer pool, and the latency of
        each uncached hop is exposed (stall)."""
        depth = self._btree_depth(table_rows)
        resident = min(1.0, self.profile.buffer_pool_bytes
                       / max(table_bytes, 1.0))
        counts["L2"] += probes * (depth - 1)
        counts["L3"] += probes * resident
        counts["mem"] += probes * (1.0 - resident)
        counts["stall"] += probes * (
            2.0 + RANDOM_STALLS * (1.0 - resident)
        )
        # Binary search inside each node.
        fanout = max(4.0, self.profile.btree_node_bytes / 32.0)
        counts["other"] += probes * depth * math.log2(fanout)

    # -- per-node estimates -------------------------------------------------

    def _node(self, node: Logical) -> NodeEnergy:
        if isinstance(node, Scan):
            return self._scan(node)
        if isinstance(node, Join):
            return self._join(node)
        if isinstance(node, Filter):
            child = self._node(node.child)
            counts = _zero_counts()
            counts["L1D"] += child.rows * 8.0
            counts["other"] += child.rows * 4.0
            rows = child.rows * predicate_selectivity(node.predicate)
            return self._finish("Filter", rows, child.row_bytes, counts,
                                [child])
        if isinstance(node, Project):
            child = self._node(node.child)
            counts = _zero_counts()
            row_bytes = 8.0 * len(node.outputs)
            self._produce(counts, child.rows)
            counts["other"] += child.rows * 2.0 * len(node.outputs)
            return self._finish("Project", child.rows, row_bytes, counts,
                                [child])
        if isinstance(node, Aggregate):
            return self._aggregate(node)
        if isinstance(node, Sort):
            return self._sort(node)
        if isinstance(node, Limit):
            child = self._node(node.child)
            rows = min(child.rows, float(node.n))
            fraction = min(1.0, float(node.n) / max(child.rows, 1.0))
            capped = child.startup_j + (
                (child.total_j - child.startup_j) * fraction
            )
            capped_child = NodeEnergy(
                child.label, child.rows, child.row_bytes, child.counts,
                child.energy_j, child.startup_j, capped, child.children,
                child.breakdown_j,
            )
            return self._finish("Limit", rows, child.row_bytes,
                                _zero_counts(), [capped_child],
                                startup_j=child.startup_j)
        if isinstance(node, Distinct):
            child = self._node(node.child)
            counts = _zero_counts()
            counts["L1D"] += child.rows * 2.0
            counts["other"] += child.rows
            self._produce(counts, child.rows * 0.5)
            return self._finish("Distinct", child.rows * 0.5,
                                child.row_bytes, counts, [child])
        raise PlanError(f"unknown logical node {type(node).__name__}")

    def _table(self, name: str) -> tuple[TableDef, float, float]:
        table = self.catalog.table(name)
        n_rows = float(table.storage.n_rows)
        return table, n_rows, n_rows * table.schema.row_size

    def _scan(self, node: Scan) -> NodeEnergy:
        table, n_rows, table_bytes = self._table(node.table)
        row_bytes = float(table.schema.row_size)
        sel = self._scan_selectivity(node.table, node.predicate)
        counts = _zero_counts()

        access = node.access
        if access is None and (self.profile.prefer_index_scan
                               and node.predicate is not None):
            # Mirror the planner: these profiles turn a range conjunct
            # on an indexed column into a range scan on their own.
            from repro.db.planner import choose_range_conjunct

            chosen = choose_range_conjunct(table, node.predicate)
            if chosen is not None:
                access = chosen[0]
        if access in (None, "seq"):
            self._visit(counts, n_rows)
            self._stream(counts, table_bytes)
            return self._finish(f"Scan({node.table})", n_rows * sel,
                                row_bytes, counts, [])
        if access == "index_order":
            # Walk a secondary index in key order, chasing each entry to
            # its row: every fetch is a random access (Figure 6's
            # pointer-chasing index scan).
            self._stream(counts, n_rows * 16.0)  # the leaf entry walk
            self._descend(counts, n_rows, n_rows, table_bytes)
            self._visit(counts, n_rows)
            return self._finish(f"IndexOrderScan({node.table})",
                                n_rows * sel, row_bytes, counts, [])

        # Range scan on `access`: one descent finds the start, matched
        # entries stream from the leaves, and each match costs a row
        # visit.  Secondary indexes additionally chase every match to
        # the base row (clustered-PK ranges read rows in storage order).
        matched = n_rows * self._range_fraction(node, access)
        self._descend(counts, n_rows, 1.0, table_bytes)
        clustered_pk = (
            self.profile.table_storage == CLUSTERED
            and table.primary_key == access
        )
        if clustered_pk:
            self._stream(counts, matched * row_bytes)
        else:
            self._stream(counts, matched * 16.0)  # index leaf entries
            self._descend(counts, n_rows, matched, table_bytes)
        self._visit(counts, matched)
        return self._finish(f"RangeScan({node.table}.{access})",
                            n_rows * sel, row_bytes, counts, [])

    def _range_fraction(self, node: Scan, column: str) -> float:
        """Fraction of the table the range conjunct on ``column`` keeps."""
        from repro.db.exprs import conjuncts
        from repro.db.planner import _range_bounds

        for part in conjuncts(node.predicate):
            bounds = _range_bounds(part)
            if bounds is not None and bounds[0] == column:
                sampled = self._sampled_conjunct(node.table, part)
                return conjunct_selectivity(part) if sampled is None \
                    else max(0.0, min(1.0, sampled))
        return 1.0

    def _join(self, node: Join) -> NodeEnergy:
        left = self._node(node.left)
        counts = _zero_counts()
        if node.kind in ("semi", "anti"):
            out_rows = left.rows * DEFAULT_SELECTIVITY
        else:
            out_rows = None  # fixed below once the right side is known

        if self._index_nl_viable(node):
            table, n_rows, table_bytes = self._table(node.right.table)
            right_bytes = float(table.schema.row_size)
            if out_rows is None:
                right_rows = n_rows * self._scan_selectivity(
                    node.right.table, node.right.predicate)
                out_rows = self._join_rows(node, left.rows, right_rows)
            # Every left row descends once and then visits every *key*
            # match — the inner scan's own predicate filters rows only
            # after they are fetched, so the visit count is the join
            # cardinality with that predicate stripped.  (This is what
            # makes probing a big table from a small unfiltered outer
            # expensive even when few rows survive the filter.)
            bare = node if node.right.predicate is None else (
                dataclasses.replace(
                    node,
                    right=dataclasses.replace(node.right, predicate=None),
                )
            )
            visits = self._join_rows(bare, left.rows, float(n_rows))
            self._descend(counts, n_rows, left.rows, table_bytes)
            self._visit(counts, max(visits, out_rows))
            rows = out_rows
            row_bytes = left.row_bytes + right_bytes
            if node.kind in ("semi", "anti"):
                row_bytes = left.row_bytes
            self._produce(counts, rows)
            return self._finish(f"IndexNLJoin({node.right.table})", rows,
                                row_bytes, counts, [left],
                                startup_j=left.startup_j)

        right = self._node(node.right)
        rows = (out_rows if out_rows is not None
                else self._join_rows(node, left.rows, right.rows))
        row_bytes = left.row_bytes + right.row_bytes
        if node.kind in ("semi", "anti"):
            row_bytes = left.row_bytes
        # Build on the right, mirroring the executor's chained table:
        # every insert and probe is one dependent bucket access plus
        # hash arithmetic; inserts store a fixed-width entry; each
        # emitted match walks one chain link.  The table's arena
        # working set is small (entry cursor wraps), so accesses price
        # at L2; only the entry *count* can overflow work_mem.
        probes = left.rows + right.rows
        counts["L2"] += probes + rows
        counts["stall"] += probes + rows
        counts["other"] += probes * 3.0 + rows
        counts["Reg2L1D"] += right.rows * (HASH_ENTRY_BYTES / 8.0)
        hash_bytes = HASH_BUCKET_BYTES + right.rows * HASH_ENTRY_BYTES
        spill = max(0.0, hash_bytes - self.profile.work_mem_bytes)
        if spill > 0:
            counts["mem"] += 2.0 * spill / LINE
            counts["stall"] += (spill / LINE) * STREAM_STALLS
        self._produce(counts, rows)
        build_j = (right.total_j
                   + self.pricing.total_j(counts) * (right.rows / probes))
        return self._finish(f"HashJoin({node.kind})", rows, row_bytes,
                            counts, [left, right],
                            startup_j=left.startup_j + build_j)

    def _index_nl_viable(self, node: Join) -> bool:
        """Mirror of the planner's index nested-loop candidacy check."""
        from repro.db.exprs import Col

        if self.profile.join_strategy != INDEX_NL_JOIN:
            return False
        right = node.right
        if not isinstance(right, Scan) or right.access not in (None, "seq"):
            return False
        if not isinstance(node.right_key, Col):
            return False
        table = self.catalog.table(right.table)
        column = node.right_key.name
        if column not in table.schema:
            return False
        if table.index_on(column) is not None:
            return True
        storage = table.storage
        return (self.profile.table_storage == CLUSTERED
                and getattr(storage, "key_column", None) is not None
                and storage.key_column == table.schema.index_of(column))

    def _aggregate(self, node: Aggregate) -> NodeEnergy:
        child = self._node(node.child)
        counts = _zero_counts()
        groups = math.sqrt(child.rows) if node.group_by else 1.0
        n_aggs = max(1, len(node.aggs))
        counts["L1D"] += child.rows * 2.0
        counts["other"] += child.rows * (2.0 + n_aggs)
        counts["Reg2L1D"] += child.rows * (n_aggs / 2.0)
        row_bytes = 8.0 * (len(node.group_by) + len(node.aggs))
        self._produce(counts, groups)
        sel = (predicate_selectivity(node.having)
               if node.having is not None else 1.0)
        return self._finish("Aggregate", groups * sel, row_bytes, counts,
                            [child], blocking=True)

    def _sort(self, node: Sort) -> NodeEnergy:
        child = self._node(node.child)
        n = max(child.rows, 2.0)
        row_bytes = child.row_bytes
        counts = _zero_counts()
        limit = node.limit
        heap_ok = (limit is not None
                   and limit * row_bytes <= self.profile.work_mem_bytes)
        if heap_ok:
            # Streaming top-N heap.  An input that fits in the heap is
            # buffered and sorted exactly like the full sort (but always
            # cache-resident, and never spilling); past the fill, each
            # row pays one root compare and only the expected
            # ~limit·ln(n/limit) entrants pay the log-depth sift-down,
            # the row store, and the final output sort.
            k = float(max(1, limit))
            if n <= k:
                inserts = n
                comparisons = n * max(1.0, math.ceil(math.log2(n)))
            else:
                admits = k * (1.0 + math.log(n / k))
                inserts = k + admits
                comparisons = (
                    (n - k)                                   # root tests
                    + 2.0 * k                                 # heapify
                    + admits * max(1.0, math.log2(k + 1.0))   # sift-downs
                    + k * max(1.0, math.ceil(math.log2(max(k, 2.0))))
                )
            counts["L1D"] += 2.0 * comparisons
            counts["other"] += comparisons
            counts["Reg2L1D"] += inserts * (row_bytes / 8.0)
            rows = min(child.rows, k)
            self._produce(counts, rows)
            return self._finish(f"TopNHeap({limit})", rows, row_bytes,
                                counts, [child], blocking=True)
        # Full materialising sort: store every row, n·log2(n) compares
        # over a buffer whose residency follows work_mem, spill past it.
        total_bytes = n * row_bytes
        comparisons = n * max(1.0, math.ceil(math.log2(n)))
        resident = min(1.0, self.profile.work_mem_bytes
                       / max(total_bytes, 1.0))
        counts["Reg2L1D"] += n * (row_bytes / 8.0)
        counts["L1D"] += 2.0 * comparisons * resident
        counts["L2"] += 2.0 * comparisons * (1.0 - resident)
        counts["other"] += comparisons
        spill = max(0.0, total_bytes - self.profile.work_mem_bytes)
        if spill > 0:
            counts["mem"] += 2.0 * spill / LINE
            counts["stall"] += (spill / LINE) * STREAM_STALLS
        rows = child.rows if limit is None else min(child.rows, float(limit))
        self._produce(counts, rows)
        return self._finish("Sort", rows, row_bytes, counts, [child],
                            blocking=True)
