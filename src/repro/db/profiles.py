"""Engine profiles: the PostgreSQL-, SQLite-, and MySQL-like configurations.

The paper profiles three real systems; this package models them as three
configurations of one executor, differing exactly along the axes the
paper uses to explain their breakdown differences (§3.2–§3.3):

* **sqlite_like** — everything is a clustered B-tree scanned
  sequentially; joins are index nested loops; the VDBE-style interpreter
  is lightweight (lowest per-tuple overhead).  → highest L1D share,
  lowest stall share.
* **postgres_like** — heap tables behind a shared buffer pool, hash
  joins and hash aggregation with a ``work_mem`` budget, secondary
  B-tree indexes.  The buffer/page indirection and hash structures
  reduce locality.  → middling L1D share, more L2/L3/stall.
* **mysql_like** — InnoDB-style clustered primary-key storage with
  secondary indexes that chase the primary key, plus the heaviest
  per-tuple interpreter overhead.  → lowest L1D share, highest E_other.

Knob settings mirror Table 4 (small / baseline / large), scaled 1:64
with the data tiers (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

SMALL = "small"
BASELINE = "baseline"
LARGE = "large"
SETTINGS = (SMALL, BASELINE, LARGE)

HEAP = "heap"
CLUSTERED = "clustered"

HASH_JOIN = "hash"
INDEX_NL_JOIN = "index_nl"


@dataclass(frozen=True)
class EngineProfile:
    """Everything that distinguishes one engine flavour."""

    name: str
    setting: str
    #: Table organisation: heap or clustered B-tree.
    table_storage: str
    #: Preferred join algorithm.
    join_strategy: str
    #: Disk page size (bytes) — Table 4's page_size knobs.
    page_size: int
    #: Buffer pool / page cache capacity in bytes — Table 4's memory knobs.
    buffer_pool_bytes: int
    #: Sort/hash memory budget (PostgreSQL work_mem analogue).
    work_mem_bytes: int
    #: B-tree node size for tables and indexes.
    btree_node_bytes: int
    #: Interpreter overhead ('other' micro-ops) charged per scanned row.
    row_overhead_ops: int
    #: Interpreter overhead charged per row each operator produces.
    operator_overhead_ops: int
    #: Whether the planner considers secondary indexes for range filters.
    prefer_index_scan: bool
    #: Engine-state loads/stores per scanned tuple.  Interpretive engines
    #: execute hundreds of instructions per tuple against hot internal
    #: state (slot descriptors, operator nodes, the bytecode program) —
    #: the dominant source of the paper's L1D load/store energy (SQLite's
    #: sqlite3VdbeExec() alone issues ~70% of L1D loads, §4.2).
    state_loads_per_row: int = 1000
    state_stores_per_row: int = 500
    state_other_per_row: int = 300
    state_branch_per_row: int = 200
    state_cmp_per_row: int = 200
    state_add_per_row: int = 220
    #: Same, per tuple *produced* by a non-scan operator.
    op_loads_per_row: int = 120
    op_stores_per_row: int = 60
    #: Loads per tuple into a *larger* working set (buffer descriptors,
    #: catalog caches, compact page structures) that lives in L2/L3, not
    #: L1D — the weak-locality overhead the paper attributes to
    #: PostgreSQL/MySQL's complex data structures (§3.3).
    cold_loads_per_row: int = 4
    #: Size of that working set, as a multiple of the machine's L1D.
    cold_state_l1d_multiple: int = 24

    def with_setting(self, setting: str) -> "EngineProfile":
        if self.name == "postgresql":
            return postgres_like(setting)
        if self.name == "sqlite":
            return sqlite_like(setting)
        if self.name == "mysql":
            return mysql_like(setting)
        raise ConfigError(f"unknown engine {self.name!r}")


def _pick(setting: str, small, baseline, large):
    if setting == SMALL:
        return small
    if setting == BASELINE:
        return baseline
    if setting == LARGE:
        return large
    raise ConfigError(f"unknown setting {setting!r}; use one of {SETTINGS}")


def postgres_like(setting: str = BASELINE) -> EngineProfile:
    """Table 4: shared_buffers 8MB/128MB/1GB, work_mem 4MB/64MB/512MB
    (scaled 1:64)."""
    return EngineProfile(
        name="postgresql",
        setting=setting,
        table_storage=HEAP,
        join_strategy=HASH_JOIN,
        page_size=8 * 1024,
        buffer_pool_bytes=_pick(setting, 128 * 1024, 2 * 1024 * 1024,
                                16 * 1024 * 1024),
        work_mem_bytes=_pick(setting, 64 * 1024, 1024 * 1024,
                             8 * 1024 * 1024),
        btree_node_bytes=4096,
        row_overhead_ops=3,
        operator_overhead_ops=2,
        prefer_index_scan=True,
        state_loads_per_row=480,
        state_stores_per_row=230,
        state_other_per_row=280,
        state_branch_per_row=250,
        state_cmp_per_row=200,
        state_add_per_row=250,
        op_loads_per_row=130,
        op_stores_per_row=65,
        cold_loads_per_row=22,
        cold_state_l1d_multiple=32,
    )


def sqlite_like(setting: str = BASELINE) -> EngineProfile:
    """Table 4: cache_size 2000/16000/65000 pages, page_size 4/8/16KB
    (cache pages scaled 1:64)."""
    page_size = _pick(setting, 4 * 1024, 8 * 1024, 16 * 1024)
    cache_pages = _pick(setting, 32, 256, 1024)
    return EngineProfile(
        name="sqlite",
        setting=setting,
        table_storage=CLUSTERED,
        join_strategy=INDEX_NL_JOIN,
        page_size=page_size,
        buffer_pool_bytes=cache_pages * page_size,
        work_mem_bytes=_pick(setting, 64 * 1024, 512 * 1024,
                             2 * 1024 * 1024),
        btree_node_bytes=page_size,
        row_overhead_ops=1,
        operator_overhead_ops=1,
        prefer_index_scan=False,  # sequential-scan tendency (§3.3)
        state_loads_per_row=980,
        state_stores_per_row=480,
        state_other_per_row=280,
        state_branch_per_row=200,
        state_cmp_per_row=200,
        state_add_per_row=220,
        op_loads_per_row=110,
        op_stores_per_row=55,
        cold_loads_per_row=2,
        cold_state_l1d_multiple=12,
    )


def mysql_like(setting: str = BASELINE) -> EngineProfile:
    """Table 4: innodb_buffer_pool 8MB/128MB/1GB, innodb_page_size
    4/8/16KB (buffer scaled 1:64)."""
    page_size = _pick(setting, 4 * 1024, 8 * 1024, 16 * 1024)
    return EngineProfile(
        name="mysql",
        setting=setting,
        table_storage=CLUSTERED,
        join_strategy=HASH_JOIN,
        page_size=page_size,
        buffer_pool_bytes=_pick(setting, 128 * 1024, 2 * 1024 * 1024,
                                16 * 1024 * 1024),
        work_mem_bytes=_pick(setting, 128 * 1024, 1024 * 1024,
                             8 * 1024 * 1024),
        btree_node_bytes=page_size,
        row_overhead_ops=6,
        operator_overhead_ops=4,
        prefer_index_scan=True,
        state_loads_per_row=560,
        state_stores_per_row=270,
        state_other_per_row=680,
        state_branch_per_row=300,
        state_cmp_per_row=220,
        state_add_per_row=260,
        op_loads_per_row=140,
        op_stores_per_row=70,
        cold_loads_per_row=10,
        cold_state_l1d_multiple=24,
    )


ENGINE_FACTORIES = {
    "postgresql": postgres_like,
    "sqlite": sqlite_like,
    "mysql": mysql_like,
}

ENGINES = tuple(ENGINE_FACTORIES)


def engine_profile(name: str, setting: str = BASELINE) -> EngineProfile:
    try:
        factory = ENGINE_FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown engine {name!r}; known: {', '.join(ENGINE_FACTORIES)}"
        ) from None
    return factory(setting)
