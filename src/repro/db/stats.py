"""ANALYZE-style table statistics, sampled charge-free.

A real engine's ANALYZE reads a random block sample outside the query
path; here the sampler walks table storage through the ``peek_rows``
hooks (pure Python, no simulated micro-ops), so collecting or
refreshing statistics never perturbs a measured energy window.

Per column the sample keeps a *sorted* value list: range selectivities
come from two bisections, equality selectivities from the matching
fraction (falling back to ``1/n_distinct`` for values missing from the
sample).  The :class:`~repro.db.costs.EnergyModel` consults these for
scan predicates — replacing the System-R shape guesses that misprice
wide ranges like TPC-H Q1's ``l_shipdate <= cutoff`` (which keeps ~97%
of lineitem but a shape guess calls 33%).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Optional

from repro.db.catalog import Catalog, TableDef

#: Upper bound on sampled rows per table (evenly strided, so the sample
#: spans the whole table rather than its first pages).
SAMPLE_TARGET = 2048


@dataclass(frozen=True)
class ColumnStats:
    """Sorted value sample of one column."""

    sample: tuple
    n_distinct: int

    def eq_selectivity(self, value) -> Optional[float]:
        """Fraction of rows equal to ``value`` (None when the sample
        cannot order against it)."""
        if not self.sample:
            return None
        try:
            lo = bisect_left(self.sample, value)
            hi = bisect_right(self.sample, value)
        except TypeError:
            return None
        if hi > lo:
            return (hi - lo) / len(self.sample)
        # Unseen value: assume it is one of the distinct values' worth.
        return 1.0 / max(self.n_distinct, 1)

    def range_selectivity(self, lo=None, hi=None, lo_strict: bool = False,
                          hi_strict: bool = False) -> Optional[float]:
        """Fraction of rows inside [lo, hi] (bounds optional; ``strict``
        excludes the endpoint)."""
        if not self.sample:
            return None
        try:
            a = 0 if lo is None else (
                bisect_right(self.sample, lo) if lo_strict
                else bisect_left(self.sample, lo)
            )
            b = len(self.sample) if hi is None else (
                bisect_left(self.sample, hi) if hi_strict
                else bisect_right(self.sample, hi)
            )
        except TypeError:
            return None
        return max(0, b - a) / len(self.sample)


@dataclass(frozen=True)
class TableStats:
    """Sampled statistics of one table."""

    n_rows: int
    sampled: int
    columns: dict[str, ColumnStats]
    #: The raw sampled rows, in storage order — kept so estimators can
    #: re-evaluate predicates (and join samples against each other) to
    #: capture cross-column and cross-table filter correlation that
    #: per-column summaries lose.
    rows: tuple = ()
    #: Column name → tuple index, for :func:`repro.db.exprs.peek_eval`.
    index_of: dict = None

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


def collect(table: TableDef) -> TableStats:
    """Sample one table's storage into per-column statistics."""
    n_rows = table.storage.n_rows
    step = max(1, -(-n_rows // SAMPLE_TARGET))  # ceil division
    names = table.schema.names()
    sampled: list = []
    for i, row in enumerate(table.storage.peek_rows()):
        if i % step == 0:
            sampled.append(row)
    columns = {}
    for idx, name in enumerate(names):
        values = sorted(row[idx] for row in sampled)
        columns[name] = ColumnStats(tuple(values), len(set(values)))
    index_of = {name: idx for idx, name in enumerate(names)}
    return TableStats(n_rows, len(sampled), columns, tuple(sampled),
                      index_of)


class Statistics:
    """Lazily collected, memoised statistics for one catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._tables: dict[str, TableStats] = {}
        self._sample_joins: dict = {}

    def table(self, name: str) -> TableStats:
        stats = self._tables.get(name)
        if stats is None:
            stats = collect(self.catalog.table(name))
            self._tables[name] = stats
        return stats

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop cached statistics (after DML) so they re-collect."""
        if name is None:
            self._tables.clear()
            self._sample_joins.clear()
        else:
            self._tables.pop(name, None)
            self._sample_joins = {
                key: rows for key, rows in self._sample_joins.items()
                if name not in (key[0], key[3])
            }

    def sample_join_rows(self, left_table: str, left_pred, left_key,
                         right_table: str, right_pred,
                         right_key) -> Optional[float]:
        """Join-output cardinality estimated by joining the two tables'
        samples directly (predicates applied row-wise, keys matched).

        Unlike the independence formula ``|L||R| / max(V_l, V_r)``,
        this sees correlation *through* the join — e.g. TPC-H Q3's
        anti-correlated date filters (orders placed before a date whose
        items shipped after it), which independence overestimates by an
        order of magnitude.  Each matching (l, r) pair survives both
        strided samples with probability ``f_l · f_r``, so the sample
        match count scales by ``1 / (f_l · f_r)``.  Returns None when a
        predicate uses an expression :func:`peek_eval` cannot model.
        """
        key = (left_table, left_pred, left_key,
               right_table, right_pred, right_key)
        if key in self._sample_joins:
            return self._sample_joins[key]
        estimate = self._sample_join(*key)
        self._sample_joins[key] = estimate
        return estimate

    def _sample_join(self, left_table, left_pred, left_key,
                     right_table, right_pred, right_key):
        from repro.errors import PlanError
        from repro.db.exprs import peek_eval

        left = self.table(left_table)
        right = self.table(right_table)
        if not left.rows or not right.rows:
            return None

        def surviving_keys(stats: TableStats, pred, key_expr) -> list:
            out = []
            for row in stats.rows:
                if pred is not None and not peek_eval(pred, row,
                                                      stats.index_of):
                    continue
                out.append(peek_eval(key_expr, row, stats.index_of))
            return out

        try:
            left_keys = surviving_keys(left, left_pred, left_key)
            build: dict = {}
            for value in surviving_keys(right, right_pred, right_key):
                build[value] = build.get(value, 0) + 1
        except (PlanError, KeyError, TypeError):
            return None
        matches = sum(build.get(value, 0) for value in left_keys)
        f_left = len(left.rows) / max(left.n_rows, 1)
        f_right = len(right.rows) / max(right.n_rows, 1)
        return matches / max(f_left * f_right, 1e-12)
