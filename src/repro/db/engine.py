"""The Database facade: load tables, plan, and execute queries.

One :class:`Database` is one engine flavour (an
:class:`~repro.db.profiles.EngineProfile`) bound to one simulated
machine.  It owns the catalog, the buffer pool / pagers, the temp
arena, and the output sink, and exposes:

* :meth:`create_table` — bulk-load rows into the profile's storage
  organisation and build requested secondary indexes;
* :meth:`plan` — lower a logical tree for this engine;
* :meth:`execute` — run a plan and return its result rows (while the
  machine counts every micro-op);
* :meth:`explain` — the physical plan as text.

Execution resets the temp arena (reusing its addresses, like a real
allocator) and streams result tuples into the output sink.
"""

from __future__ import annotations

import logging
from typing import Iterator, Optional, Sequence, Union

from repro.errors import DatabaseError
from repro.db.bufferpool import BufferPool, PoolStats
from repro.db.btree import BTree
from repro.db.catalog import Catalog, IndexDef, TableDef
from repro.db.operators.base import ExecContext, OutputSink, PhysicalOp, TempArena
from repro.db.planner import Logical, Planner
from repro.db.profiles import CLUSTERED, HEAP, EngineProfile
from repro.db.table import build_clustered, build_heap
from repro.db.types import Row, Schema
from repro.sim.machine import Machine

logger = logging.getLogger(__name__)


class ExecSession:
    """One re-entrant execution of one physical plan.

    :meth:`Database.execute` serialises queries through the database's
    shared temp arena and output sink; interleaved (time-sliced)
    executions would corrupt each other there.  A session owns private
    copies of both, carved from a per-*slot* resource pool so that
    queries scheduled into the same slot reuse warm arena addresses —
    the same allocator-reuse behaviour the shared path models.

    The session also snapshots the buffer pool's counters at creation,
    so per-query hit rates stay exact under interleaving (the
    ``reset_stats`` idiom is not concurrency-safe; see
    :class:`~repro.db.bufferpool.PoolStats`).
    """

    def __init__(self, db: "Database", physical: PhysicalOp,
                 temp: TempArena, sink: OutputSink, slot: int):
        self.db = db
        self.physical = physical
        self.slot = slot
        self.rows_emitted = 0
        self.finished = False
        self._temp = temp
        self._sink = sink
        temp.reset()
        self._pool_base: Optional[PoolStats] = (
            db._pool.stats() if db._pool is not None else None
        )
        self.ctx = ExecContext(
            machine=db.machine,
            profile=db.profile,
            catalog=db.catalog,
            temp=temp,
            sink=sink,
            state_region=db.state_region,
            state_overflow_region=db.state_overflow_region,
            cold_region=db.cold_region,
        )

    def rows(self) -> Iterator[Row]:
        """The plan's row generator; safe to advance one row at a time
        interleaved with other sessions."""
        row_bytes = self.physical.schema.row_size
        emit = self._sink.emit
        for row in self.physical.rows(self.ctx):
            emit(row_bytes)
            self.rows_emitted += 1
            yield row
        self.finished = True

    def pool_stats(self) -> PoolStats:
        """Buffer-pool counter delta attributable to this session so far."""
        if self._pool_base is None:
            pool = self.db._pool
            if pool is None:
                return PoolStats()
            # The pool came to life mid-session: everything it counted
            # happened after this session's baseline.
            return pool.stats()
        return self.db._pool.stats_since(self._pool_base)


class SessionRows:
    """A session's row stream speaking the batched-quantum protocol.

    :meth:`Database.execute_iter` returns one of these instead of a
    bare generator, so every plan-backed consumer — the serve loop's
    quanta, the cluster coordinator's shard drains — can execute whole
    batches with one call while per-row ``next()`` keeps working
    unchanged.

    :meth:`run_rows` advances the plan ``n`` rows inside a single
    call: the operator tree is *re-entered once* (the plan's operators
    live as suspended generator frames — scan/filter/project resume
    mid-loop, aggregate/sort/top-N resume mid-build or mid-drain — so
    a quantum boundary spills exactly the iterator state those frames
    hold), and each row crosses only the generator chain, never the
    caller's per-row dispatch.  The exactness contract is structural:
    ``run_rows(n)`` *is* ``n`` pulls of the same generator, so it
    charges precisely the micro-ops ``n`` single-row ``next()`` calls
    would — byte-identical counters, energy, and cache state by
    construction, whichever protocol the consumer picks
    (``tests/serve/test_engine_equivalence.py`` holds it to that).
    """

    __slots__ = ("session", "_rows")

    def __init__(self, session: ExecSession):
        self.session = session
        self._rows = session.rows()

    def __iter__(self) -> "SessionRows":
        return self

    def __next__(self) -> Row:
        return next(self._rows)

    def run_rows(self, n: int) -> int:
        """Produce up to ``n`` rows in one re-entry of the plan;
        returns how many were produced (fewer than asked = plan
        exhausted — the serve loop's end-of-stream signal)."""
        rows = self._rows
        done = 0
        try:
            for _ in range(n):
                next(rows)
                done += 1
        except StopIteration:
            pass
        return done

    def fetch_all(self) -> list[Row]:
        """Materialise every remaining row (bulk consumers: the
        cluster coordinator's per-shard result collection)."""
        return list(self._rows)

    def drain(self) -> int:
        """Run the plan to exhaustion, discarding rows; returns the
        row count (crashed-attempt accounting wants the charges, not
        the tuples)."""
        done = 0
        while True:
            got = self.run_rows(1024)
            done += got
            if got < 1024:
                return done


class Database:
    """One engine instance over one simulated machine."""

    def __init__(self, machine: Machine, profile: EngineProfile,
                 name: str = "db"):
        self.machine = machine
        self.profile = profile
        self.name = name
        self.catalog = Catalog()
        self._pool: Optional[BufferPool] = None
        self._next_file_id = 1
        self._next_block = 0
        arena_bytes = max(1 << 20, profile.work_mem_bytes * 2)
        self._temp = TempArena(machine, arena_bytes, label=f"{name}/temp")
        self._sink = OutputSink(machine)
        #: Per-slot (TempArena, OutputSink) pairs for re-entrant sessions.
        self._slot_resources: dict[int, tuple[TempArena, OutputSink]] = {}
        #: Hot interpreter/executor state (the sqlite3VdbeExec() analogue);
        #: the TCM co-design swaps in a DTCM region via set_state_region.
        self.state_region = machine.address_space.alloc(
            4096, label=f"{name}/engine-state"
        )
        self.state_overflow_region = None
        #: Larger, weak-locality working set (buffer descriptors, catalog
        #: caches); sized relative to L1D so scaled machines keep the
        #: same L2/L3-resident regime.
        self.cold_region = machine.address_space.alloc(
            machine.config.l1d.size * profile.cold_state_l1d_multiple,
            label=f"{name}/cold-state",
        )
        #: Write-ahead-log ring buffer (DML appends records here).
        self._wal_region = machine.address_space.alloc(
            64 * 1024, label=f"{name}/wal"
        )
        self._wal_cursor = 0
        self._planner = Planner(self.catalog, profile)
        #: Optional logical-plan optimizer (see :mod:`repro.db.optimizer`);
        #: when set, :meth:`plan` rewrites every logical tree through it
        #: before lowering.  Off by default: hand-built plans run as
        #: written unless a caller opts in via :meth:`enable_optimizer`.
        self.optimizer = None

    # ------------------------------------------------------------ loading

    @property
    def pool(self) -> BufferPool:
        """Lazily-created shared buffer pool (heap storage engines)."""
        if self._pool is None:
            self._pool = BufferPool(
                self.machine,
                self.profile.buffer_pool_bytes,
                self.profile.page_size,
                label=f"{self.name}/pool",
            )
        return self._pool

    def create_table(
        self,
        name: str,
        schema: Schema,
        rows: Sequence[Row],
        primary_key: Optional[str] = None,
        indexes: Sequence[str] = (),
    ) -> TableDef:
        """Bulk-load a table in this profile's organisation.

        ``primary_key`` defaults to the first column; clustered storage
        sorts and keys the table B-tree by it.  ``indexes`` lists extra
        columns to build secondary B-trees on.
        """
        pk = primary_key or schema.names()[0]
        pk_index = schema.index_of(pk)
        rows = [tuple(r) for r in rows]
        if self.profile.table_storage == CLUSTERED:
            pager_pages = max(
                1, self.profile.buffer_pool_bytes // self.profile.btree_node_bytes
            )
            storage = build_clustered(
                self.machine, schema, pk_index, rows,
                node_bytes=self.profile.btree_node_bytes,
                pager_pages=pager_pages,
                first_block=self._next_block,
                name=name,
            )
            n_pages = storage.tree.n_nodes
        elif self.profile.table_storage == HEAP:
            storage = build_heap(
                self.machine, schema, rows,
                page_size=self.profile.page_size,
                pool=self.pool,
                file_id=self._next_file_id,
                first_block=self._next_block,
            )
            self._next_file_id += 1
            n_pages = storage.file.n_pages
        else:
            raise DatabaseError(
                f"unknown table storage {self.profile.table_storage!r}"
            )
        self._next_block += n_pages + 1
        table = TableDef(name=name, schema=schema, storage=storage,
                         primary_key=pk)
        self.catalog.add_table(table)
        # Heap tables always get a primary-key index (every real engine
        # enforces the PK); clustered tables *are* their PK index.
        if self.profile.table_storage == HEAP:
            self._build_index(table, pk)
        for column in indexes:
            if column != pk or self.profile.table_storage != HEAP:
                self._build_index(table, column)
        return table

    def _build_index(self, table: TableDef, column: str) -> None:
        schema = table.schema
        col_index = schema.index_of(column)
        pk_index = schema.index_of(table.primary_key)
        clustered = self.profile.table_storage == CLUSTERED
        if clustered and col_index == pk_index:
            return  # the clustered tree already serves this column
        tree = BTree(
            self.machine,
            f"{table.name}.{column}",
            payload_bytes=8,
            node_bytes=self.profile.btree_node_bytes,
        )
        pairs = []
        if clustered:
            for row in (r for r, _ in table.storage.seq_scan(())):
                pairs.append((row[col_index], row[pk_index]))
        else:
            storage = table.storage
            for i in range(storage.file.n_rows):
                page_no, slot = storage.file.locate(i)
                row = storage.file.row_at(page_no, slot)
                pairs.append((row[col_index], (page_no, slot)))
        pairs.sort(key=lambda p: p[0])
        tree.bulk_load(pairs)
        self.catalog.add_index(
            IndexDef(
                name=f"idx_{table.name}_{column}",
                table_name=table.name,
                column=column,
                tree=tree,
                via_primary_key=clustered,
            )
        )

    # ------------------------------------------------------------ running

    def plan(self, logical: Logical) -> PhysicalOp:
        if self.optimizer is not None:
            logical = self.optimizer.optimize(logical).plan
        return self._planner.lower(logical)

    def enable_optimizer(self, delta_e=None) -> None:
        """Route every subsequent :meth:`plan` through the energy-aware
        optimizer (predicted-J-gated rewrites; calibrated ``delta_e``
        sharpens the predictions but is not required)."""
        from repro.db.optimizer import Optimizer

        self.optimizer = Optimizer(self.catalog, self.profile,
                                   delta_e=delta_e)

    def disable_optimizer(self) -> None:
        self.optimizer = None

    def sql(self, text: str):
        """Parse and execute one statement.

        SELECT returns the result rows; INSERT/UPDATE/DELETE return the
        affected-row count.
        """
        from repro.db.sql import ast
        from repro.db.sql.parser import parse_statement
        from repro.db.sql.translate import _Translator, bind_dml

        stmt = parse_statement(text)
        with self.machine.tracer.span("sql", category="sql",
                                      statement=text, engine=self.name):
            if isinstance(stmt, ast.SelectStmt):
                return self.execute(
                    _Translator(self.catalog, stmt).translate()
                )
            if isinstance(stmt, ast.InsertStmt):
                return self.insert(stmt.table, stmt.rows)
            if isinstance(stmt, ast.UpdateStmt):
                assignments, predicate = bind_dml(self.catalog, stmt)
                return self.update(stmt.table, assignments, predicate)
            if isinstance(stmt, ast.DeleteStmt):
                return self.delete(stmt.table, bind_dml(self.catalog, stmt))
        raise DatabaseError(f"unsupported statement {type(stmt).__name__}")

    def sql_plan(self, text: str) -> Logical:
        """Parse and bind a SELECT statement without executing it."""
        from repro.db.sql.translate import sql_to_plan

        return sql_to_plan(self.catalog, text)

    def explain(self, query: Union[Logical, PhysicalOp]) -> str:
        physical = query if isinstance(query, PhysicalOp) else self.plan(query)
        return physical.explain()

    def execute(self, query: Union[Logical, PhysicalOp]) -> list[Row]:
        """Run a query; returns the result rows.

        Every result tuple is materialised into the output sink (its
        stores are the "output stream" temporary data of §3.2); result
        *display* stays disabled, as in the paper's modified kernels.
        """
        physical = query if isinstance(query, PhysicalOp) else self.plan(query)
        self._temp.reset()
        tracer = self.machine.tracer
        ctx = ExecContext(
            machine=self.machine,
            profile=self.profile,
            catalog=self.catalog,
            temp=self._temp,
            sink=self._sink,
            state_region=self.state_region,
            state_overflow_region=self.state_overflow_region,
            cold_region=self.cold_region,
            tracer=tracer,
        )
        row_bytes = physical.schema.row_size
        out: list[Row] = []
        emit = self._sink.emit
        with tracer.span("execute", category="query", engine=self.name,
                         plan_root=physical.describe()):
            for row in physical.traced_rows(ctx):
                emit(row_bytes)
                out.append(row)
        logger.debug("%s: executed %s -> %d rows",
                     self.name, physical.describe(), len(out))
        return out

    def session(self, query: Union[Logical, PhysicalOp],
                slot: int = 0) -> ExecSession:
        """Open a re-entrant execution of ``query`` (see
        :class:`ExecSession`).  Sessions with distinct slots may be
        advanced interleaved; consecutive sessions in one slot reuse the
        slot's (warm) temp arena and sink."""
        physical = query if isinstance(query, PhysicalOp) else self.plan(query)
        resources = self._slot_resources.get(slot)
        if resources is None:
            arena_bytes = max(1 << 20, self.profile.work_mem_bytes * 2)
            resources = (
                TempArena(self.machine, arena_bytes,
                          label=f"{self.name}/temp.slot{slot}"),
                OutputSink(self.machine),
            )
            self._slot_resources[slot] = resources
        return ExecSession(self, physical, resources[0], resources[1], slot)

    def execute_iter(self, query: Union[Logical, PhysicalOp],
                     slot: int = 0) -> SessionRows:
        """Stream a query's rows (re-entrant form of :meth:`execute`).

        The returned :class:`SessionRows` is a plain row iterator that
        additionally speaks the batched-quantum protocol
        (``run_rows``), so the serve loop and the cluster coordinator
        execute plan-backed work in bulk while ad-hoc callers keep
        iterating row by row."""
        return SessionRows(self.session(query, slot=slot))

    # ------------------------------------------------------------ DML
    #
    # The paper profiles read queries only and leaves write energy as
    # future work (§2.3); the write path exists so downstream studies
    # can take that step (see repro.analysis.experiments.ext_writes).

    def _dml_row_overhead(self, row_bytes: int) -> None:
        """Per-modified-row engine work: the same interpreter that runs
        reads (§3.2's hot state), plus a WAL record append."""
        machine = self.machine
        profile = self.profile
        machine.hot_loads(self.state_region.base, profile.state_loads_per_row)
        machine.hot_stores(self.state_region.base, profile.state_stores_per_row)
        machine.other(profile.state_other_per_row)
        machine.branch(profile.state_branch_per_row // 2)
        machine.add(profile.state_add_per_row // 2)
        record = row_bytes + 24  # LSN + table id + checksum
        # Wrap on the *padded* size: the cursor advances by the aligned
        # footprint, so checking the raw record length let a record start
        # at a cursor whose aligned end fell past the region, pushing the
        # next append (and its store traffic) beyond the WAL arena.
        padded = (record + 7) // 8 * 8
        if self._wal_cursor + padded > self._wal_region.size:
            self._wal_cursor = 0
        machine.store_bytes(self._wal_region.base + self._wal_cursor, record)
        self._wal_cursor += padded

    def insert(self, table_name: str, rows: Sequence[Row]) -> int:
        """Insert rows, maintaining every index; returns the count."""
        table = self.catalog.table(table_name)
        schema = table.schema
        pk_index = schema.index_of(table.primary_key)
        clustered = self.profile.table_storage == CLUSTERED
        n = 0
        for row in rows:
            row = tuple(row)
            if len(row) != len(schema):
                raise DatabaseError(
                    f"row arity {len(row)} != schema arity {len(schema)}"
                )
            self._dml_row_overhead(schema.row_size)
            rowref = table.storage.insert(row)
            for index in table.indexes.values():
                key = row[schema.index_of(index.column)]
                payload = row[pk_index] if clustered else rowref
                index.tree.insert(key, payload)
            n += 1
        return n

    def update(self, table_name: str, assignments: dict,
               predicate=None) -> int:
        """UPDATE ... SET: returns the number of rows changed.

        ``assignments`` maps column names to expressions (or plain
        values).  Changing the primary key is rejected — real engines
        implement that as delete+insert, and so should callers.
        """
        from repro.db.exprs import Const, Expr

        table = self.catalog.table(table_name)
        schema = table.schema
        if table.primary_key in assignments:
            raise DatabaseError(
                "updating the primary key is not supported; delete and "
                "re-insert instead"
            )
        compiled = {}
        for column, value in assignments.items():
            expr = value if isinstance(value, Expr) else Const(value)
            compiled[schema.index_of(column)] = expr.compile(
                schema, self.machine
            )
        pred = (predicate.compile(schema, self.machine)
                if predicate is not None else None)
        pk_index = schema.index_of(table.primary_key)
        clustered = self.profile.table_storage == CLUSTERED
        touched = tuple(range(len(schema)))
        changed = []
        for row, rowref in table.storage.seq_scan(touched):
            if pred is None or pred(row):
                changed.append((row, rowref))
        for old_row, rowref in changed:
            self._dml_row_overhead(schema.row_size)
            new_row = list(old_row)
            for col_index, fn in compiled.items():
                new_row[col_index] = fn(old_row)
            new_row = tuple(new_row)
            table.storage.update(rowref, new_row)
            # Maintain indexes whose key changed.
            for index in table.indexes.values():
                col_index = schema.index_of(index.column)
                if old_row[col_index] == new_row[col_index]:
                    continue
                payload = old_row[pk_index] if clustered else rowref
                index.tree.delete(old_row[col_index], payload)
                index.tree.insert(new_row[col_index], payload)
        return len(changed)

    def delete(self, table_name: str, predicate=None) -> int:
        """DELETE FROM: returns the number of rows removed.

        Heap tables tombstone (stale index entries are skipped lazily);
        clustered tables remove the tree entry, and their secondary
        indexes go stale the same lazy way.
        """
        table = self.catalog.table(table_name)
        schema = table.schema
        pred = (predicate.compile(schema, self.machine)
                if predicate is not None else None)
        touched = tuple(range(len(schema)))
        doomed = []
        for row, rowref in table.storage.seq_scan(touched):
            if pred is None or pred(row):
                doomed.append(rowref)
        for rowref in doomed:
            self._dml_row_overhead(24)  # tombstone record only
            table.storage.delete(rowref)
        return len(doomed)

    def set_state_region(self, region) -> None:
        """Relocate the engine's *key* hot structures (the §4.2 "special
        variables" strategy places 4KB of them in DTCM).  The previous
        region keeps the uncovered remainder of the state traffic."""
        self.state_overflow_region = self.state_region
        self.state_region = region

    def clear_caches(self) -> None:
        """Cold-start the storage layer (buffer pool and pagers)."""
        if self._pool is not None:
            self._pool.clear()
        for table in self.catalog.tables():
            storage = table.storage
            pager = getattr(storage, "pager", None)
            if pager is not None:
                pager.clear()
