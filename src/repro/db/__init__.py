"""Mini relational engine with PostgreSQL-, SQLite-, and MySQL-like
profiles, instrumented down to individual micro-operations."""

from repro.db import exprs
from repro.db.catalog import Catalog, IndexDef, TableDef
from repro.db.engine import Database
from repro.db.planner import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    Logical,
    Planner,
    Project,
    Scan,
    Sort,
)
from repro.db.operators import AggSpec
from repro.db.optimizer import (
    OptimizationResult,
    Optimizer,
    PassReport,
    default_passes,
)
from repro.db.profiles import (
    BASELINE,
    ENGINES,
    LARGE,
    SETTINGS,
    SMALL,
    EngineProfile,
    engine_profile,
    mysql_like,
    postgres_like,
    sqlite_like,
)
from repro.db.stats import Statistics
from repro.db.types import Column, DATE, FLOAT, INT, STR, Row, Schema

__all__ = [
    "exprs",
    "Catalog", "IndexDef", "TableDef",
    "Database",
    "Aggregate", "Distinct", "Filter", "Join", "Limit", "Logical",
    "Planner", "Project", "Scan", "Sort",
    "AggSpec",
    "OptimizationResult", "Optimizer", "PassReport", "default_passes",
    "Statistics",
    "BASELINE", "ENGINES", "LARGE", "SETTINGS", "SMALL",
    "EngineProfile", "engine_profile",
    "mysql_like", "postgres_like", "sqlite_like",
    "Column", "DATE", "FLOAT", "INT", "STR", "Row", "Schema",
]
