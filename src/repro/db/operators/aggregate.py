"""Aggregation: hash group-by and scalar aggregates.

Per input row the operator charges the group hash probe (multiply +
add + dependent load into the group table) and, per aggregate, the
state update (an add plus a store into the group's state slot) — the
temporary-data write traffic of §3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.errors import PlanError
from repro.db.exprs import Expr
from repro.db.operators.base import ExecContext, PhysicalOp
from repro.db.operators.misc import infer_output_column
from repro.seeding import stable_hash
from repro.db.types import Column, FLOAT, INT, Row, Schema

SUM = "sum"
COUNT = "count"
AVG = "avg"
MIN = "min"
MAX = "max"
COUNT_DISTINCT = "count_distinct"
AGG_KINDS = (SUM, COUNT, AVG, MIN, MAX, COUNT_DISTINCT)

#: Modelled bytes of aggregate state per group (fits sums/counts).
_STATE_BYTES = 64


@dataclass(frozen=True)
class AggSpec:
    """One aggregate output: ``name = kind(expr)``.

    ``expr`` may be None only for COUNT (count of rows).
    """

    name: str
    kind: str
    expr: Optional[Expr] = None

    def __post_init__(self) -> None:
        if self.kind not in AGG_KINDS:
            raise PlanError(f"unknown aggregate {self.kind!r}")
        if self.expr is None and self.kind not in (COUNT,):
            raise PlanError(f"{self.kind} needs an argument expression")


class _State:
    """Accumulator for one group."""

    __slots__ = ("sums", "counts", "mins", "maxs", "distincts", "n_rows")

    def __init__(self, n_aggs: int):
        self.sums = [0.0] * n_aggs
        self.counts = [0] * n_aggs
        self.mins = [None] * n_aggs
        self.maxs = [None] * n_aggs
        self.distincts: list = [None] * n_aggs
        self.n_rows = 0


class AggOp(PhysicalOp):
    """Group-by + aggregates; with no group keys, a single scalar row.

    Output schema: group columns first (in given order), then one
    column per aggregate.
    """

    def __init__(self, child: PhysicalOp,
                 group_by: Sequence[tuple[str, Expr]],
                 aggs: Sequence[AggSpec]):
        if not aggs and not group_by:
            raise PlanError("aggregation needs group keys or aggregates")
        self.child = child
        self.group_by = tuple(group_by)
        self.aggs = tuple(aggs)
        columns = [
            infer_output_column(name, expr, child.schema)
            for name, expr in group_by
        ]
        for spec in aggs:
            col_type = INT if spec.kind in (COUNT, COUNT_DISTINCT) else FLOAT
            columns.append(Column(spec.name, col_type))
        self.schema = Schema(columns)

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(n for n, _ in self.group_by) or "<scalar>"
        return f"Agg(by {keys}; {len(self.aggs)} aggs)"

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        machine = ctx.machine
        child_schema = self.child.schema
        key_fns = [expr.compile(child_schema, machine)
                   for _, expr in self.group_by]
        agg_fns = [
            spec.expr.compile(child_schema, machine)
            if spec.expr is not None else None
            for spec in self.aggs
        ]
        kinds = [spec.kind for spec in self.aggs]
        n_aggs = len(self.aggs)

        states: dict[tuple, _State] = {}
        table_region = ctx.temp.alloc(128 * 1024, label="agg-states")
        n_lines = max(1, table_region.n_lines)
        base = table_region.base
        load = machine.load
        store = machine.store
        mul = machine.mul
        add = machine.add
        cmp_op = machine.cmp

        # Group keys repeat heavily (a handful of groups over thousands
        # of rows), so the simulated slot address — a recursive
        # ``stable_hash`` fold — is memoised per distinct key; the
        # addresses, and therefore every charged micro-op, are
        # identical to recomputing it each row.  The per-agg ALU
        # charge is bulked into one ``add`` per row (same totals).
        slot_addrs: dict = {}
        kind_fn_pairs = list(zip(kinds, agg_fns))
        key0 = key_fns[0] if key_fns else None
        key1 = key_fns[1] if len(key_fns) == 2 else None
        n_key_fns = len(key_fns)

        for row in self.child.traced_rows(ctx):
            if n_key_fns == 1:
                key = (key0(row),)
            elif n_key_fns == 2:
                key = (key0(row), key1(row))
            else:
                key = tuple(fn(row) for fn in key_fns)
            mul(1)
            add(1)
            slot_addr = slot_addrs.get(key)
            if slot_addr is None:
                slot_addr = base + (stable_hash(key) % n_lines) * 64
                slot_addrs[key] = slot_addr
            load(slot_addr, dependent=True)
            cmp_op(1)
            state = states.get(key)
            if state is None:
                state = _State(n_aggs)
                states[key] = state
                machine.store_bytes(slot_addr, _STATE_BYTES)
            state.n_rows += 1
            if n_aggs:
                add(n_aggs)
            for i, (kind, fn) in enumerate(kind_fn_pairs):
                store(slot_addr + 8 * (i % 8))
                if kind == COUNT:
                    if fn is None:
                        state.counts[i] += 1
                    elif fn(row) is not None:
                        state.counts[i] += 1
                    continue
                value = fn(row)
                if kind == SUM or kind == AVG:
                    state.sums[i] += value
                    state.counts[i] += 1
                elif kind == MIN:
                    if state.mins[i] is None or value < state.mins[i]:
                        state.mins[i] = value
                elif kind == MAX:
                    if state.maxs[i] is None or value > state.maxs[i]:
                        state.maxs[i] = value
                elif kind == COUNT_DISTINCT:
                    if state.distincts[i] is None:
                        state.distincts[i] = set()
                    state.distincts[i].add(value)

        if not states and not self.group_by:
            # SQL semantics: scalar aggregates over empty input produce
            # one row (count = 0, sum/min/max = None).
            states[()] = _State(n_aggs)

        overflow = len(states) * _STATE_BYTES - ctx.profile.work_mem_bytes
        if overflow > 0:
            ctx.spill(overflow)

        produce = ctx.produce_overhead
        for key, state in states.items():
            produce()
            out = list(key)
            for i, kind in enumerate(kinds):
                if kind == COUNT:
                    out.append(state.counts[i])
                elif kind == SUM:
                    out.append(state.sums[i] if state.counts[i] else None)
                elif kind == AVG:
                    out.append(
                        state.sums[i] / state.counts[i]
                        if state.counts[i] else None
                    )
                elif kind == MIN:
                    out.append(state.mins[i])
                elif kind == MAX:
                    out.append(state.maxs[i])
                elif kind == COUNT_DISTINCT:
                    out.append(
                        len(state.distincts[i])
                        if state.distincts[i] is not None else 0
                    )
            yield tuple(out)
