"""Sort operator: in-memory quicksort with external-merge spill.

The sort materialises its input into the temp arena (the stores the
paper attributes to temporary data), computes each row's key once, then
models the comparison traffic of an n-log-n sort: two dependent key
loads plus a compare per comparison.  Inputs larger than ``work_mem``
pay an external merge pass (spill write + read) like a real engine.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Sequence

from repro.errors import PlanError
from repro.db.exprs import Expr
from repro.db.operators.base import ExecContext, PhysicalOp
from repro.db.types import Row


class SortOp(PhysicalOp):
    """Sort by one or more key expressions; optional top-N cutoff."""

    def __init__(self, child: PhysicalOp,
                 keys: Sequence[tuple[Expr, bool]],
                 limit: Optional[int] = None):
        if not keys:
            raise PlanError("sort needs at least one key")
        self.child = child
        self.keys = tuple(keys)
        self.limit = limit
        self.schema = child.schema

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def describe(self) -> str:
        suffix = f" top-{self.limit}" if self.limit is not None else ""
        return f"Sort({len(self.keys)} keys{suffix})"

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        machine = ctx.machine
        row_size = self.schema.row_size
        compiled = [
            (expr.compile(self.child.schema, machine), desc)
            for expr, desc in self.keys
        ]

        # Materialise: store every input row into the sort buffer.
        buffered: list[tuple[tuple, Row]] = []
        buffer_region = ctx.temp.alloc(64 * 1024, label="sort-buffer")
        cursor = 0
        for row in self.child.traced_rows(ctx):
            machine.store_bytes(buffer_region.base + cursor % buffer_region.size,
                                row_size)
            cursor += row_size
            key = tuple(
                _order_value(fn(row), desc) for fn, desc in compiled
            )
            buffered.append((key, row))

        n = len(buffered)
        if n == 0:
            return

        total_bytes = n * row_size
        if total_bytes > ctx.profile.work_mem_bytes:
            # External sort: one full spill round-trip plus merge reads.
            ctx.spill(total_bytes - ctx.profile.work_mem_bytes)

        # Comparison traffic of the sort: n*ceil(log2 n) comparisons,
        # each touching two keys in the buffer.
        comparisons = n * max(1, math.ceil(math.log2(n)))
        self._charge_comparisons(ctx, buffer_region, comparisons)

        buffered.sort(key=lambda pair: pair[0])
        produce = ctx.produce_overhead
        limit = self.limit if self.limit is not None else n
        for _key, row in buffered[:limit]:
            produce()
            yield row

    @staticmethod
    def _charge_comparisons(ctx: ExecContext, region, comparisons: int) -> None:
        machine = ctx.machine
        n_lines = max(1, region.n_lines)
        base = region.base
        load = machine.load
        cmp_op = machine.cmp
        # Walk the buffer with a coprime stride so the modelled loads
        # spread across the sort buffer like partition exchanges do.
        line = 0
        for _ in range(comparisons):
            load(base + line * 64, dependent=True)
            line = (line + 7) % n_lines
            load(base + line * 64)
            cmp_op(1)


class _Reversed:
    """Ordering adaptor for descending keys of any comparable type."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


def _order_value(value, desc: bool):
    if not desc:
        return value
    # Numeric keys negate cheaply; everything else wraps.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return _Reversed(value)
    return -value
