"""Sort operators: full materialising sort and the streaming top-N heap.

:class:`SortOp` materialises its input into the temp arena (the stores
the paper attributes to temporary data), computes each row's key once,
then models the comparison traffic of an n-log-n sort: two dependent
key loads plus a compare per comparison.  Inputs larger than
``work_mem`` pay an external merge pass (spill write + read) like a
real engine.

:class:`TopNHeapOp` is the bounded alternative the optimizer's limit
pushdown enables: a ``limit``-entry heap keeps only the current best
rows, so the buffer stays cache-resident and never spills, every
non-qualifying input row costs a single root comparison, and the output
is exactly the stable full sort's first ``limit`` rows (ties break on
arrival order).
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator, Optional, Sequence

from repro.errors import PlanError
from repro.db.exprs import Expr
from repro.db.operators.base import ExecContext, PhysicalOp
from repro.db.types import Row


class SortOp(PhysicalOp):
    """Sort by one or more key expressions; optional top-N cutoff."""

    def __init__(self, child: PhysicalOp,
                 keys: Sequence[tuple[Expr, bool]],
                 limit: Optional[int] = None):
        if not keys:
            raise PlanError("sort needs at least one key")
        self.child = child
        self.keys = tuple(keys)
        self.limit = limit
        self.schema = child.schema

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def describe(self) -> str:
        suffix = f" top-{self.limit}" if self.limit is not None else ""
        return f"Sort({len(self.keys)} keys{suffix})"

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        machine = ctx.machine
        row_size = self.schema.row_size
        compiled = [
            (expr.compile(self.child.schema, machine), desc)
            for expr, desc in self.keys
        ]

        # Materialise: store every input row into the sort buffer.
        buffered: list[tuple[tuple, Row]] = []
        buffer_region = ctx.temp.alloc(64 * 1024, label="sort-buffer")
        cursor = 0
        for row in self.child.traced_rows(ctx):
            machine.store_bytes(buffer_region.base + cursor % buffer_region.size,
                                row_size)
            cursor += row_size
            key = tuple(
                _order_value(fn(row), desc) for fn, desc in compiled
            )
            buffered.append((key, row))

        n = len(buffered)
        if n == 0:
            return

        total_bytes = n * row_size
        if total_bytes > ctx.profile.work_mem_bytes:
            # External sort: one full spill round-trip plus merge reads.
            ctx.spill(total_bytes - ctx.profile.work_mem_bytes)

        # Comparison traffic of the sort: n*ceil(log2 n) comparisons,
        # each touching two keys in the buffer.
        comparisons = n * max(1, math.ceil(math.log2(n)))
        self._charge_comparisons(ctx, buffer_region, comparisons)

        buffered.sort(key=lambda pair: pair[0])
        produce = ctx.produce_overhead
        limit = self.limit if self.limit is not None else n
        for _key, row in buffered[:limit]:
            produce()
            yield row

    @staticmethod
    def _charge_comparisons(ctx: ExecContext, region, comparisons: int) -> None:
        machine = ctx.machine
        n_lines = max(1, region.n_lines)
        base = region.base
        load = machine.load
        cmp_op = machine.cmp
        # Walk the buffer with a coprime stride so the modelled loads
        # spread across the sort buffer like partition exchanges do.
        line = 0
        for _ in range(comparisons):
            load(base + line * 64, dependent=True)
            line = (line + 7) % n_lines
            load(base + line * 64)
            cmp_op(1)


class _WorstFirst:
    """Heap entry ordered so the *worst* kept row sits at the root.

    ``heapq`` builds min-heaps; inverting the comparison makes the root
    the largest ``(key, seq)`` — the next candidate for eviction.  The
    arrival sequence number both breaks key ties (matching a stable
    sort's prefix exactly) and keeps row payloads out of comparisons.
    """

    __slots__ = ("key", "seq", "row")

    def __init__(self, key: tuple, seq: int, row: Row):
        self.key = key
        self.seq = seq
        self.row = row

    def __lt__(self, other: "_WorstFirst") -> bool:
        return (other.key, other.seq) < (self.key, self.seq)


class TopNHeapOp(PhysicalOp):
    """Keep the ``limit`` smallest rows by the sort keys, streaming."""

    def __init__(self, child: PhysicalOp,
                 keys: Sequence[tuple[Expr, bool]], limit: int):
        if not keys:
            raise PlanError("top-N heap needs at least one key")
        if limit < 1:
            raise PlanError("top-N heap needs a positive limit")
        self.child = child
        self.keys = tuple(keys)
        self.limit = limit
        self.schema = child.schema

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"TopNHeap({len(self.keys)} keys, n={self.limit})"

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        machine = ctx.machine
        row_size = self.schema.row_size
        limit = self.limit
        compiled = [
            (expr.compile(self.child.schema, machine), desc)
            for expr, desc in self.keys
        ]
        heap_bytes = max(1024, min(limit * row_size, 64 * 1024))
        region = ctx.temp.alloc(heap_bytes, label="topn-heap")
        n_lines = max(1, region.n_lines)
        base = region.base
        load = machine.load
        cmp_op = machine.cmp
        sift_depth = max(1, math.ceil(math.log2(limit + 1)))

        def charge_replace(slot: int) -> None:
            # Store the admitted row, then sift down: log2(limit) levels
            # of parent/child compares inside the (cache-resident) heap.
            machine.store_bytes(base + (slot * row_size) % region.size,
                                row_size)
            line = slot % n_lines
            for _ in range(sift_depth):
                load(base + line * 64, dependent=True)
                line = (line + 7) % n_lines
                load(base + line * 64)
                cmp_op(1)

        # Fill phase: buffer rows unordered, exactly like the full
        # sort's materialisation — the heap property is only needed once
        # a row must be evicted, so heapification is deferred until the
        # first overflowing row (inputs that fit entirely never pay it).
        heap: list[_WorstFirst] = []
        heaped = False
        seq = 0
        for row in self.child.traced_rows(ctx):
            key = tuple(
                _order_value(fn(row), desc) for fn, desc in compiled
            )
            if len(heap) < limit:
                heap.append(_WorstFirst(key, seq, row))
                machine.store_bytes(base + (seq * row_size) % region.size,
                                    row_size)
            else:
                if not heaped:
                    heapq.heapify(heap)
                    # Bottom-up heapify: ~limit sibling/parent compares.
                    SortOp._charge_comparisons(ctx, region, limit)
                    heaped = True
                # One dependent root load + compare decides admission.
                worst = heap[0]
                load(base, dependent=True)
                cmp_op(1)
                if (key, seq) < (worst.key, worst.seq):
                    heapq.heapreplace(heap, _WorstFirst(key, seq, row))
                    charge_replace(seq)
            seq += 1

        if not heap:
            return
        # Final output sort of the kept rows — the same comparison
        # traffic the full sort would charge for this many rows.
        kept = len(heap)
        SortOp._charge_comparisons(
            ctx, region, kept * max(1, math.ceil(math.log2(max(kept, 2))))
        )
        produce = ctx.produce_overhead
        for entry in sorted(heap, key=lambda e: (e.key, e.seq)):
            produce()
            yield entry.row


class _Reversed:
    """Ordering adaptor for descending keys of any comparable type."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


def _order_value(value, desc: bool):
    if not desc:
        return value
    # Numeric keys negate cheaply; everything else wraps.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return _Reversed(value)
    return -value
