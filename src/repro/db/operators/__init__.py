"""Physical operators of the mini relational engine."""

from repro.db.operators.aggregate import (
    AGG_KINDS,
    AVG,
    COUNT,
    COUNT_DISTINCT,
    MAX,
    MIN,
    SUM,
    AggOp,
    AggSpec,
)
from repro.db.operators.base import (
    ExecContext,
    OutputSink,
    PhysicalOp,
    TempArena,
)
from repro.db.operators.join import (
    ANTI,
    INNER,
    JOIN_KINDS,
    LEFT,
    SEMI,
    HashJoinOp,
    IndexNLJoinOp,
)
from repro.db.operators.misc import DistinctOp, FilterOp, LimitOp, ProjectOp
from repro.db.operators.scan import (
    IndexOrderScanOp,
    IndexRangeScanOp,
    SeqScanOp,
)
from repro.db.operators.sort import SortOp, TopNHeapOp

__all__ = [
    "AGG_KINDS", "AVG", "COUNT", "COUNT_DISTINCT", "MAX", "MIN", "SUM",
    "AggOp", "AggSpec",
    "ExecContext", "OutputSink", "PhysicalOp", "TempArena",
    "ANTI", "INNER", "JOIN_KINDS", "LEFT", "SEMI",
    "HashJoinOp", "IndexNLJoinOp",
    "DistinctOp", "FilterOp", "LimitOp", "ProjectOp",
    "IndexOrderScanOp", "IndexRangeScanOp", "SeqScanOp",
    "SortOp", "TopNHeapOp",
]
