"""Join operators: hash join and index nested-loop join.

* :class:`HashJoinOp` — PostgreSQL/MySQL-8 style: build a hash table on
  the right child (spilling when it exceeds ``work_mem``), probe with
  the left child.  Supports inner, left-outer, semi, and anti joins.
* :class:`IndexNLJoinOp` — SQLite style: for each outer row, look the
  join key up in the inner table's B-tree (primary key or secondary
  index).  Dependent pointer-chasing per probe.

Join memory behaviour is modelled, not just counted: hash buckets and
entries live in the query's temp arena, so their loads/stores flow
through the simulated cache hierarchy like everything else.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.errors import PlanError
from repro.db.catalog import TableDef
from repro.db.exprs import Expr, columns_used
from repro.db.operators.base import ExecContext, PhysicalOp
from repro.seeding import stable_hash
from repro.db.table import ClusteredTable, HeapTable
from repro.db.types import Row

INNER = "inner"
LEFT = "left"
SEMI = "semi"
ANTI = "anti"
JOIN_KINDS = (INNER, LEFT, SEMI, ANTI)

#: Modelled bytes per hash-table entry (key + pointer + padding).
_ENTRY_BYTES = 24


class _ModeledHashTable:
    """A chained hash table in the temp arena with op accounting."""

    def __init__(self, ctx: ExecContext, est_entries: int, label: str):
        self.ctx = ctx
        n_buckets = max(64, 1 << (max(1, est_entries)).bit_length())
        self.n_buckets = n_buckets
        self.buckets_region = ctx.temp.alloc(n_buckets * 8, label=f"{label}/buckets")
        self.entries_region = ctx.temp.alloc(
            max(64, est_entries) * _ENTRY_BYTES, label=f"{label}/entries"
        )
        self._cursor = 0
        self._map: dict = {}
        self.n_entries = 0
        #: key -> bucket byte offset.  ``stable_hash`` is a recursive
        #: Python fold, far more expensive than the dict probe, and
        #: join keys repeat heavily (foreign keys), so the offset is
        #: computed once per distinct key — the addresses (and thus
        #: every charged micro-op) are identical either way.
        self._bucket_offs: dict = {}

    def _bucket_addr(self, key) -> int:
        machine = self.ctx.machine
        machine.mul(1)
        machine.add(1)
        off = self._bucket_offs.get(key)
        if off is None:
            off = (stable_hash(key) % self.n_buckets) * 8
            self._bucket_offs[key] = off
        return self.buckets_region.base + off

    def insert(self, key, value) -> None:
        machine = self.ctx.machine
        machine.load(self._bucket_addr(key), dependent=True)
        entry_addr = self.entries_region.base + (
            self._cursor % max(1, self.entries_region.size - _ENTRY_BYTES)
        )
        machine.store_bytes(entry_addr, _ENTRY_BYTES)
        self._cursor += _ENTRY_BYTES
        self._map.setdefault(key, []).append(value)
        self.n_entries += 1

    def probe(self, key) -> list:
        machine = self.ctx.machine
        machine.load(self._bucket_addr(key), dependent=True)
        matches = self._map.get(key, [])
        # Walk the chain: one dependent load + compare per entry.
        for _ in matches:
            machine.load(self.entries_region.base, dependent=True)
            machine.cmp(1)
        if not matches:
            machine.cmp(1)
        return matches

    @property
    def bytes_used(self) -> int:
        return self.n_buckets * 8 + self.n_entries * _ENTRY_BYTES


class HashJoinOp(PhysicalOp):
    """Hash join: builds on the right child, probes with the left.

    Output schema is ``left ++ right`` for inner/left joins and just
    ``left`` for semi/anti joins.
    """

    def __init__(self, left: PhysicalOp, right: PhysicalOp,
                 left_key: Expr, right_key: Expr, kind: str = INNER):
        if kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {kind!r}")
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.kind = kind
        if kind in (SEMI, ANTI):
            self.schema = left.schema
        else:
            self.schema = left.schema.concat(right.schema)
        self._null_right = tuple([None] * len(right.schema))

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"HashJoin[{self.kind}]"

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        machine = ctx.machine
        build_key = self.right_key.compile(self.right.schema, machine)
        probe_key = self.left_key.compile(self.left.schema, machine)
        table = _ModeledHashTable(
            ctx, est_entries=1024, label=f"hashjoin/{id(self) & 0xffff:x}"
        )
        build_rows = 0
        for row in self.right.traced_rows(ctx):
            table.insert(build_key(row), row)
            build_rows += 1
        overflow = table.bytes_used - ctx.profile.work_mem_bytes
        if overflow > 0:
            ctx.spill(overflow)
        produce = ctx.produce_overhead
        semi = self.kind == SEMI
        anti = self.kind == ANTI
        left_outer = self.kind == LEFT
        for row in self.left.traced_rows(ctx):
            matches = table.probe(probe_key(row))
            if semi:
                if matches:
                    produce()
                    yield row
                continue
            if anti:
                if not matches:
                    produce()
                    yield row
                continue
            if matches:
                for match in matches:
                    produce()
                    yield row + match
            elif left_outer:
                produce()
                yield row + self._null_right


class IndexNLJoinOp(PhysicalOp):
    """Index nested-loop join: probe the inner table's tree per outer row.

    ``inner_column`` must be the inner table's clustered key or an
    indexed column.  Output schema is ``outer ++ inner`` (or ``outer``
    for semi/anti).
    """

    def __init__(self, outer: PhysicalOp, inner: TableDef,
                 outer_key: Expr, inner_column: str, kind: str = INNER,
                 inner_predicate: Optional[Expr] = None,
                 touched_inner: Optional[Sequence[str]] = None):
        if kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {kind!r}")
        self.outer = outer
        self.inner = inner
        self.outer_key = outer_key
        self.inner_column = inner_column
        self.kind = kind
        self.inner_predicate = inner_predicate
        storage = inner.storage
        inner_schema = inner.schema
        self._inner_key_index = inner_schema.index_of(inner_column)
        self._clustered_key = (
            isinstance(storage, ClusteredTable)
            and storage.key_column == self._inner_key_index
        )
        self.index = None if self._clustered_key else inner.index_on(inner_column)
        if not self._clustered_key and self.index is None:
            raise PlanError(
                f"no access path for NL join on {inner.name}.{inner_column}"
            )
        needed: set[str] = set(touched_inner or inner_schema.names())
        if inner_predicate is not None:
            needed.update(columns_used(inner_predicate))
        self._needed = tuple(sorted(inner_schema.index_of(n) for n in needed))
        if kind in (SEMI, ANTI):
            self.schema = outer.schema
        else:
            self.schema = outer.schema.concat(inner_schema)
        self._null_inner = tuple([None] * len(inner_schema))

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.outer,)

    def describe(self) -> str:
        return (
            f"IndexNLJoin[{self.kind}]({self.inner.name}.{self.inner_column})"
        )

    def _lookup(self, key) -> list[Row]:
        storage = self.inner.storage
        if self._clustered_key:
            assert isinstance(storage, ClusteredTable)
            row = storage.key_lookup(key, self._needed)
            return [row] if row is not None else []
        assert self.index is not None
        out = []
        # Secondary indexes may be non-unique: scan the [key, key] range.
        for _k, payload, _addr in self.index.tree.range_scan(key, key):
            if isinstance(storage, HeapTable):
                row = storage.fetch_row(payload, self._needed)
            else:
                assert isinstance(storage, ClusteredTable)
                row = storage.key_lookup(payload, self._needed)
            if row is not None:
                out.append(row)
        return out

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        machine = ctx.machine
        outer_key = self.outer_key.compile(self.outer.schema, machine)
        inner_pred = (
            self.inner_predicate.compile(self.inner.schema, machine)
            if self.inner_predicate is not None else None
        )
        produce = ctx.produce_overhead
        semi = self.kind == SEMI
        anti = self.kind == ANTI
        left_outer = self.kind == LEFT
        for row in self.outer.traced_rows(ctx):
            matches = self._lookup(outer_key(row))
            if inner_pred is not None:
                matches = [m for m in matches if inner_pred(m)]
            if semi:
                if matches:
                    produce()
                    yield row
                continue
            if anti:
                if not matches:
                    produce()
                    yield row
                continue
            if matches:
                for match in matches:
                    produce()
                    yield row + match
            elif left_outer:
                produce()
                yield row + self._null_inner
