"""Execution context and operator plumbing.

Operators are physical-plan nodes with a resolved output
:class:`~repro.db.types.Schema` and a ``rows(ctx)`` generator.  They are
pipelined: a row flows parent-ward as a Python tuple ("in registers"),
and only pipeline breakers (sort, hash build, aggregation) materialise
into simulated memory — the temporary data whose L1D stores the paper
highlights (§3.2 "L1D cache store").

The :class:`TempArena` is the query-local workspace (hash tables, sort
buffers, aggregate states).  It is one fixed region reused across
queries — like a real allocator reusing freed memory — so repeated runs
see warm temp addresses.  The :class:`OutputSink` is a small ring buffer
standing in for the tuple output stream; the paper disables result
*display* but the engine still materialises result tuples, and those
stores are real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import PlanError
from repro.db.catalog import Catalog
from repro.db.profiles import EngineProfile
from repro.db.types import Row, Schema
from repro.obs.tracer import NULL_TRACER
from repro.sim.address_space import LINE_SIZE, Region
from repro.sim.machine import Machine


class TempArena:
    """Bump allocator over one reusable region of simulated memory."""

    def __init__(self, machine: Machine, size: int, label: str = "temp"):
        self.machine = machine
        self.region = machine.address_space.alloc(size, label=label)
        self._cursor = self.region.base
        self._extensions: list[Region] = []

    @property
    def bytes_used(self) -> int:
        return self._cursor - self.region.base

    def alloc(self, size: int, label: str = "") -> Region:
        """Carve ``size`` bytes; grows with a fresh (cold) extension
        region when the arena overflows, like a growing heap."""
        aligned = (size + LINE_SIZE - 1) // LINE_SIZE * LINE_SIZE
        if self._cursor + aligned <= self.region.end:
            base = self._cursor
            self._cursor += aligned
            return Region(base=base, size=size, label=label)
        extension = self.machine.address_space.alloc(aligned, label or "temp-ext")
        self._extensions.append(extension)
        return extension

    def reset(self) -> None:
        """Free everything (between queries).  Addresses are reused."""
        self._cursor = self.region.base
        self._extensions.clear()


class OutputSink:
    """Ring buffer receiving result tuples (the output stream)."""

    def __init__(self, machine: Machine, size: int = 64 * 1024):
        self.machine = machine
        self.region = machine.address_space.alloc(size, label="output-sink")
        self._cursor = 0
        self.rows_emitted = 0
        self.bytes_emitted = 0

    def emit(self, row_bytes: int) -> None:
        """Charge the stores for one emitted row of ``row_bytes``."""
        if self._cursor + row_bytes > self.region.size:
            self._cursor = 0
        self.machine.store_bytes(self.region.base + self._cursor, row_bytes)
        self._cursor += (row_bytes + 7) // 8 * 8
        self.rows_emitted += 1
        self.bytes_emitted += row_bytes

    def reset(self) -> None:
        self._cursor = 0
        self.rows_emitted = 0
        self.bytes_emitted = 0


@dataclass
class ExecContext:
    """Everything an operator needs at run time.

    ``state_region`` is the engine's hot internal state — tuple-slot
    descriptors, operator nodes, the interpreter's program — against
    which the per-tuple engine work is charged (see
    :meth:`repro.sim.cpu.Cpu.hot_loads`).  The §4.2 DTCM co-design
    passes a TCM-resident region here ("special variables").
    """

    machine: Machine
    profile: EngineProfile
    catalog: Catalog
    temp: TempArena
    sink: OutputSink
    state_region: Optional[Region] = None
    #: When the co-design places *some* key structures in DTCM (§4.2
    #: puts 4KB of sqlite3VdbeExec()'s state there), the rest of the
    #: engine state stays in DRAM: ``state_tcm_fraction`` of the hot
    #: traffic goes to ``state_region`` and the remainder to
    #: ``state_overflow_region``.
    state_overflow_region: Optional[Region] = None
    state_tcm_fraction: float = 0.65
    cold_region: Optional[Region] = None
    #: Span tracer for per-operator energy attribution.  The no-op
    #: default keeps the pull pipeline exactly as cheap as untraced.
    tracer: object = NULL_TRACER
    #: Sequential block cursor for spill files.
    spill_block: int = 1 << 24
    _state_cursor: int = 0
    _cold_cursor: int = 0

    def _state_addr(self) -> int:
        region = self.state_region
        if region is None:
            raise PlanError("ExecContext has no engine state region")
        # Rotate over a few lines: slot arrays, not a single word.
        self._state_cursor = (self._state_cursor + 1) % max(1, region.n_lines)
        return region.base + self._state_cursor * LINE_SIZE

    def _cold_loads(self, n: int) -> None:
        region = self.cold_region
        if region is None or n <= 0:
            return
        # Coprime stride spreads the probes; load_ring folds all-hit
        # rotations of the ring into bulk accounting in batched mode.
        self._cold_cursor = self.machine.exec.load_ring(
            region.base, self._cold_cursor, 97, n, region.n_lines,
        )

    def _hot_state(self, loads: int, stores: int) -> None:
        machine = self.machine
        addr = self._state_addr()
        overflow = self.state_overflow_region
        if overflow is None:
            machine.hot_loads(addr, loads)
            machine.hot_stores(addr, stores)
            return
        covered_loads = int(loads * self.state_tcm_fraction)
        covered_stores = int(stores * self.state_tcm_fraction)
        machine.hot_loads(addr, covered_loads)
        machine.hot_stores(addr, covered_stores)
        machine.hot_loads(overflow.base, loads - covered_loads)
        machine.hot_stores(overflow.base, stores - covered_stores)

    def row_overhead(self) -> None:
        """Interpreter cost per scanned tuple (engine-flavour specific):
        hot state loads/stores plus unmodelled 'other' instructions."""
        profile = self.profile
        machine = self.machine
        self._cold_loads(profile.cold_loads_per_row)
        self._hot_state(profile.state_loads_per_row,
                        profile.state_stores_per_row)
        machine.other(profile.state_other_per_row + profile.row_overhead_ops)
        machine.branch(profile.state_branch_per_row)
        machine.cmp(profile.state_cmp_per_row)
        machine.add(profile.state_add_per_row)

    def produce_overhead(self) -> None:
        """Interpreter cost per tuple an operator hands upward."""
        profile = self.profile
        machine = self.machine
        self._hot_state(profile.op_loads_per_row, profile.op_stores_per_row)
        machine.other(profile.state_other_per_row // 4
                      + profile.operator_overhead_ops)
        machine.branch(profile.state_branch_per_row // 4)
        machine.cmp(profile.state_cmp_per_row // 4)
        machine.add(profile.state_add_per_row // 4)

    def spill(self, nbytes: int) -> None:
        """Write + re-read ``nbytes`` of spill data (work_mem overflow)."""
        if nbytes <= 0:
            return
        self.machine.disk_write(self.spill_block, nbytes)
        self.machine.disk_read(self.spill_block, nbytes)
        self.spill_block += max(1, nbytes // 4096)


class PhysicalOp:
    """Base class: a resolved output schema plus a row generator."""

    schema: Schema

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        raise NotImplementedError

    def traced_rows(self, ctx: ExecContext) -> Iterator[Row]:
        """The row generator, wrapped in a per-operator span when a
        tracer is active.  Parents pull children through this method so
        every plan node gets its own energy/counter attribution; with
        the default :class:`~repro.obs.tracer.NullTracer` it is a plain
        delegation to :meth:`rows`."""
        tracer = ctx.tracer
        if tracer.enabled:
            return tracer.wrap_rows(self, ctx)
        return self.rows(ctx)

    def children(self) -> tuple["PhysicalOp", ...]:
        return ()

    def explain(self, indent: int = 0) -> str:
        """EXPLAIN-style plan tree rendering."""
        line = "  " * indent + self.describe()
        parts = [line]
        for child in self.children():
            parts.append(child.explain(indent + 1))
        return "\n".join(parts)

    def describe(self) -> str:
        return type(self).__name__


def require_columns(schema: Schema, names) -> None:
    """Raise PlanError early when a plan references unknown columns."""
    for name in names:
        if name not in schema:
            raise PlanError(
                f"column {name!r} not in schema {schema.names()}"
            )
