"""Scan operators: sequential, index-order, and index-range access paths.

These are where the paper's locality contrast lives (§3.2-§3.3):

* :class:`SeqScanOp` reads rows in physical/key order — dense lines,
  stream-prefetcher friendly, L1D-heavy;
* :class:`IndexOrderScanOp` visits rows in the order of a *secondary*
  index — per-row pointer chasing through the tree plus a random page
  or primary-key fetch, weak locality, more stall/mem;
* :class:`IndexRangeScanOp` uses an index to read only the rows in a
  key range (the planner picks it for selective range predicates).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.errors import PlanError
from repro.db.catalog import TableDef
from repro.db.exprs import Expr, columns_used
from repro.db.operators.base import ExecContext, PhysicalOp, require_columns
from repro.db.table import ClusteredTable, HeapTable
from repro.db.types import Row, Schema


def _touched_indexes(schema: Schema, touched: Optional[Sequence[str]],
                     predicate: Optional[Expr]) -> tuple[int, ...]:
    """Column positions whose bytes the scan actually reads."""
    names: set[str] = set()
    if touched is None:
        names.update(schema.names())
    else:
        names.update(touched)
    if predicate is not None:
        names.update(columns_used(predicate))
    require_columns(schema, names)
    return tuple(sorted(schema.index_of(n) for n in names))


class SeqScanOp(PhysicalOp):
    """Full-table scan in storage order, with an optional pushed filter."""

    def __init__(self, table: TableDef, predicate: Optional[Expr] = None,
                 touched: Optional[Sequence[str]] = None):
        self.table = table
        self.predicate = predicate
        self.schema = table.schema
        self._needed = _touched_indexes(table.schema, touched, predicate)

    def children(self) -> tuple[PhysicalOp, ...]:
        return ()

    def describe(self) -> str:
        filt = " filtered" if self.predicate is not None else ""
        return f"SeqScan({self.table.name}{filt})"

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        machine = ctx.machine
        pred = (self.predicate.compile(self.schema, machine)
                if self.predicate is not None else None)
        row_overhead = ctx.row_overhead
        tick = machine.governor_tick
        for row, _ref in self.table.storage.seq_scan(self._needed):
            row_overhead()
            tick()
            if pred is None or pred(row):
                yield row


class IndexOrderScanOp(PhysicalOp):
    """Scan all rows in the order of a secondary index.

    For heap tables: walk the index leaves, fetch each row by rowref
    through the buffer pool (random page access).  For clustered tables:
    walk the secondary index, then chase the primary key down the
    clustered tree per row (InnoDB-style double lookup).
    """

    def __init__(self, table: TableDef, index_column: str,
                 predicate: Optional[Expr] = None,
                 touched: Optional[Sequence[str]] = None):
        self.table = table
        self.index = table.index_on(index_column)
        if self.index is None:
            raise PlanError(
                f"no index on {table.name}.{index_column} for index scan"
            )
        self.predicate = predicate
        self.schema = table.schema
        self._needed = _touched_indexes(table.schema, touched, predicate)

    def describe(self) -> str:
        return f"IndexOrderScan({self.table.name} via {self.index.column})"

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        machine = ctx.machine
        pred = (self.predicate.compile(self.schema, machine)
                if self.predicate is not None else None)
        storage = self.table.storage
        row_overhead = ctx.row_overhead
        tick = machine.governor_tick
        for _key, payload, _addr in self.index.tree.scan_all():
            if isinstance(storage, HeapTable):
                row = storage.fetch_row(payload, self._needed)
            else:
                assert isinstance(storage, ClusteredTable)
                row = storage.key_lookup(payload, self._needed)
            if row is None:
                continue  # stale entry for a deleted row (lazy cleanup)
            row_overhead()
            tick()
            if pred is None or pred(row):
                yield row


class IndexRangeScanOp(PhysicalOp):
    """Rows with ``lo <= column <= hi`` via an index (or the clustered key)."""

    def __init__(self, table: TableDef, column: str, lo, hi,
                 residual: Optional[Expr] = None,
                 touched: Optional[Sequence[str]] = None):
        self.table = table
        self.column = column
        self.lo = lo
        self.hi = hi
        self.residual = residual
        self.schema = table.schema
        self._needed = _touched_indexes(table.schema, touched, residual)
        storage = table.storage
        self._clustered_key = (
            isinstance(storage, ClusteredTable)
            and storage.key_column == table.schema.index_of(column)
        )
        self.index = None if self._clustered_key else table.index_on(column)
        if not self._clustered_key and self.index is None:
            raise PlanError(f"no access path for range on {table.name}.{column}")

    def describe(self) -> str:
        return (
            f"IndexRangeScan({self.table.name}.{self.column} in "
            f"[{self.lo}, {self.hi}])"
        )

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        machine = ctx.machine
        pred = (self.residual.compile(self.schema, machine)
                if self.residual is not None else None)
        storage = self.table.storage
        row_overhead = ctx.row_overhead
        tick = machine.governor_tick
        if self._clustered_key:
            assert isinstance(storage, ClusteredTable)
            source: Iterator[Row] = (
                row for row, _ in storage.key_range(self.lo, self.hi, self._needed)
            )
        else:
            source = self._via_index(storage)
        for row in source:
            row_overhead()
            tick()
            if pred is None or pred(row):
                yield row

    def _via_index(self, storage) -> Iterator[Row]:
        assert self.index is not None
        for _key, payload, _addr in self.index.tree.range_scan(self.lo, self.hi):
            if isinstance(storage, HeapTable):
                row = storage.fetch_row(payload, self._needed)
            else:
                assert isinstance(storage, ClusteredTable)
                row = storage.key_lookup(payload, self._needed)
            if row is None:
                continue  # stale entry for a deleted row (lazy cleanup)
            yield row
