"""Filter, Project, Limit, and Distinct operators (pipelined)."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import PlanError
from repro.db.exprs import Col, Expr
from repro.db.operators.base import ExecContext, PhysicalOp
from repro.seeding import stable_hash
from repro.db.types import Column, FLOAT, Row, Schema


def infer_output_column(name: str, expr: Expr, schema: Schema) -> Column:
    """Output column type: column refs keep their type; computed
    expressions are 8-byte numerics."""
    if isinstance(expr, Col):
        source = schema.column(expr.name)
        return Column(name, source.type, source.width)
    return Column(name, FLOAT)


class FilterOp(PhysicalOp):
    """Row filter on an arbitrary predicate."""

    def __init__(self, child: PhysicalOp, predicate: Expr):
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "Filter"

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        pred = self.predicate.compile(self.child.schema, ctx.machine)
        for row in self.child.traced_rows(ctx):
            if pred(row):
                yield row


class ProjectOp(PhysicalOp):
    """Compute named output expressions per row."""

    def __init__(self, child: PhysicalOp, outputs: Sequence[tuple[str, Expr]]):
        if not outputs:
            raise PlanError("projection needs at least one output")
        self.child = child
        self.outputs = tuple(outputs)
        self.schema = Schema(
            [infer_output_column(name, expr, child.schema)
             for name, expr in outputs]
        )

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project({', '.join(n for n, _ in self.outputs)})"

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        compiled = [expr.compile(self.child.schema, ctx.machine)
                    for _, expr in self.outputs]
        produce = ctx.produce_overhead
        for row in self.child.traced_rows(ctx):
            produce()
            yield tuple(fn(row) for fn in compiled)


class LimitOp(PhysicalOp):
    """Stop after ``n`` rows."""

    def __init__(self, child: PhysicalOp, n: int):
        if n < 0:
            raise PlanError("limit must be non-negative")
        self.child = child
        self.n = n
        self.schema = child.schema

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit({self.n})"

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        if self.n == 0:
            return
        emitted = 0
        for row in self.child.traced_rows(ctx):
            yield row
            emitted += 1
            if emitted >= self.n:
                return


class DistinctOp(PhysicalOp):
    """Hash-based duplicate elimination over whole rows."""

    def __init__(self, child: PhysicalOp):
        self.child = child
        self.schema = child.schema

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "Distinct"

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        machine = ctx.machine
        row_size = self.schema.row_size
        seen: set = set()
        table = ctx.temp.alloc(64 * 1024, label="distinct")
        cursor = 0
        for row in self.child.traced_rows(ctx):
            machine.mul(1)
            machine.add(1)
            machine.load(table.base + (stable_hash(row) % max(1, table.n_lines)) * 64,
                         dependent=True)
            if row in seen:
                continue
            seen.add(row)
            machine.store_bytes(table.base + cursor % table.size, row_size)
            cursor += row_size
            yield row
