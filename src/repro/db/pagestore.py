"""On-"disk" table storage: fixed-width rows packed into pages.

A :class:`PagedFile` is the persistent image of one table: rows are
packed into pages of the engine's configured page size, and each page
has a global block number so the disk model can distinguish sequential
from random access.  The file itself holds the authoritative Python
values; the buffer pool copies pages into simulated-memory frames when
the executor touches them.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import DatabaseError
from repro.db.types import Row, Schema

#: Bytes of page header (LSN, checksum, slot count, free-space pointer).
PAGE_HEADER_BYTES = 64


def compute_page_checksum(rows: Sequence[Row]) -> int:
    """CRC32 of a page's row content — the header-checksum analogue.

    Process-independent (no builtin ``hash``), so two runs of the same
    workload compute identical checksums; the buffer pool compares the
    file's stored checksum against the in-frame copy to detect pages
    corrupted in transit (see :mod:`repro.faults`).
    """
    return zlib.crc32(repr(tuple(rows)).encode("utf-8", "surrogatepass"))


@dataclass(frozen=True)
class PageId:
    """Identifies one page of one table file."""

    file_id: int
    page_no: int


class PagedFile:
    """Rows of one table packed into fixed-size pages.

    Block numbers are allocated globally (via the ``first_block`` offset
    handed out by the catalog) so that sequential scans of one table
    produce sequential block numbers for the disk model.
    """

    def __init__(self, file_id: int, schema: Schema, page_size: int,
                 first_block: int = 0):
        usable = page_size - PAGE_HEADER_BYTES
        if schema.row_size > usable:
            raise DatabaseError(
                f"row size {schema.row_size} exceeds usable page bytes {usable}"
            )
        self.file_id = file_id
        self.schema = schema
        self.page_size = page_size
        self.rows_per_page = usable // schema.row_size
        self.first_block = first_block
        self._pages: list[list[Row]] = []
        self._deleted: set[tuple[int, int]] = set()
        #: Cached per-page checksums (host-side bookkeeping; the buffer
        #: pool charges the simulated cost of verification itself).
        self._checksums: dict[int, int] = {}

    # ------------------------------------------------------------ writing

    def append_rows(self, rows: Iterable[Row]) -> None:
        """Bulk-load rows (the initial data load path)."""
        if self._pages:
            # The tail page may gain rows; its cached checksum is stale.
            self._checksums.pop(len(self._pages) - 1, None)
        width = len(self.schema)
        for row in rows:
            if len(row) != width:
                raise DatabaseError(
                    f"row arity {len(row)} != schema arity {width}"
                )
            if not self._pages or len(self._pages[-1]) >= self.rows_per_page:
                self._pages.append([])
            self._pages[-1].append(tuple(row))

    def append_row(self, row: Row) -> tuple[int, int]:
        """Insert one row; returns its (page_no, slot)."""
        self.append_rows([row])
        return self.locate(self.n_rows - 1)

    def update_row(self, page_no: int, slot: int, row: Row) -> None:
        """Overwrite a live row in place."""
        if len(row) != len(self.schema):
            raise DatabaseError(
                f"row arity {len(row)} != schema arity {len(self.schema)}"
            )
        page = self._pages[page_no] if page_no < len(self._pages) else None
        if page is None or slot >= len(page):
            raise DatabaseError(f"no row at page {page_no} slot {slot}")
        if (page_no, slot) in self._deleted:
            raise DatabaseError(f"row at page {page_no} slot {slot} is deleted")
        page[slot] = tuple(row)
        self._checksums.pop(page_no, None)

    def delete_row(self, page_no: int, slot: int) -> None:
        """Tombstone a row (slots are never reused; rowrefs stay stable)."""
        self.row_at(page_no, slot)  # bounds check
        self._deleted.add((page_no, slot))

    def is_deleted(self, page_no: int, slot: int) -> bool:
        return (page_no, slot) in self._deleted

    @property
    def n_deleted(self) -> int:
        return len(self._deleted)

    @property
    def n_live_rows(self) -> int:
        return self.n_rows - len(self._deleted)

    # ------------------------------------------------------------ reading

    @property
    def n_pages(self) -> int:
        return len(self._pages)

    @property
    def n_rows(self) -> int:
        if not self._pages:
            return 0
        return (len(self._pages) - 1) * self.rows_per_page + len(self._pages[-1])

    def peek_rows(self) -> Iterator[Row]:
        """Charge-free iteration over live rows, for the statistics
        collector (:mod:`repro.db.stats`); execution paths must go
        through the buffer pool instead."""
        for page_no, page in enumerate(self._pages):
            for slot, row in enumerate(page):
                if (page_no, slot) not in self._deleted:
                    yield row

    def page(self, page_no: int) -> Sequence[Row]:
        try:
            return self._pages[page_no]
        except IndexError:
            raise DatabaseError(
                f"page {page_no} out of range (file has {self.n_pages})"
            ) from None

    def block_of(self, page_no: int) -> int:
        return self.first_block + page_no

    def page_checksum(self, page_no: int) -> int:
        """Stored checksum of a page (what the header on disk would say)."""
        checksum = self._checksums.get(page_no)
        if checksum is None:
            checksum = compute_page_checksum(self.page(page_no))
            self._checksums[page_no] = checksum
        return checksum

    def page_ids(self) -> Iterator[PageId]:
        for page_no in range(self.n_pages):
            yield PageId(self.file_id, page_no)

    def locate(self, row_index: int) -> tuple[int, int]:
        """(page_no, slot) of the ``row_index``-th row in load order."""
        if row_index < 0 or row_index >= self.n_rows:
            raise DatabaseError(f"row index {row_index} out of range")
        return divmod(row_index, self.rows_per_page)

    def row_at(self, page_no: int, slot: int) -> Row:
        page = self.page(page_no)
        try:
            return page[slot]
        except IndexError:
            raise DatabaseError(
                f"slot {slot} out of range on page {page_no}"
            ) from None
