"""Buffer pool: LRU page cache between the executor and the disk model.

This is where the Table 4 knobs (``shared_buffers``, ``cache_size``,
``innodb_buffer_pool_size``) act: the pool holds a fixed number of
frames; a page miss costs a disk read (CPU idle) and recycles the
least-recently-used frame.

Frames are simulated-memory regions allocated once and reused, like a
real buffer manager: when a frame is recycled its cache lines are
invalidated (the new page arrives by DMA into DRAM, not into the CPU
caches), so re-reads after recycling behave like cold data.

Every ``fetch`` also models the buffer-manager lookup itself: a hash
probe into the page table (one dependent load + a little bookkeeping),
which is part of the indirection overhead the paper attributes to
PostgreSQL/MySQL-style buffer management (§3.3).
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError, FaultError, PageCorruptionError, \
    TransientDiskError
from repro.db.pagestore import PagedFile, PageId, compute_page_checksum
from repro.db.types import Row
from repro.sim.address_space import LINE_SHIFT, LINE_SIZE, Region
from repro.sim.machine import Machine

logger = logging.getLogger(__name__)


@dataclass
class Frame:
    """One buffer frame: a fixed region currently holding one page."""

    index: int
    region: Region
    page_id: PageId | None = None
    rows: Sequence[Row] = ()


@dataclass(frozen=True)
class PoolStats:
    """An immutable snapshot (or delta) of one pool's counters.

    Interleaved queries share one pool, so zeroing the live counters
    between queries (the old ``reset_stats`` idiom) destroys every other
    in-flight query's attribution.  Instead, callers snapshot at query
    start and diff at query end — each execution context gets its own
    exact per-query delta without touching shared state.
    """

    hits: int = 0
    misses: int = 0
    recycles: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def since(self, earlier: "PoolStats") -> "PoolStats":
        """The counter delta accumulated after ``earlier`` was taken."""
        return PoolStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            recycles=self.recycles - earlier.recycles,
        )


class BufferPool:
    """Fixed-capacity LRU page cache over simulated memory."""

    def __init__(self, machine: Machine, pool_bytes: int, page_size: int,
                 label: str = "bufferpool"):
        if page_size <= 0 or pool_bytes < page_size:
            raise ConfigError(
                f"pool of {pool_bytes} bytes cannot hold a {page_size}B page"
            )
        self.machine = machine
        self.page_size = page_size
        self.n_frames = pool_bytes // page_size
        self.frames = [
            Frame(index=i,
                  region=machine.address_space.alloc(page_size, f"{label}/frame{i}"))
            for i in range(self.n_frames)
        ]
        #: page table: PageId -> frame index, in LRU order (oldest first).
        self._table: OrderedDict[PageId, int] = OrderedDict()
        self._free = list(range(self.n_frames - 1, -1, -1))
        #: metadata region the modelled hash-probe load lands in.
        self._meta = machine.address_space.alloc(
            max(LINE_SIZE, self.n_frames * 16), f"{label}/pagetable"
        )
        self.label = label
        self.hits = 0
        self.misses = 0
        self.recycles = 0
        machine.metrics.add_collector(self._collect_metrics)

    # ------------------------------------------------------------ stats

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def stats(self) -> PoolStats:
        """Snapshot the live counters (see :class:`PoolStats`)."""
        return PoolStats(hits=self.hits, misses=self.misses,
                         recycles=self.recycles)

    def stats_since(self, snapshot: PoolStats) -> PoolStats:
        """Per-query attribution: the delta since ``snapshot``."""
        return self.stats().since(snapshot)

    def reset_stats(self) -> None:
        """Zero the live counters.

        Only safe when no query is in flight: concurrent executions
        attribute hit rates via snapshot/delta (:meth:`stats` /
        :meth:`stats_since`), and zeroing underneath them corrupts every
        open delta.
        """
        self.hits = 0
        self.misses = 0
        self.recycles = 0

    def _collect_metrics(self) -> None:
        """Export pool health into the machine's metrics registry."""
        metrics = self.machine.metrics
        labels = {"pool": self.label}
        metrics.gauge("bufferpool.frames", labels).set(self.n_frames)
        metrics.gauge("bufferpool.resident_pages", labels).set(
            len(self._table)
        )
        metrics.gauge("bufferpool.hits", labels).set(self.hits)
        metrics.gauge("bufferpool.misses", labels).set(self.misses)
        metrics.gauge("bufferpool.recycles", labels).set(self.recycles)
        metrics.gauge("bufferpool.hit_rate", labels).set(self.hit_rate())

    # ------------------------------------------------------------ fetch

    def fetch(self, paged_file: PagedFile, page_no: int) -> Frame:
        """Return the frame holding the page, reading from disk on miss."""
        machine = self.machine
        page_id = PageId(paged_file.file_id, page_no)
        # Model of the buffer-manager hash probe.
        meta_addr = self._meta.base + (hash(page_id) % self._meta.n_lines) * LINE_SIZE
        machine.load(meta_addr, dependent=True)
        machine.other(2)

        frame_index = self._table.get(page_id)
        if frame_index is not None:
            self._table.move_to_end(page_id)
            self.hits += 1
            return self.frames[frame_index]

        self.misses += 1
        with machine.tracer.span("bufferpool.miss", category="io",
                                 pool=self.label, page=str(page_id)):
            if self._free:
                frame_index = self._free.pop()
            else:
                evicted, frame_index = self._table.popitem(last=False)
                self.recycles += 1
                logger.debug("%s: recycling frame %d (page %s -> %s)",
                             self.label, frame_index, evicted, page_id)
            frame = self.frames[frame_index]
            injector = machine.fault_injector
            try:
                if injector is None:
                    machine.disk_read(paged_file.block_of(page_no),
                                      self.page_size)
                else:
                    self._read_with_retries(paged_file, page_no, injector)
                self._invalidate_frame(frame)
                frame.page_id = page_id
                frame.rows = paged_file.page(page_no)
                if injector is not None and injector.plan.page_corrupt_p > 0:
                    self._verify_page(frame, paged_file, page_no, injector)
            except FaultError:
                # The frame holds no valid page; return it to the free
                # list so the pool stays consistent for the next fetch.
                frame.page_id = None
                frame.rows = ()
                self._free.append(frame.index)
                raise
            self._table[page_id] = frame_index
        return frame

    def _read_with_retries(self, paged_file: PagedFile, page_no: int,
                           injector) -> None:
        """Disk read that retries transient errors up to the plan's limit.

        Every failed attempt's device time has already been charged (the
        machine idles through it before re-raising), so retried reads show
        up as wasted joules without any extra bookkeeping here.
        """
        machine = self.machine
        block = paged_file.block_of(page_no)
        retries_left = injector.plan.disk_error_max_retries
        while True:
            try:
                machine.disk_read(block, self.page_size)
                return
            except TransientDiskError:
                if retries_left <= 0:
                    raise
                retries_left -= 1
                machine.metrics.counter(
                    "bufferpool.disk_retries", {"pool": self.label}
                ).inc()

    def _verify_page(self, frame: Frame, paged_file: PagedFile,
                     page_no: int, injector) -> None:
        """Checksum the freshly-read frame; repair corrupt pages by
        re-reading from disk (the repair is charged its real energy).

        Verification walks the page once (loads) plus the arithmetic of
        the checksum itself.  The injector decides whether the in-flight
        copy was corrupted; the stored checksum from the page header is
        the reference either way.
        """
        machine = self.machine
        expected = paged_file.page_checksum(page_no)

        def verify() -> bool:
            machine.load_bytes(frame.region.base, self.page_size)
            machine.other(max(1, self.page_size // LINE_SIZE))
            actual = compute_page_checksum(frame.rows)
            return actual == expected and not injector.page_corrupt()

        if verify():
            return
        # Each repair re-read *and* its re-verification are wasted work:
        # both live inside the wasted="page_repair" span so the energy
        # split charges the full cost of corruption to the fault.
        for _ in range(injector.plan.page_repair_max):
            with machine.tracer.span("bufferpool.repair", category="fault",
                                     fault="page.corrupt",
                                     wasted="page_repair",
                                     page=str(frame.page_id)):
                self._read_with_retries(paged_file, page_no, injector)
                self._invalidate_frame(frame)
                frame.rows = paged_file.page(page_no)
                if verify():
                    return
        raise PageCorruptionError(
            f"page {frame.page_id} failed checksum after "
            f"{injector.plan.page_repair_max} repair re-reads"
        )

    def contains(self, paged_file: PagedFile, page_no: int) -> bool:
        return PageId(paged_file.file_id, page_no) in self._table

    def clear(self) -> None:
        """Drop every cached page (cold restart)."""
        for frame in self.frames:
            frame.page_id = None
            frame.rows = ()
        self._table.clear()
        self._free = list(range(self.n_frames - 1, -1, -1))

    def _invalidate_frame(self, frame: Frame) -> None:
        """DMA overwrote the frame: its lines must not hit in any cache."""
        hierarchy = self.machine.hierarchy
        hierarchy.mut_epoch += 1
        first_line = frame.region.base >> LINE_SHIFT
        for line in range(first_line, first_line + frame.region.n_lines):
            hierarchy.l1d.invalidate(line)
            if hierarchy.l2 is not None:
                hierarchy.l2.invalidate(line)
            if hierarchy.l3 is not None:
                hierarchy.l3.invalidate(line)
