"""Buffer pool: LRU page cache between the executor and the disk model.

This is where the Table 4 knobs (``shared_buffers``, ``cache_size``,
``innodb_buffer_pool_size``) act: the pool holds a fixed number of
frames; a page miss costs a disk read (CPU idle) and recycles the
least-recently-used frame.

Frames are simulated-memory regions allocated once and reused, like a
real buffer manager: when a frame is recycled its cache lines are
invalidated (the new page arrives by DMA into DRAM, not into the CPU
caches), so re-reads after recycling behave like cold data.

Every ``fetch`` also models the buffer-manager lookup itself: a hash
probe into the page table (one dependent load + a little bookkeeping),
which is part of the indirection overhead the paper attributes to
PostgreSQL/MySQL-style buffer management (§3.3).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.db.pagestore import PagedFile, PageId
from repro.db.types import Row
from repro.sim.address_space import LINE_SHIFT, LINE_SIZE, Region
from repro.sim.machine import Machine


@dataclass
class Frame:
    """One buffer frame: a fixed region currently holding one page."""

    index: int
    region: Region
    page_id: PageId | None = None
    rows: Sequence[Row] = ()


class BufferPool:
    """Fixed-capacity LRU page cache over simulated memory."""

    def __init__(self, machine: Machine, pool_bytes: int, page_size: int,
                 label: str = "bufferpool"):
        if page_size <= 0 or pool_bytes < page_size:
            raise ConfigError(
                f"pool of {pool_bytes} bytes cannot hold a {page_size}B page"
            )
        self.machine = machine
        self.page_size = page_size
        self.n_frames = pool_bytes // page_size
        self.frames = [
            Frame(index=i,
                  region=machine.address_space.alloc(page_size, f"{label}/frame{i}"))
            for i in range(self.n_frames)
        ]
        #: page table: PageId -> frame index, in LRU order (oldest first).
        self._table: OrderedDict[PageId, int] = OrderedDict()
        self._free = list(range(self.n_frames - 1, -1, -1))
        #: metadata region the modelled hash-probe load lands in.
        self._meta = machine.address_space.alloc(
            max(LINE_SIZE, self.n_frames * 16), f"{label}/pagetable"
        )
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------ stats

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------ fetch

    def fetch(self, paged_file: PagedFile, page_no: int) -> Frame:
        """Return the frame holding the page, reading from disk on miss."""
        machine = self.machine
        page_id = PageId(paged_file.file_id, page_no)
        # Model of the buffer-manager hash probe.
        meta_addr = self._meta.base + (hash(page_id) % self._meta.n_lines) * LINE_SIZE
        machine.load(meta_addr, dependent=True)
        machine.other(2)

        frame_index = self._table.get(page_id)
        if frame_index is not None:
            self._table.move_to_end(page_id)
            self.hits += 1
            return self.frames[frame_index]

        self.misses += 1
        if self._free:
            frame_index = self._free.pop()
        else:
            _, frame_index = self._table.popitem(last=False)
        frame = self.frames[frame_index]
        machine.disk_read(paged_file.block_of(page_no), self.page_size)
        self._invalidate_frame(frame)
        frame.page_id = page_id
        frame.rows = paged_file.page(page_no)
        self._table[page_id] = frame_index
        return frame

    def contains(self, paged_file: PagedFile, page_no: int) -> bool:
        return PageId(paged_file.file_id, page_no) in self._table

    def clear(self) -> None:
        """Drop every cached page (cold restart)."""
        for frame in self.frames:
            frame.page_id = None
            frame.rows = ()
        self._table.clear()
        self._free = list(range(self.n_frames - 1, -1, -1))

    def _invalidate_frame(self, frame: Frame) -> None:
        """DMA overwrote the frame: its lines must not hit in any cache."""
        hierarchy = self.machine.hierarchy
        first_line = frame.region.base >> LINE_SHIFT
        for line in range(first_line, first_line + frame.region.n_lines):
            hierarchy.l1d.invalidate(line)
            if hierarchy.l2 is not None:
                hierarchy.l2.invalidate(line)
            if hierarchy.l3 is not None:
                hierarchy.l3.invalidate(line)
