"""Deterministic seed derivation for every stochastic component.

One root seed (the CLI's ``--seed``) must make an entire run
bit-reproducible: measurement noise, TPC-H data generation, YCSB key
choices, and the serving layer's arrival processes.  Components must
never share one ``random.Random`` (an extra draw in one place would
shift every later draw in another) and must never fall back to the
module-level global RNG (which is process-seeded and therefore
unreproducible).

:func:`derive_seed` maps ``(root_seed, component path)`` to an
independent 64-bit stream seed via SHA-256, so adding a component never
perturbs the streams of existing ones.  :func:`require_seed` is the
loud failure the reproducibility contract demands: a component that
would otherwise draw from an unseeded RNG raises ``ConfigError``
instead of silently being nondeterministic.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from typing import Optional

from repro.errors import ConfigError

#: FNV-1a 32-bit parameters, used to fold tuple elements together.
_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193


def stable_hash(value) -> int:
    """Process-independent replacement for builtin ``hash``.

    The executor derives *simulated* bucket and slot addresses from row
    values; builtin ``hash`` randomises str/bytes per process
    (``PYTHONHASHSEED``), which would make two identical CLI runs place
    hash-table entries at different simulated addresses and measure
    slightly different cache behaviour.  This hash is cheap (crc32 for
    strings, FNV fold for tuples) and identical in every process.
    Numeric hashing is delegated to builtin ``hash`` — it is not
    randomised and keeps ``1 == 1.0`` hashing equal.
    """
    if isinstance(value, tuple):
        folded = _FNV_OFFSET
        for item in value:
            folded = ((folded ^ (stable_hash(item) & 0xFFFFFFFF))
                      * _FNV_PRIME) & 0xFFFFFFFF
        return folded
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8", "surrogatepass"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if value is None:
        return 0x9E3779B9  # hash(None) is id-based before Python 3.12
    return hash(value)


def derive_seed(root_seed: int, *path: str) -> int:
    """A stable 64-bit seed for the component named by ``path``.

    The same ``(root_seed, path)`` always yields the same seed; distinct
    paths yield statistically independent seeds even for adjacent root
    seeds (SHA-256 keys the stream, not arithmetic on the root).
    """
    if root_seed is None:
        raise ConfigError("derive_seed needs an explicit root seed")
    if not path:
        raise ConfigError("derive_seed needs a component path")
    material = f"{int(root_seed)}::" + "/".join(path)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def require_seed(seed: Optional[int], component: str) -> int:
    """Fail loudly when a stochastic component was not given a seed."""
    if seed is None:
        raise ConfigError(
            f"{component} draws random numbers but was given no seed; "
            "pass an explicit seed (reproducibility contract)"
        )
    return int(seed)


def seeded_rng(seed: Optional[int], component: str) -> random.Random:
    """A private ``random.Random`` for one component; refuses ``None``."""
    return random.Random(require_seed(seed, component))
