"""Scheduling policies and DVFS serving modes.

A policy answers one question: *given the dispatchable queue, which
request runs next?*  All policies are deterministic — ties break on
arrival order — so a serve run is a pure function of its seed.

* :class:`FifoPolicy` — arrival order.  The baseline.
* :class:`SjfPolicy` — smallest planner cost estimate first
  (shortest-job-first); minimises mean latency under load.
* :class:`LocalityPolicy` — energy-aware locality batching: prefer
  requests touching the tables that are currently *hot* (the tables of
  the requests just dispatched).  Same-table queries back-to-back reuse
  buffer-pool frames and the CPU lines under them; alternating tables
  recycles frames, and every recycled frame's lines are invalidated
  (the DMA model), so the re-read pays L2/L3/DRAM energy.  A starvation
  guard caps how many times the head waiter can be bypassed.

DVFS serving modes (:func:`apply_dvfs`) set the machine's frequency
strategy for the whole run: ``race`` pins the top P-state and sprints
to idle, ``pace`` pins a middle P-state, ``eist`` enables the demand
governor.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import ConfigError
from repro.serve.request import Request
from repro.sim.dvfs import EistGovernor
from repro.sim.machine import Machine

POLICIES = ("fifo", "sjf", "locality")
DVFS_MODES = ("race", "pace", "eist")

#: How many dispatches may bypass the head-of-queue waiter before the
#: locality policy is forced to serve it (starvation guard).
DEFAULT_MAX_BYPASS = 8


class SchedulingPolicy:
    """Pick the next request to dispatch from the queue."""

    name = "base"

    def select(self, queue: "Iterable[Request]",
               hot_tables: frozenset[str]) -> Optional[Request]:
        """``queue`` is the admission deque: indexable at ``[0]`` and
        iterable in arrival order."""
        raise NotImplementedError


class FifoPolicy(SchedulingPolicy):
    """Arrival order, no reordering."""

    name = "fifo"

    def select(self, queue, hot_tables):
        return queue[0] if queue else None


class SjfPolicy(SchedulingPolicy):
    """Shortest job first, keyed on the planner's cost estimate."""

    name = "sjf"

    def select(self, queue, hot_tables):
        if not queue:
            return None
        return min(queue, key=lambda r: (r.job.cost, r.arrival_s,
                                         r.request_id))


class LocalityPolicy(SchedulingPolicy):
    """Batch same-table requests to keep the buffer pool hot."""

    name = "locality"

    def __init__(self, max_bypass: int = DEFAULT_MAX_BYPASS):
        if max_bypass < 0:
            raise ConfigError(f"max_bypass must be >= 0, got {max_bypass}")
        self.max_bypass = max_bypass
        self._head_bypassed = 0

    def select(self, queue, hot_tables):
        if not queue:
            return None
        head = queue[0]
        if self._head_bypassed >= self.max_bypass:
            self._head_bypassed = 0
            return head
        best = None
        best_overlap = 0
        for request in queue:
            overlap = len(hot_tables.intersection(request.job.tables))
            if overlap > best_overlap:
                best, best_overlap = request, overlap
        if best is None or best is head:
            self._head_bypassed = 0
            return head
        self._head_bypassed += 1
        return best


def make_policy(name: str) -> SchedulingPolicy:
    if name == "fifo":
        return FifoPolicy()
    if name == "sjf":
        return SjfPolicy()
    if name == "locality":
        return LocalityPolicy()
    raise ConfigError(f"unknown policy {name!r}; known: {POLICIES}")


def apply_dvfs(machine: Machine, mode: str, injector=None) -> None:
    """Configure the machine's frequency strategy for a serve run.

    ``injector`` (a :class:`~repro.faults.FaultInjector`, chaos runs
    only) lets the ``eist`` governor suffer stuck-DVFS episodes; the
    pinned modes have no governor to get stuck.
    """
    table = machine.config.pstates
    if mode == "race":
        machine.disable_eist()
        machine.set_pstate(table.highest)
    elif mode == "pace":
        machine.disable_eist()
        states = list(table.states())
        machine.set_pstate(states[len(states) // 2])
    elif mode == "eist":
        machine.enable_eist(EistGovernor(table=table, injector=injector))
    else:
        raise ConfigError(f"unknown dvfs mode {mode!r}; known: {DVFS_MODES}")
