"""``repro.serve`` — energy-aware concurrent query serving.

The serving layer runs many client sessions against one
:class:`~repro.db.engine.Database` on one simulated
:class:`~repro.sim.machine.Machine`, in simulated time:

* workload **drivers** (open-loop Poisson, closed-loop think-time
  clients) issue queries from a :mod:`mix <repro.serve.workload>`;
* **admission control** bounds the queue, enforces per-tenant quotas,
  and sheds timed-out waiters;
* a pluggable **scheduling policy** (FIFO / SJF / energy-aware
  locality batching) picks what runs next, under a **DVFS serving
  mode** (race-to-idle / pace / EIST);
* a :class:`~repro.sim.cores.CoreSet` time-slices query plans across N
  virtual cores, charging context switches as micro-ops;
* a span tracer attributes every joule of the run to a tenant (or to
  the untagged system remainder), exactly.

:func:`run_serve` is the one-call entry point the CLI and the
benchmarks use.
"""

from __future__ import annotations

from repro import Machine, intel_i7_4790
from repro.db import Database, engine_profile
from repro.faults import FAULT_SITES, FaultInjector, FaultPlan
from repro.micro.measurement import measure_background
from repro.obs import Tracer
from repro.obs.sampler import NullTelemetry, SamplingAggregator
from repro.obs.timeline import TimelineRecorder, write_timeline
from repro.seeding import derive_seed, require_seed
from repro.serve.admission import AdmissionController
from repro.serve.drivers import (
    DRIVER_MODES,
    ClosedLoopDriver,
    Driver,
    OpenLoopDriver,
    make_driver,
)
from repro.serve.loop import QueryServer, ServeConfig
from repro.serve.policies import (
    DVFS_MODES,
    POLICIES,
    FifoPolicy,
    LocalityPolicy,
    SchedulingPolicy,
    SjfPolicy,
    apply_dvfs,
    make_policy,
)
from repro.serve.report import (
    build_report,
    energy_split,
    latency_summary,
    percentile,
    render_serve_summary,
)
from repro.serve.request import JobTemplate, Request
from repro.serve.resilience import CircuitBreaker, RetryManager
from repro.serve.workload import MIXES, QueryMix, build_mix
from repro.sim.cores import ContextSwitchCost, Core, CoreSet
from repro.workloads.tpch import TpchData, load_into

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "ClosedLoopDriver",
    "ContextSwitchCost",
    "Core",
    "CoreSet",
    "DRIVER_MODES",
    "DVFS_MODES",
    "Driver",
    "FAULT_SITES",
    "FaultInjector",
    "FaultPlan",
    "FifoPolicy",
    "JobTemplate",
    "LocalityPolicy",
    "MIXES",
    "OpenLoopDriver",
    "POLICIES",
    "QueryMix",
    "QueryServer",
    "Request",
    "RetryManager",
    "SchedulingPolicy",
    "ServeConfig",
    "SjfPolicy",
    "apply_dvfs",
    "build_mix",
    "build_report",
    "energy_split",
    "latency_summary",
    "make_driver",
    "make_policy",
    "percentile",
    "render_serve_summary",
    "run_serve",
]


def run_serve(config: ServeConfig) -> dict:
    """Run one complete serve simulation and return its JSON report.

    Builds the machine, loads the data, measures background power,
    runs the event loop under a span tracer, and assembles the report.
    Fully deterministic: the same config (seed included) produces the
    same report, byte for byte once serialised with sorted keys.
    """
    config.validate()
    seed = require_seed(config.seed, "serve")
    machine = Machine(
        intel_i7_4790(scale=config.scale),
        seed=derive_seed(seed, "serve", "machine-noise"),
        exec_mode=config.exec_mode,
    )
    injector = None
    if config.faults is not None and config.faults.any_enabled:
        injector = FaultInjector(
            config.faults,
            seed=derive_seed(seed, "faults"),
            metrics=machine.metrics,
        )
    apply_dvfs(machine, config.dvfs, injector=injector)
    db = Database(machine, engine_profile(config.engine, config.setting),
                  name=config.engine)
    if config.workload not in ("kv", "points"):
        # kv runs against its own LSM store; points is pure micro-ops.
        load_into(db, TpchData(
            config.tier,
            seed=derive_seed(seed, "serve", "tpch-datagen"),
        ))
    mix = build_mix(config.workload, db, config.clients, seed)
    driver = make_driver(
        config.mode, mix,
        n_clients=config.clients,
        n_queries=config.queries,
        seed=seed,
        tenants=config.tenants,
        rate_qps=config.rate_qps,
        think_s=config.think_s,
    )
    background = measure_background(machine)
    core_set = CoreSet(machine, config.cores)
    if injector is not None:
        # Arm the fault sites only now, after the data load and the
        # background measurement: faults hit the serving window, not
        # setup, so a chaos run's baseline matches the plain run's.
        machine.fault_injector = injector
        machine.disk.injector = injector
        core_set.injector = injector
    admission = AdmissionController(
        machine.metrics,
        max_queue=config.max_queue,
        tenant_quota=config.tenant_quota,
        queue_timeout_s=config.queue_timeout_s,
    )
    policy = make_policy(config.policy)
    retry = None
    if config.retries > 0:
        retry = RetryManager(
            seed,
            max_retries=config.retries,
            backoff_s=config.retry_backoff_s,
            jitter=config.retry_jitter,
            budget=config.retry_budget,
            metrics=machine.metrics,
        )
    breaker = None
    if config.breaker_threshold is not None:
        breaker = CircuitBreaker(
            config.breaker_threshold,
            window=config.breaker_window,
            cooloff_s=config.breaker_cooloff_s,
            metrics=machine.metrics,
        )
    server = QueryServer(db, core_set, admission, policy, driver,
                         mpl=config.mpl, quantum_rows=config.quantum_rows,
                         injector=injector, retry=retry, breaker=breaker,
                         deadline_s=config.deadline_s,
                         degrade_keep_tenants=config.degrade_keep_tenants)
    timeline = None
    if config.timeline_out is not None:
        timeline = TimelineRecorder(
            machine,
            window_s=config.timeline_window_s,
            background=background,
        )
    if config.telemetry == "sampler":
        tracer = SamplingAggregator(
            machine,
            background=background,
            seed=derive_seed(seed, "obs", "exemplars"),
            exemplar_rate=config.exemplar_rate,
            reservoir_size=config.reservoir_size,
            timeline=timeline,
            name="serve",
        )
    elif config.telemetry == "off":
        tracer = NullTelemetry(machine, background=background)
    else:
        tracer = Tracer(machine, background=background, name="serve")
    if timeline is not None:
        timeline.start()
    server.timeline = timeline
    with tracer:
        server.run()
    if timeline is not None:
        write_timeline(timeline.finish(), config.timeline_out,
                       config.timeline_window_s)
    return build_report(config, server, tracer.finish(), injector=injector)
