"""Serve-run accounting: latency percentiles, energy, and the report.

The report is a plain JSON-serialisable dict.  Two properties matter:

* **Determinism** — every value is a pure function of the run, so two
  runs with the same config and seed produce byte-identical JSON.
* **Exact attribution** — per-tenant Active energy comes from the span
  tree's partition (see
  :meth:`~repro.obs.span.Trace.active_energy_by_meta`), so the tenant
  shares plus the untagged system share sum to the run's measured
  Active energy to float precision.  ``energy.check_sum_j`` carries the
  recomputed sum so consumers can verify without re-walking spans.

Percentiles use the nearest-rank definition (no interpolation): the
p-th percentile of n sorted samples is the ``ceil(p/100 * n)``-th.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.obs.span import Trace
from repro.serve.loop import QueryServer, ServeConfig
from repro.serve.request import (
    COMPLETED,
    DEADLINE_EXCEEDED,
    FAILED,
    REJECTED_QUEUE,
    REJECTED_QUOTA,
    SHED_DEGRADED,
    SHED_TIMEOUT,
    Request,
)

PERCENTILES = (50, 95, 99)

#: Version stamp on every serve report; ``repro diff`` refuses to
#: compare reports with different stamps.
SERVE_SCHEMA_VERSION = 1

#: Span-meta keys the wasted-energy partition groups by.
WASTE_KEYS = ("request", "attempt", "wasted")


def percentile(samples: Sequence[float], p: float) -> Optional[float]:
    """Nearest-rank percentile; None on an empty sample set."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def latency_summary(latencies: Sequence[float]) -> dict:
    out: dict = {"n": len(latencies)}
    out["mean_s"] = (sum(latencies) / len(latencies)) if latencies else None
    for p in PERCENTILES:
        out[f"p{p}_s"] = percentile(latencies, p)
    return out


def _state_counts(requests: Sequence[Request],
                  resilient: bool = False) -> dict:
    counts = {
        "issued": len(requests),
        "completed": 0,
        "rejected_queue": 0,
        "rejected_quota": 0,
        "shed_timeout": 0,
    }
    if resilient:
        # Extra keys only in resilient runs, so a plain run's report is
        # byte-identical to the pre-resilience server's.
        counts["failed"] = 0
        counts["deadline_exceeded"] = 0
        counts["shed_degraded"] = 0
    for request in requests:
        if request.state == COMPLETED:
            counts["completed"] += 1
        elif request.state == REJECTED_QUEUE:
            counts["rejected_queue"] += 1
        elif request.state == REJECTED_QUOTA:
            counts["rejected_quota"] += 1
        elif request.state == SHED_TIMEOUT:
            counts["shed_timeout"] += 1
        elif resilient and request.state == FAILED:
            counts["failed"] += 1
        elif resilient and request.state == DEADLINE_EXCEEDED:
            counts["deadline_exceeded"] += 1
        elif resilient and request.state == SHED_DEGRADED:
            counts["shed_degraded"] += 1
    return counts


def energy_split(trace: Trace, requests: Sequence[Request]) -> dict:
    """Split the run's Active energy into useful vs wasted joules.

    Built on the exact multi-key span partition
    (:meth:`~repro.obs.span.Trace.active_energy_by_metas`), so
    ``useful_j + wasted_j`` equals the partition total *exactly* (it is
    the same float sum, split two ways).  Classification:

    * a request that ended FAILED or DEADLINE_EXCEEDED (or was rejected
      or shed after burning attempts): every joule it touched is wasted
      (reason = its terminal state);
    * a request that COMPLETED at attempt N: attempts before N are
      wasted (reason ``retried``); within the final attempt, spans
      tagged ``wasted`` (fault handling: transient-read idle, page
      repair, injected stalls) are wasted under that tag;
    * untagged energy (idle gaps, scheduler work, data load if traced)
      is useful — it is the cost of running the service, not of faults.
    """
    groups = trace.active_energy_by_metas(WASTE_KEYS)
    state_of = {r.request_id: r.state for r in requests}
    final_attempt = {r.request_id: r.failures + 1 for r in requests}

    def order(key: tuple) -> tuple:
        return tuple((v is None, str(v)) for v in key)

    useful_j = 0.0
    wasted_j = 0.0
    by_reason: dict = {}
    for key in sorted(groups, key=order):
        req, attempt, tag = key
        joules = groups[key]
        reason = None
        if req is not None:
            state = state_of.get(req)
            if state != COMPLETED:
                reason = state or "unknown"
            elif attempt is not None and attempt < final_attempt[req]:
                reason = "retried"
            elif tag is not None:
                reason = tag
        elif tag is not None:
            reason = tag
        if reason is None:
            useful_j += joules
        else:
            wasted_j += joules
            by_reason[reason] = by_reason.get(reason, 0.0) + joules
    return {
        "useful_j": useful_j,
        "wasted_j": wasted_j,
        "by_reason_j": dict(sorted(by_reason.items())),
    }


def build_report(config: ServeConfig, server: QueryServer,
                 trace: Trace, injector=None) -> dict:
    """Assemble the serve run's JSON report."""
    requests = server.requests
    machine = server.machine
    resilient = config.resilient
    completed = [r for r in requests if r.state == COMPLETED]
    latencies = [r.latency_s for r in completed]

    by_meta = trace.active_energy_by_meta("tenant")
    system_j = by_meta.pop(None, 0.0)
    tenant_j = dict(sorted(by_meta.items()))
    total_active_j = trace.total_active_j
    n_completed = len(completed)
    energy_per_query_j = (total_active_j / n_completed
                          if n_completed else None)
    mean_latency = (sum(latencies) / len(latencies)) if latencies else None
    edp = (energy_per_query_j * mean_latency
           if energy_per_query_j is not None and mean_latency is not None
           else None)

    tenants: dict = {}
    # Single-pass bucketing: one scan of the request list, not one per
    # tenant (the per-tenant filter was O(requests x tenants), minutes
    # at a million requests over a thousand tenants).  Bucket order
    # preserves request order, so per-tenant sums are the same floats.
    by_tenant: dict = {}
    for r in requests:
        by_tenant.setdefault(r.tenant, []).append(r)
    tenant_names = sorted(by_tenant.keys() | set(tenant_j))
    for tenant in tenant_names:
        t_requests = by_tenant.get(tenant, [])
        t_completed = [r for r in t_requests if r.state == COMPLETED]
        t_latencies = [r.latency_s for r in t_completed]
        active_j = tenant_j.get(tenant, 0.0)
        tenants[tenant] = {
            "counts": _state_counts(t_requests, resilient),
            "latency_s": latency_summary(t_latencies),
            "active_j": active_j,
            "energy_per_query_j": (active_j / len(t_completed)
                                   if t_completed else None),
            "rows": sum(r.rows for r in t_completed),
        }

    by_request = trace.active_energy_by_meta("request")
    by_request.pop(None, None)
    request_joules = [by_request[k] for k in sorted(by_request)]
    request_energy = {
        "n": len(request_joules),
        "mean_j": (sum(request_joules) / len(request_joules)
                   if request_joules else None),
    }
    for p in PERCENTILES:
        request_energy[f"p{p}_j"] = percentile(request_joules, p)

    snapshot = machine.metrics.snapshot()
    serve_counters = {
        name: value for name, value in sorted(snapshot.items())
        if name.startswith(("serve.", "cores.", "faults."))
        and isinstance(value, (int, float))
    }

    report = {
        "schema_version": SERVE_SCHEMA_VERSION,
        "config": {
            "workload": config.workload,
            "policy": config.policy,
            "dvfs": config.dvfs,
            "mode": config.mode,
            "clients": config.clients,
            "queries": config.queries,
            "tenants": config.tenants,
            "cores": config.cores,
            "mpl": config.mpl,
            "quantum_rows": config.quantum_rows,
            "max_queue": config.max_queue,
            "tenant_quota": config.tenant_quota,
            "queue_timeout_s": config.queue_timeout_s,
            "rate_qps": config.rate_qps,
            "think_s": config.think_s,
            "seed": config.seed,
            "engine": config.engine,
            "setting": config.setting,
            "tier": config.tier,
            "scale": config.scale,
            "exec_mode": config.exec_mode,
        },
        "counts": _state_counts(requests, resilient),
        "latency_s": latency_summary(latencies),
        "tenants": tenants,
        "energy": {
            "domain": trace.domain,
            "total_active_j": total_active_j,
            "system_active_j": system_j,
            "tenant_active_j": tenant_j,
            "check_sum_j": system_j + sum(tenant_j.values()),
            "energy_per_query_j": energy_per_query_j,
            "edp_js": edp,
            "request_energy_j": request_energy,
        },
        "clock": {
            "wall_s": machine.time_s,
            "busy_s": machine.busy_s,
            "idle_s": machine.idle_s,
            "context_switches": server.core_set.context_switches,
            "quanta": server.quanta,
        },
        "counters": serve_counters,
    }
    if resilient:
        report["config"].update({
            "faults": (config.faults.as_dict()
                       if config.faults is not None else None),
            "retries": config.retries,
            "retry_backoff_s": config.retry_backoff_s,
            "retry_jitter": config.retry_jitter,
            "retry_budget": config.retry_budget,
            "deadline_s": config.deadline_s,
            "breaker_threshold": config.breaker_threshold,
            "breaker_window": config.breaker_window,
            "breaker_cooloff_s": config.breaker_cooloff_s,
            "degrade_keep_tenants": config.degrade_keep_tenants,
        })
        split = energy_split(trace, requests)
        report["energy"].update({
            "useful_energy_j": split["useful_j"],
            "wasted_energy_j": split["wasted_j"],
            # The exact identity the chaos suite asserts: useful plus
            # wasted IS the active total, by construction.
            "active_energy_j": split["useful_j"] + split["wasted_j"],
            "wasted_by_reason_j": split["by_reason_j"],
        })
        disk_retries = sum(
            value for name, value in snapshot.items()
            if name.startswith("bufferpool.disk_retries")
            and isinstance(value, (int, float))
        )
        report["resilience"] = {
            "faults_injected": (injector.counts()
                                if injector is not None else {}),
            "retries_spent": (server.retry.spent
                              if server.retry is not None else 0),
            "breaker_trips": (server.breaker.trips
                              if server.breaker is not None else 0),
            "core_stalls": server.core_set.stalls,
            "disk_fault_errors": machine.disk.fault_errors,
            "disk_fault_slowdowns": machine.disk.fault_slowdowns,
            "disk_read_retries": disk_retries,
        }
    if config.telemetric:
        report["config"].update({
            "telemetry": config.telemetry,
            "exemplar_rate": config.exemplar_rate,
            "reservoir_size": config.reservoir_size,
            "timeline_out": config.timeline_out,
            "timeline_window_s": config.timeline_window_s,
        })
        section: dict = {"mode": config.telemetry}
        if config.telemetry == "sampler" and hasattr(trace, "group_table"):
            # Sampler mode: the summary carries the streaming aggregates.
            section["groups"] = trace.group_table()
            section["exemplars"] = {
                "rate": trace.exemplar_rate,
                "reservoir_size": config.reservoir_size,
                "offered": trace.exemplars_offered,
                "kept": len(trace.exemplars),
                "sample": [e.as_dict() for e in trace.exemplars[:5]],
            }
        report["telemetry"] = section
    return report


def render_serve_summary(report: dict, elapsed_s: float | None = None) -> str:
    """Human-readable one-screen summary of a serve report.

    The CLI prints this next to the JSON report; it surfaces what an
    operator looks at first — completion counts, latency percentiles,
    and joules per request.  ``elapsed_s`` is the *host* wall time of
    the run (measured by the caller, never stored in the report — the
    JSON stays a pure function of the config); when given, the summary
    adds an engine/throughput line with requests/s and quanta/s.
    """
    cfg = report["config"]
    counts = report["counts"]
    latency = report["latency_s"]
    energy = report["energy"]
    clock = report["clock"]
    lines = [
        f"serve: workload={cfg['workload']} queries={cfg['queries']} "
        f"clients={cfg['clients']} policy={cfg['policy']} "
        f"dvfs={cfg['dvfs']} seed={cfg['seed']}",
        "counts: " + "  ".join(
            f"{key}={value}" for key, value in counts.items()
        ),
    ]
    if elapsed_s is not None and elapsed_s > 0:
        lines.append(
            f"engine: mode={cfg['exec_mode']}  "
            f"host={elapsed_s:.3f} s  "
            f"requests/s={counts['issued'] / elapsed_s:.1f}  "
            f"quanta/s={clock['quanta'] / elapsed_s:.1f}"
        )

    def fmt(value, unit: str, precision: str = ".4g") -> str:
        return "n/a" if value is None else f"{value:{precision}} {unit}"

    lines.append(
        f"latency: p50={fmt(latency['p50_s'], 's')}  "
        f"p95={fmt(latency['p95_s'], 's')}  "
        f"p99={fmt(latency['p99_s'], 's')}  "
        f"mean={fmt(latency['mean_s'], 's')}"
    )
    request_energy = energy["request_energy_j"]
    lines.append(
        f"energy/request: p50={fmt(request_energy['p50_j'], 'J')}  "
        f"p95={fmt(request_energy['p95_j'], 'J')}  "
        f"p99={fmt(request_energy['p99_j'], 'J')}  "
        f"mean={fmt(request_energy['mean_j'], 'J')}"
    )
    lines.append(
        f"energy: active={energy['total_active_j']:.4g} J "
        f"({energy['domain']})  "
        f"per-query={fmt(energy['energy_per_query_j'], 'J')}  "
        f"wall={clock['wall_s']:.4g} s"
    )
    if "useful_energy_j" in energy:
        reasons = ", ".join(
            f"{reason}={joules:.3g} J" for reason, joules in
            list(energy["wasted_by_reason_j"].items())[:4]
        ) or "none"
        lines.append(
            f"waste: useful={energy['useful_energy_j']:.4g} J  "
            f"wasted={energy['wasted_energy_j']:.4g} J  "
            f"reasons: {reasons}"
        )
    telemetry = report.get("telemetry")
    if telemetry is not None and "exemplars" in telemetry:
        exemplars = telemetry["exemplars"]
        lines.append(
            f"telemetry: mode={telemetry['mode']}  "
            f"groups={len(telemetry.get('groups', {}))}  "
            f"exemplars={exemplars['kept']}/{exemplars['offered']} "
            f"(rate {exemplars['rate']:g})"
        )
    elif telemetry is not None:
        lines.append(f"telemetry: mode={telemetry['mode']}")
    return "\n".join(lines)
