"""Serve-run accounting: latency percentiles, energy, and the report.

The report is a plain JSON-serialisable dict.  Two properties matter:

* **Determinism** — every value is a pure function of the run, so two
  runs with the same config and seed produce byte-identical JSON.
* **Exact attribution** — per-tenant Active energy comes from the span
  tree's partition (see
  :meth:`~repro.obs.span.Trace.active_energy_by_meta`), so the tenant
  shares plus the untagged system share sum to the run's measured
  Active energy to float precision.  ``energy.check_sum_j`` carries the
  recomputed sum so consumers can verify without re-walking spans.

Percentiles use the nearest-rank definition (no interpolation): the
p-th percentile of n sorted samples is the ``ceil(p/100 * n)``-th.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.obs.span import Trace
from repro.serve.loop import QueryServer, ServeConfig
from repro.serve.request import (
    COMPLETED,
    REJECTED_QUEUE,
    REJECTED_QUOTA,
    SHED_TIMEOUT,
    Request,
)

PERCENTILES = (50, 95, 99)


def percentile(samples: Sequence[float], p: float) -> Optional[float]:
    """Nearest-rank percentile; None on an empty sample set."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def latency_summary(latencies: Sequence[float]) -> dict:
    out: dict = {"n": len(latencies)}
    out["mean_s"] = (sum(latencies) / len(latencies)) if latencies else None
    for p in PERCENTILES:
        out[f"p{p}_s"] = percentile(latencies, p)
    return out


def _state_counts(requests: Sequence[Request]) -> dict:
    counts = {
        "issued": len(requests),
        "completed": 0,
        "rejected_queue": 0,
        "rejected_quota": 0,
        "shed_timeout": 0,
    }
    for request in requests:
        if request.state == COMPLETED:
            counts["completed"] += 1
        elif request.state == REJECTED_QUEUE:
            counts["rejected_queue"] += 1
        elif request.state == REJECTED_QUOTA:
            counts["rejected_quota"] += 1
        elif request.state == SHED_TIMEOUT:
            counts["shed_timeout"] += 1
    return counts


def build_report(config: ServeConfig, server: QueryServer,
                 trace: Trace) -> dict:
    """Assemble the serve run's JSON report."""
    requests = server.requests
    machine = server.machine
    completed = [r for r in requests if r.state == COMPLETED]
    latencies = [r.latency_s for r in completed]

    by_meta = trace.active_energy_by_meta("tenant")
    system_j = by_meta.pop(None, 0.0)
    tenant_j = dict(sorted(by_meta.items()))
    total_active_j = trace.total_active_j
    n_completed = len(completed)
    energy_per_query_j = (total_active_j / n_completed
                          if n_completed else None)
    mean_latency = (sum(latencies) / len(latencies)) if latencies else None
    edp = (energy_per_query_j * mean_latency
           if energy_per_query_j is not None and mean_latency is not None
           else None)

    tenants: dict = {}
    tenant_names = sorted({r.tenant for r in requests} | set(tenant_j))
    for tenant in tenant_names:
        t_requests = [r for r in requests if r.tenant == tenant]
        t_completed = [r for r in t_requests if r.state == COMPLETED]
        t_latencies = [r.latency_s for r in t_completed]
        active_j = tenant_j.get(tenant, 0.0)
        tenants[tenant] = {
            "counts": _state_counts(t_requests),
            "latency_s": latency_summary(t_latencies),
            "active_j": active_j,
            "energy_per_query_j": (active_j / len(t_completed)
                                   if t_completed else None),
            "rows": sum(r.rows for r in t_completed),
        }

    snapshot = machine.metrics.snapshot()
    serve_counters = {
        name: value for name, value in sorted(snapshot.items())
        if name.startswith(("serve.", "cores."))
        and isinstance(value, (int, float))
    }

    return {
        "config": {
            "workload": config.workload,
            "policy": config.policy,
            "dvfs": config.dvfs,
            "mode": config.mode,
            "clients": config.clients,
            "queries": config.queries,
            "tenants": config.tenants,
            "cores": config.cores,
            "mpl": config.mpl,
            "quantum_rows": config.quantum_rows,
            "max_queue": config.max_queue,
            "tenant_quota": config.tenant_quota,
            "queue_timeout_s": config.queue_timeout_s,
            "rate_qps": config.rate_qps,
            "think_s": config.think_s,
            "seed": config.seed,
            "engine": config.engine,
            "setting": config.setting,
            "tier": config.tier,
            "scale": config.scale,
            "exec_mode": config.exec_mode,
        },
        "counts": _state_counts(requests),
        "latency_s": latency_summary(latencies),
        "tenants": tenants,
        "energy": {
            "domain": trace.domain,
            "total_active_j": total_active_j,
            "system_active_j": system_j,
            "tenant_active_j": tenant_j,
            "check_sum_j": system_j + sum(tenant_j.values()),
            "energy_per_query_j": energy_per_query_j,
            "edp_js": edp,
        },
        "clock": {
            "wall_s": machine.time_s,
            "busy_s": machine.busy_s,
            "idle_s": machine.idle_s,
            "context_switches": server.core_set.context_switches,
        },
        "counters": serve_counters,
    }
