"""Query mixes the serving layer's clients draw from.

Each mix assigns every client a deterministic *cycle* of
:class:`~repro.serve.request.JobTemplate`\\ s (clients loop over their
cycle).  Four mixes ship:

* ``basic`` — the seven Figure 6 basic operations, phase-shifted per
  client so concurrent clients exercise different operators;
* ``tpch`` — a light plan-backed TPC-H subset (Q1/Q3/Q6/Q12/Q14),
  phase-shifted the same way;
* ``thrash`` — the cache-thrashing mix: each client repeatedly scans
  one of three different large tables.  Interleaving clients (FIFO)
  alternates the tables and recycles the buffer pool and caches every
  query; batching same-table queries (the locality policy) keeps them
  warm.  This is the benchmark mix for the policy comparison;
* ``kv`` — YCSB-style operation batches against one shared LSM store
  (the §7 NoSQL follow-up), read-heavy to write-heavy per client;
* ``points`` — light point-lookup-shaped requests built directly from
  micro-ops (strided probes over a small per-client ring plus hot
  state and ALU work, no SQL layer).  Its work iterator implements the
  batched-quantum protocol (``run_rows``), so the serve engine's own
  overhead — not plan interpretation — dominates.  This is the mix the
  serve-scale benchmark scenario uses for million-request closed-loop
  runs.

All randomness (YCSB key choices) derives from the root seed via
:mod:`repro.seeding`; SQL and points mixes draw nothing at all.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.db.costs import estimate_cost, tables_used
from repro.db.engine import Database
from repro.db.exprs import Col
from repro.db.operators import AggSpec
from repro.db.planner import Aggregate, Logical, Scan
from repro.errors import ConfigError
from repro.seeding import derive_seed, seeded_rng
from repro.serve.request import JobTemplate
from repro.sim.machine import Machine
from repro.workloads.basic_ops import BASIC_OPERATIONS, basic_operation_plan
from repro.workloads.kvstore import LsmStore, build_store
from repro.workloads.tpch.queries import QUERIES

MIXES = ("basic", "tpch", "thrash", "kv", "points")

#: Plan-backed TPC-H subset used by the ``tpch`` mix (scan-, join-,
#: and index-heavy shapes, all light enough to serve many times).
TPCH_SERVE_QUERIES = (1, 3, 6, 12, 14)

#: The three tables the ``thrash`` mix alternates over, with a numeric
#: column each so the scan touches real data bytes.
THRASH_TABLES = (
    ("lineitem", "l_extendedprice"),
    ("orders", "o_totalprice"),
    ("partsupp", "ps_supplycost"),
)

#: Operations per key-value job (one ``next()`` each).
KV_OPS_PER_JOB = 64

#: Shape of one ``points`` job: rows per request (below the default
#: quantum so a request completes in one quantum) and the per-row
#: micro-op bundle.  The ring is sized to sit inside L1D at the default
#: cache scale (24 lines over 8 sets = 3 ways of 4), so after the
#: context switch's kernel walk evicts part of it the first rotation
#: re-fills it and the remaining rotations fold to bulk L1 hits.
POINT_ROWS_PER_JOB = 48
POINT_PROBES_PER_ROW = 128
POINT_RING_LINES = 24
POINT_RING_STRIDE = 7


class QueryMix:
    """Deterministic per-client job cycles."""

    def __init__(self, name: str, client_cycles: Sequence[Sequence[JobTemplate]]):
        if not client_cycles or any(not cycle for cycle in client_cycles):
            raise ConfigError(f"mix {name!r} has an empty client cycle")
        self.name = name
        self._cycles = [tuple(cycle) for cycle in client_cycles]

    def jobs_for_client(self, client_index: int) -> tuple[JobTemplate, ...]:
        return self._cycles[client_index % len(self._cycles)]


def _sql_job(db: Database, name: str, plan: Logical) -> JobTemplate:
    return JobTemplate(
        name=name,
        tables=tables_used(plan),
        cost=estimate_cost(db.catalog, plan),
        make=lambda slot, plan=plan: db.execute_iter(plan, slot=slot),
    )


def _rotated(jobs: Sequence[JobTemplate], n_clients: int):
    """Phase-shift one job cycle so client i starts at job i."""
    jobs = tuple(jobs)
    return [jobs[i % len(jobs):] + jobs[: i % len(jobs)]
            for i in range(max(1, n_clients))]


def _basic_mix(db: Database, n_clients: int) -> QueryMix:
    jobs = [_sql_job(db, name, basic_operation_plan(name))
            for name in BASIC_OPERATIONS]
    return QueryMix("basic", _rotated(jobs, n_clients))


def _tpch_mix(db: Database, n_clients: int) -> QueryMix:
    jobs = []
    for number in TPCH_SERVE_QUERIES:
        query = QUERIES[number]
        if query.plan is None:  # pragma: no cover - subset is plan-backed
            continue
        jobs.append(_sql_job(db, f"Q{number}", query.plan))
    return QueryMix("tpch", _rotated(jobs, n_clients))


def _thrash_plan(table: str, column: str) -> Logical:
    return Aggregate(
        Scan(table, access="seq"),
        (),
        (AggSpec("n", "count"), AggSpec("total", "sum", Col(column))),
    )


def _thrash_mix(db: Database, n_clients: int) -> QueryMix:
    cycles = []
    for i in range(max(1, n_clients)):
        table, column = THRASH_TABLES[i % len(THRASH_TABLES)]
        cycles.append([_sql_job(db, f"scan-{table}",
                                _thrash_plan(table, column))])
    return QueryMix("thrash", cycles)


def _kv_ops(store: LsmStore, flavor: str, rng, n_keys: int) -> Iterator[int]:
    """One job's operation stream: one ``next()`` per operation."""
    for op_index in range(KV_OPS_PER_JOB):
        roll = rng.random()
        if flavor == "c" or (flavor == "b" and roll < 0.95) or (
            flavor == "a" and roll < 0.5
        ):
            store.get(rng.randrange(n_keys))
        else:
            store.put(rng.randrange(n_keys), "u")
        yield op_index


class _KvRun:
    """Batched-quantum adapter over one ``kv`` job's operation stream.

    ``run_rows(n)`` executes up to ``n`` operations inside one call —
    literally ``n`` pulls of the same :func:`_kv_ops` generator, so it
    charges exactly what per-row ``next()`` would (the store's key
    choices come from the job's own seeded rng either way) — and
    returns how many ran; fewer than asked means the batch is done.
    """

    __slots__ = ("_ops",)

    def __init__(self, ops: Iterator[int]):
        self._ops = ops

    def __iter__(self) -> "_KvRun":
        return self

    def __next__(self) -> int:
        return next(self._ops)

    def run_rows(self, n: int) -> int:
        ops = self._ops
        done = 0
        try:
            for _ in range(n):
                next(ops)
                done += 1
        except StopIteration:
            pass
        return done


def _kv_mix(machine: Machine, seed: int, n_clients: int) -> QueryMix:
    n_keys = 1024
    store = build_store(machine, n_keys=n_keys,
                        seed=derive_seed(seed, "serve", "kv-load"))
    flavors = ("c", "b", "a")  # read-only, read-heavy, update-heavy
    issue_counts = [0] * max(1, n_clients)
    cycles = []
    for i in range(max(1, n_clients)):
        flavor = flavors[i % len(flavors)]

        def make(slot, client=i, flavor=flavor):
            issue = issue_counts[client]
            issue_counts[client] += 1
            rng = seeded_rng(
                derive_seed(seed, "serve", "kv", f"c{client}", str(issue)),
                "kv job",
            )
            return _KvRun(_kv_ops(store, flavor, rng, n_keys))

        weight = {"c": 1.0, "b": 1.2, "a": 1.5}[flavor]
        cycles.append([JobTemplate(
            name=f"ycsb-{flavor}",
            tables=("kv",),
            cost=KV_OPS_PER_JOB * weight,
            make=make,
        )])
    return QueryMix("kv", cycles)


class _PointRun:
    """Work iterator of one ``points`` request.

    Implements the batched-quantum protocol: :meth:`run_rows` executes
    up to ``n`` rows as a handful of bulk executor calls and returns
    how many it did (fewer than asked = exhausted); ``__next__`` runs
    exactly one row's bundle.  Both paths charge identical micro-ops —
    the bulk ring walk touches the same lines in the same order, and
    the counter ops are pure adds — so a report is bit-identical
    whichever path the serve loop takes.
    """

    def __init__(self, machine: Machine, ring, state):
        self.machine = machine
        self.ring = ring
        self.state = state
        self.remaining = POINT_ROWS_PER_JOB
        self._cursor = 0

    def __iter__(self) -> "_PointRun":
        return self

    def _run(self, rows: int) -> None:
        machine = self.machine
        self._cursor = machine.exec.load_ring(
            self.ring.base, self._cursor, POINT_RING_STRIDE,
            rows * POINT_PROBES_PER_ROW, self.ring.n_lines,
        )
        machine.hot_loads(self.state.base, 4 * rows)
        machine.hot_stores(self.state.base, 2 * rows)
        machine.add(6 * rows)
        machine.cmp(2 * rows)
        machine.branch(2 * rows)
        machine.other(4 * rows)

    def run_rows(self, n: int) -> int:
        rows = min(n, self.remaining)
        if rows > 0:
            self._run(rows)
            self.remaining -= rows
        return rows

    def __next__(self) -> int:
        if self.remaining <= 0:
            raise StopIteration
        self._run(1)
        self.remaining -= 1
        return self.remaining


def _points_mix(machine: Machine, n_clients: int) -> QueryMix:
    cycles = []
    for i in range(max(1, n_clients)):
        ring = machine.address_space.alloc_lines(
            POINT_RING_LINES, f"points/ring{i}")
        state = machine.address_space.alloc(256, label=f"points/state{i}")

        def make(slot, ring=ring, state=state):
            return _PointRun(machine, ring, state)

        cycles.append([JobTemplate(
            name="points",
            tables=("points",),
            cost=float(POINT_ROWS_PER_JOB),
            make=make,
        )])
    return QueryMix("points", cycles)


def build_mix(name: str, db: Database, n_clients: int, seed: int) -> QueryMix:
    """Build one named mix bound to a loaded database."""
    if name == "basic":
        return _basic_mix(db, n_clients)
    if name == "tpch":
        return _tpch_mix(db, n_clients)
    if name == "thrash":
        return _thrash_mix(db, n_clients)
    if name == "kv":
        return _kv_mix(db.machine, seed, n_clients)
    if name == "points":
        return _points_mix(db.machine, n_clients)
    raise ConfigError(f"unknown workload mix {name!r}; known: {MIXES}")
