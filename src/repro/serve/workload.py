"""Query mixes the serving layer's clients draw from.

Each mix assigns every client a deterministic *cycle* of
:class:`~repro.serve.request.JobTemplate`\\ s (clients loop over their
cycle).  Four mixes ship:

* ``basic`` — the seven Figure 6 basic operations, phase-shifted per
  client so concurrent clients exercise different operators;
* ``tpch`` — a light plan-backed TPC-H subset (Q1/Q3/Q6/Q12/Q14),
  phase-shifted the same way;
* ``thrash`` — the cache-thrashing mix: each client repeatedly scans
  one of three different large tables.  Interleaving clients (FIFO)
  alternates the tables and recycles the buffer pool and caches every
  query; batching same-table queries (the locality policy) keeps them
  warm.  This is the benchmark mix for the policy comparison;
* ``kv`` — YCSB-style operation batches against one shared LSM store
  (the §7 NoSQL follow-up), read-heavy to write-heavy per client.

All randomness (YCSB key choices) derives from the root seed via
:mod:`repro.seeding`; SQL mixes draw nothing at all.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.db.costs import estimate_cost, tables_used
from repro.db.engine import Database
from repro.db.exprs import Col
from repro.db.operators import AggSpec
from repro.db.planner import Aggregate, Logical, Scan
from repro.errors import ConfigError
from repro.seeding import derive_seed, seeded_rng
from repro.serve.request import JobTemplate
from repro.sim.machine import Machine
from repro.workloads.basic_ops import BASIC_OPERATIONS, basic_operation_plan
from repro.workloads.kvstore import LsmStore, build_store
from repro.workloads.tpch.queries import QUERIES

MIXES = ("basic", "tpch", "thrash", "kv")

#: Plan-backed TPC-H subset used by the ``tpch`` mix (scan-, join-,
#: and index-heavy shapes, all light enough to serve many times).
TPCH_SERVE_QUERIES = (1, 3, 6, 12, 14)

#: The three tables the ``thrash`` mix alternates over, with a numeric
#: column each so the scan touches real data bytes.
THRASH_TABLES = (
    ("lineitem", "l_extendedprice"),
    ("orders", "o_totalprice"),
    ("partsupp", "ps_supplycost"),
)

#: Operations per key-value job (one ``next()`` each).
KV_OPS_PER_JOB = 64


class QueryMix:
    """Deterministic per-client job cycles."""

    def __init__(self, name: str, client_cycles: Sequence[Sequence[JobTemplate]]):
        if not client_cycles or any(not cycle for cycle in client_cycles):
            raise ConfigError(f"mix {name!r} has an empty client cycle")
        self.name = name
        self._cycles = [tuple(cycle) for cycle in client_cycles]

    def jobs_for_client(self, client_index: int) -> tuple[JobTemplate, ...]:
        return self._cycles[client_index % len(self._cycles)]


def _sql_job(db: Database, name: str, plan: Logical) -> JobTemplate:
    return JobTemplate(
        name=name,
        tables=tables_used(plan),
        cost=estimate_cost(db.catalog, plan),
        make=lambda slot, plan=plan: db.execute_iter(plan, slot=slot),
    )


def _rotated(jobs: Sequence[JobTemplate], n_clients: int):
    """Phase-shift one job cycle so client i starts at job i."""
    jobs = tuple(jobs)
    return [jobs[i % len(jobs):] + jobs[: i % len(jobs)]
            for i in range(max(1, n_clients))]


def _basic_mix(db: Database, n_clients: int) -> QueryMix:
    jobs = [_sql_job(db, name, basic_operation_plan(name))
            for name in BASIC_OPERATIONS]
    return QueryMix("basic", _rotated(jobs, n_clients))


def _tpch_mix(db: Database, n_clients: int) -> QueryMix:
    jobs = []
    for number in TPCH_SERVE_QUERIES:
        query = QUERIES[number]
        if query.plan is None:  # pragma: no cover - subset is plan-backed
            continue
        jobs.append(_sql_job(db, f"Q{number}", query.plan))
    return QueryMix("tpch", _rotated(jobs, n_clients))


def _thrash_plan(table: str, column: str) -> Logical:
    return Aggregate(
        Scan(table, access="seq"),
        (),
        (AggSpec("n", "count"), AggSpec("total", "sum", Col(column))),
    )


def _thrash_mix(db: Database, n_clients: int) -> QueryMix:
    cycles = []
    for i in range(max(1, n_clients)):
        table, column = THRASH_TABLES[i % len(THRASH_TABLES)]
        cycles.append([_sql_job(db, f"scan-{table}",
                                _thrash_plan(table, column))])
    return QueryMix("thrash", cycles)


def _kv_ops(store: LsmStore, flavor: str, rng, n_keys: int) -> Iterator[int]:
    """One job's operation stream: one ``next()`` per operation."""
    for op_index in range(KV_OPS_PER_JOB):
        roll = rng.random()
        if flavor == "c" or (flavor == "b" and roll < 0.95) or (
            flavor == "a" and roll < 0.5
        ):
            store.get(rng.randrange(n_keys))
        else:
            store.put(rng.randrange(n_keys), "u")
        yield op_index


def _kv_mix(machine: Machine, seed: int, n_clients: int) -> QueryMix:
    n_keys = 1024
    store = build_store(machine, n_keys=n_keys,
                        seed=derive_seed(seed, "serve", "kv-load"))
    flavors = ("c", "b", "a")  # read-only, read-heavy, update-heavy
    issue_counts = [0] * max(1, n_clients)
    cycles = []
    for i in range(max(1, n_clients)):
        flavor = flavors[i % len(flavors)]

        def make(slot, client=i, flavor=flavor):
            issue = issue_counts[client]
            issue_counts[client] += 1
            rng = seeded_rng(
                derive_seed(seed, "serve", "kv", f"c{client}", str(issue)),
                "kv job",
            )
            return _kv_ops(store, flavor, rng, n_keys)

        weight = {"c": 1.0, "b": 1.2, "a": 1.5}[flavor]
        cycles.append([JobTemplate(
            name=f"ycsb-{flavor}",
            tables=("kv",),
            cost=KV_OPS_PER_JOB * weight,
            make=make,
        )])
    return QueryMix("kv", cycles)


def build_mix(name: str, db: Database, n_clients: int, seed: int) -> QueryMix:
    """Build one named mix bound to a loaded database."""
    if name == "basic":
        return _basic_mix(db, n_clients)
    if name == "tpch":
        return _tpch_mix(db, n_clients)
    if name == "thrash":
        return _thrash_mix(db, n_clients)
    if name == "kv":
        return _kv_mix(db.machine, seed, n_clients)
    raise ConfigError(f"unknown workload mix {name!r}; known: {MIXES}")
