"""Requests and job templates: the unit of work the serving layer moves.

A :class:`JobTemplate` is an issuable query shape — a name, the base
tables it touches (the locality policy's key), a planner cost estimate
(the SJF policy's key), and a factory producing a fresh work iterator.
One ``next()`` on the iterator is one unit of progress (a result row
for SQL jobs, one operation for key-value jobs); the serving layer
time-slices by pulling a quantum of units at a time.

A :class:`Request` is one issued instance of a template: it carries the
tenant, the arrival time, and the lifecycle state the report
aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.errors import DeadlineExceeded

# Lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
REJECTED_QUEUE = "rejected_queue"
REJECTED_QUOTA = "rejected_quota"
SHED_TIMEOUT = "shed_timeout"
#: Waiting out a retry backoff after a failed attempt (resilient runs).
RETRY_WAIT = "retry_wait"
#: Every attempt failed (or the retry budget ran out).
FAILED = "failed"
#: Ran past its execution deadline; remaining work abandoned.
DEADLINE_EXCEEDED = "deadline_exceeded"
#: Shed by the circuit breaker's degraded mode (low-priority tenant).
SHED_DEGRADED = "shed_degraded"

#: Terminal states a request can end in (reported per tenant).
TERMINAL_STATES = (COMPLETED, REJECTED_QUEUE, REJECTED_QUOTA, SHED_TIMEOUT,
                   FAILED, DEADLINE_EXCEEDED, SHED_DEGRADED)


@dataclass(frozen=True)
class JobTemplate:
    """One issuable query shape."""

    name: str
    #: Base tables the job touches (locality-batching key).
    tables: tuple[str, ...]
    #: Planner cost estimate in abstract work units (SJF key).
    cost: float
    #: ``make(slot)`` returns a fresh work iterator bound to an
    #: execution slot (slots keep temp-arena addresses warm per core).
    make: Callable[[int], Iterator]


@dataclass
class Request:
    """One issued query travelling through admission, queue, and cores."""

    request_id: int
    tenant: str
    #: Issuing client's index (drives closed-loop reissue).
    client: int
    job: JobTemplate
    arrival_s: float
    state: str = QUEUED
    start_s: Optional[float] = None
    finish_s: Optional[float] = None
    rows: int = 0
    quanta: int = 0
    #: Execution slot while running (core index x mpl + position).
    slot: Optional[int] = None
    #: Failed attempts so far (attempt number = failures + 1).
    failures: int = 0
    #: Execution deadline relative to arrival (resilient runs only).
    deadline_s: Optional[float] = None
    _iter: Optional[Iterator] = field(default=None, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def latency_s(self) -> Optional[float]:
        """Arrival-to-finish latency (None until completed)."""
        if self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s

    def work_iter(self, slot: int) -> Iterator:
        """The request's work iterator, created on first quantum."""
        if self._iter is None:
            self.slot = slot
            self._iter = self.job.make(slot)
        return self._iter

    def prepare_retry(self) -> None:
        """Reset execution state for a fresh attempt after a failure.

        The failed attempt's partial progress is discarded (its joules
        are already on the trace and will be classified as wasted); the
        retry re-enters through the arrival heap and re-queues.
        """
        self.state = RETRY_WAIT
        self.slot = None
        self.rows = 0
        self._iter = None

    def check_deadline(self, now: float) -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` when ``now`` is
        past this request's execution deadline (no-op without one)."""
        if self.deadline_s is not None and now - self.arrival_s > self.deadline_s:
            raise DeadlineExceeded(
                f"request {self.request_id} exceeded its {self.deadline_s}s "
                f"deadline ({now - self.arrival_s:.3f}s since arrival)"
            )
