"""The serving event loop: admission, scheduling, and time-slicing.

:class:`QueryServer` is a deterministic discrete-event simulator over
one :class:`~repro.db.engine.Database` and one
:class:`~repro.sim.cores.CoreSet`:

* Arrivals live in a heap keyed on ``(time, sequence)``; the sequence
  number makes ties deterministic.
* The loop alternates between the two event kinds: if the next arrival
  is no later than the earliest busy core's clock, the arrival is
  processed (admission, then dispatch); otherwise that core runs one
  *quantum* — up to ``quantum_rows`` pulls on the request's work
  iterator, preceded by a context switch charged on the machine.
* Multiprogramming: each core round-robins a run list of up to ``mpl``
  requests, each bound to a distinct execution slot (its own temp
  arena), so interleaved plans never trample each other's state.
* When every core is idle and the queue is empty, the gap to the next
  arrival is charged as package idle time — exactly the §2.6 notion of
  background energy the Active-energy subtraction removes.

Every quantum runs inside a tracer span tagged with the request's
tenant, so a :class:`~repro.obs.tracer.Tracer` installed over the run
partitions the whole run's Active energy across tenants exactly (see
:meth:`~repro.obs.span.Trace.active_energy_by_meta`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

from repro.db.engine import Database
from repro.errors import ConfigError
from repro.serve.admission import AdmissionController
from repro.serve.drivers import Driver
from repro.serve.policies import SchedulingPolicy
from repro.serve.request import COMPLETED, JobTemplate, Request
from repro.sim.cores import Core, CoreSet

#: Span category carried by every quantum span.
CATEGORY_QUANTUM = "serve.quantum"


@dataclass
class ServeConfig:
    """Everything that parameterises one serve run."""

    workload: str = "tpch"
    policy: str = "fifo"
    dvfs: str = "race"
    mode: str = "closed"
    clients: int = 4
    queries: int = 40
    tenants: int = 2
    cores: int = 2
    #: Multiprogramming level: run-list depth per core.
    mpl: int = 2
    #: Iterator pulls per scheduling quantum.
    quantum_rows: int = 64
    max_queue: int = 64
    tenant_quota: Optional[int] = None
    queue_timeout_s: Optional[float] = None
    #: Open-loop aggregate arrival rate (queries per simulated second).
    rate_qps: float = 50.0
    #: Closed-loop mean think time (simulated seconds).
    think_s: float = 0.0
    seed: int = 0
    engine: str = "postgresql"
    #: Engine configuration setting (buffer pool / work_mem sizing).
    setting: str = "baseline"
    tier: str = "10MB"
    #: Cache scale divisor, as the rest of the CLI uses it.
    scale: int = 16
    #: Simulator execution engine ("batched" is bit-identical to
    #: "reference"; see repro.sim.batch).
    exec_mode: str = "batched"

    def validate(self) -> "ServeConfig":
        if self.clients < 1:
            raise ConfigError(f"clients must be >= 1, got {self.clients}")
        if self.queries < 1:
            raise ConfigError(f"queries must be >= 1, got {self.queries}")
        if self.tenants < 1:
            raise ConfigError(f"tenants must be >= 1, got {self.tenants}")
        if self.cores < 1:
            raise ConfigError(f"cores must be >= 1, got {self.cores}")
        if self.mpl < 1:
            raise ConfigError(f"mpl must be >= 1, got {self.mpl}")
        if self.quantum_rows < 1:
            raise ConfigError(
                f"quantum_rows must be >= 1, got {self.quantum_rows}"
            )
        return self


class QueryServer:
    """Deterministic discrete-event serving loop (see module docstring)."""

    def __init__(self, db: Database, core_set: CoreSet,
                 admission: AdmissionController, policy: SchedulingPolicy,
                 driver: Driver, mpl: int = 2, quantum_rows: int = 64):
        self.db = db
        self.machine = db.machine
        self.core_set = core_set
        self.admission = admission
        self.policy = policy
        self.driver = driver
        self.mpl = mpl
        self.quantum_rows = quantum_rows
        #: Every request ever created, in arrival order (the report's input).
        self.requests: list[Request] = []
        #: Tables of the most recently dispatched request (locality key).
        self.hot_tables: frozenset[str] = frozenset()
        self._heap: list[tuple[float, int, int, JobTemplate]] = []
        self._seq = 0
        self._free_slots = {
            core.index: list(range(mpl)) for core in core_set.cores
        }

    # ------------------------------------------------------------ arrivals

    def _push_arrival(self, t: float, client: int, job: JobTemplate) -> None:
        heapq.heappush(self._heap, (t, self._seq, client, job))
        self._seq += 1

    def _client_terminal(self, request: Request, now: float) -> None:
        nxt = self.driver.on_terminal(request.client, now)
        if nxt is not None:
            self._push_arrival(nxt[0], request.client, nxt[1])

    def _drain_shed(self) -> None:
        while self.admission.shed:
            request = self.admission.shed.pop(0)
            self._client_terminal(request, request.finish_s)

    def _process_arrival(self) -> None:
        t, _seq, client, job = heapq.heappop(self._heap)
        if not self.admission.queue and not any(
            core.run_list for core in self.core_set.cores
        ):
            self.core_set.quiesce_until(t)
        request = Request(
            request_id=len(self.requests),
            tenant=self.driver.tenant_of(client),
            client=client,
            job=job,
            arrival_s=t,
        )
        self.requests.append(request)
        admitted = self.admission.offer(request, t)
        self._drain_shed()
        if not admitted:
            self._client_terminal(request, t)
        self._assign(t)

    # ------------------------------------------------------------ dispatch

    def _assign(self, now: float) -> None:
        """Fill core run lists from the queue via the policy."""
        self.admission.candidates(now)  # sheds expired waiters
        self._drain_shed()
        while self.admission.queue:
            open_cores = [core for core in self.core_set.cores
                          if len(core.run_list) < self.mpl]
            if not open_cores:
                return
            core = min(open_cores,
                       key=lambda c: (len(c.run_list), c.clock_s, c.index))
            request = self.policy.select(self.admission.queue,
                                         self.hot_tables)
            if request is None:
                return
            self.admission.take(request, now)
            offset = self._free_slots[core.index].pop(0)
            request.slot = core.index * self.mpl + offset
            if not core.run_list:
                # The core sat idle until this dispatch; its next quantum
                # cannot begin before the request exists.
                core.clock_s = max(core.clock_s, now)
            core.run_list.append(request)
            self.hot_tables = frozenset(request.job.tables)

    # ------------------------------------------------------------ quanta

    def _run_quantum(self, core: Core) -> None:
        request = core.run_list.pop(0)
        finished = False

        def work() -> None:
            nonlocal finished
            self.core_set.context_switch(core, request)
            it = request.work_iter(request.slot)
            for _ in range(self.quantum_rows):
                try:
                    next(it)
                except StopIteration:
                    finished = True
                    return
                request.rows += 1

        with self.machine.tracer.span(
            f"req{request.request_id}.q{request.quanta}",
            category=CATEGORY_QUANTUM,
            tenant=request.tenant,
            request=request.request_id,
            job=request.job.name,
        ):
            self.core_set.run_on(core, work)
        request.quanta += 1
        if finished:
            request.state = COMPLETED
            request.finish_s = core.clock_s
            self._free_slots[core.index].append(
                request.slot - core.index * self.mpl
            )
            self._free_slots[core.index].sort()
            if core.resident is request:
                core.resident = None
            self.admission.release(request)
            self._client_terminal(request, core.clock_s)
        else:
            core.run_list.append(request)

    # ------------------------------------------------------------ main loop

    def run(self) -> list[Request]:
        for t, client, job in self.driver.initial_arrivals():
            self._push_arrival(t, client, job)
        while True:
            busy = [core for core in self.core_set.cores if core.run_list]
            next_busy = (min(busy, key=lambda c: (c.clock_s, c.index))
                         if busy else None)
            if self._heap and (
                next_busy is None or self._heap[0][0] <= next_busy.clock_s
            ):
                self._process_arrival()
            elif next_busy is not None:
                self._run_quantum(next_busy)
                self._assign(next_busy.clock_s)
            elif self.admission.queue:
                # Cores drained while requests still waited (e.g. the
                # policy declined); force-dispatch at the latest clock.
                self._assign(max(c.clock_s for c in self.core_set.cores))
                if not any(c.run_list for c in self.core_set.cores):
                    break
            else:
                break
        self.machine.settle()
        return self.requests
