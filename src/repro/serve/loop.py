"""The serving event loop: admission, scheduling, and time-slicing.

:class:`QueryServer` is a deterministic discrete-event simulator over
one :class:`~repro.db.engine.Database` and one
:class:`~repro.sim.cores.CoreSet`:

* Arrivals live in a heap keyed on ``(time, sequence)``; the sequence
  number makes ties deterministic.  The driver seeds the heap in bulk
  (:meth:`~repro.serve.drivers.Driver.initial_arrival_entries`).
* Busy cores live in a second heap keyed on ``(clock, core index)``
  with lazy deletion: entries are pushed when a core turns busy and
  after every quantum, and an entry is valid only while its core is
  still busy at exactly that clock.  Selecting the next busy core is
  O(log cores) instead of an O(cores) ``min`` scan, and the
  force-dispatch clock is a monotone high-water mark instead of a
  ``max`` recomputation.
* The loop alternates between the two event kinds: if the next arrival
  is no later than the earliest busy core's clock, the arrival is
  processed (admission, then dispatch); otherwise that core runs one
  *quantum* — up to ``quantum_rows`` units of the request's work,
  preceded by a context switch charged on the machine.  Work iterators
  that expose ``run_rows(n)`` execute the whole quantum as one batched
  call (micro-ops flow through ``machine.exec`` in bulk); plain
  iterators are pulled row by row.  Both paths charge identical
  micro-ops, so reports stay bit-identical across engines and modes.
* Multiprogramming: each core round-robins a run list of up to ``mpl``
  requests, each bound to a distinct execution slot (its own temp
  arena), so interleaved plans never trample each other's state.
* When every core is idle and the queue is empty, the gap to the next
  arrival is charged as package idle time — exactly the §2.6 notion of
  background energy the Active-energy subtraction removes.

Every quantum runs inside a tracer span tagged with the request's
tenant, so a :class:`~repro.obs.tracer.Tracer` installed over the run
partitions the whole run's Active energy across tenants exactly (see
:meth:`~repro.obs.span.Trace.active_energy_by_meta`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

from repro.db.engine import Database
from repro.errors import ConfigError, DeadlineExceeded, FaultError
from repro.faults import FaultInjector, FaultPlan
from repro.serve.admission import AdmissionController
from repro.serve.drivers import Driver
from repro.serve.policies import FifoPolicy, SchedulingPolicy
from repro.serve.request import (
    COMPLETED,
    DEADLINE_EXCEEDED,
    FAILED,
    SHED_DEGRADED,
    JobTemplate,
    Request,
)
from repro.serve.resilience import CircuitBreaker, RetryManager
from repro.sim.cores import Core, CoreSet

#: Span category carried by every quantum span.
CATEGORY_QUANTUM = "serve.quantum"


@dataclass
class ServeConfig:
    """Everything that parameterises one serve run."""

    workload: str = "tpch"
    policy: str = "fifo"
    dvfs: str = "race"
    mode: str = "closed"
    clients: int = 4
    queries: int = 40
    tenants: int = 2
    cores: int = 2
    #: Multiprogramming level: run-list depth per core.
    mpl: int = 2
    #: Iterator pulls per scheduling quantum.
    quantum_rows: int = 64
    max_queue: int = 64
    tenant_quota: Optional[int] = None
    queue_timeout_s: Optional[float] = None
    #: Open-loop aggregate arrival rate (queries per simulated second).
    rate_qps: float = 50.0
    #: Closed-loop mean think time (simulated seconds).
    think_s: float = 0.0
    seed: int = 0
    engine: str = "postgresql"
    #: Engine configuration setting (buffer pool / work_mem sizing).
    setting: str = "baseline"
    tier: str = "10MB"
    #: Cache scale divisor, as the rest of the CLI uses it.
    scale: int = 16
    #: Simulator execution engine ("batched" is bit-identical to
    #: "reference"; see repro.sim.batch).
    exec_mode: str = "batched"
    # --- resilience / chaos (all default off; a plain serve run is
    # byte-identical to one configured before these fields existed) ---
    #: Fault plan for chaos runs (None = no injection anywhere).
    faults: Optional[FaultPlan] = None
    #: Max retries per request after a failed attempt (0 = fail fast).
    retries: int = 0
    #: Base backoff before the first retry (doubles per failure).
    retry_backoff_s: float = 0.005
    #: Jitter fraction applied to each backoff (seeded, deterministic).
    retry_jitter: float = 0.1
    #: Global cap on retries across the whole run (None = unlimited).
    retry_budget: Optional[int] = None
    #: Per-request execution deadline from arrival (None = none).
    deadline_s: Optional[float] = None
    #: Breaker trips when the windowed failure rate reaches this
    #: (None = no breaker).
    breaker_threshold: Optional[float] = None
    #: Sliding window of attempt outcomes the breaker looks at.
    breaker_window: int = 16
    #: Simulated seconds the breaker stays open once tripped.
    breaker_cooloff_s: float = 0.1
    #: Tenants (by index) still served while the breaker is open.
    degrade_keep_tenants: int = 1
    # --- telemetry (default "full" keeps the pre-telemetry behaviour:
    # span tracer over the whole run, byte-identical reports) ---
    #: "full" = span tracer (exact per-span tree, unaffordable at
    #: production scale); "sampler" = streaming aggregates + exemplar
    #: reservoir (always-on mode); "off" = whole-window totals only.
    telemetry: str = "full"
    #: Probability a closed span is offered to the exemplar reservoir
    #: (sampler mode; never affects aggregates).
    exemplar_rate: float = 0.1
    #: Exemplar reservoir capacity (sampler mode).
    reservoir_size: int = 64
    #: Write a timeline (fixed windows over simulated time) here;
    #: ``.csv`` selects CSV, anything else JSONL.  None = no timeline.
    timeline_out: Optional[str] = None
    #: Timeline window width in simulated seconds.
    timeline_window_s: float = 0.01

    @property
    def telemetric(self) -> bool:
        """True when any telemetry knob left its default.

        Gates the report's ``telemetry`` section the same way
        :attr:`resilient` gates the resilience keys: an all-default
        config produces byte-identical output to the pre-telemetry
        server.
        """
        return self.telemetry != "full" or self.timeline_out is not None

    @property
    def resilient(self) -> bool:
        """True when any fault/resilience machinery is switched on.

        Gates every new report key and runtime hook, so a config that
        leaves all of this at defaults produces byte-identical output to
        the pre-resilience server.
        """
        return (self.faults is not None or self.retries > 0
                or self.deadline_s is not None
                or self.breaker_threshold is not None)

    def validate(self) -> "ServeConfig":
        if self.clients < 1:
            raise ConfigError(f"clients must be >= 1, got {self.clients}")
        if self.queries < 1:
            raise ConfigError(f"queries must be >= 1, got {self.queries}")
        if self.tenants < 1:
            raise ConfigError(f"tenants must be >= 1, got {self.tenants}")
        if self.cores < 1:
            raise ConfigError(f"cores must be >= 1, got {self.cores}")
        if self.mpl < 1:
            raise ConfigError(f"mpl must be >= 1, got {self.mpl}")
        if self.quantum_rows < 1:
            raise ConfigError(
                f"quantum_rows must be >= 1, got {self.quantum_rows}"
            )
        if self.faults is not None:
            self.faults.validate()
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.retry_backoff_s <= 0:
            raise ConfigError(
                f"retry_backoff_s must be positive, got {self.retry_backoff_s}"
            )
        if not 0.0 <= self.retry_jitter < 1.0:
            raise ConfigError(
                f"retry_jitter must be in [0, 1), got {self.retry_jitter}"
            )
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ConfigError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.breaker_threshold is not None and not (
            0.0 < self.breaker_threshold <= 1.0
        ):
            raise ConfigError(
                f"breaker_threshold must be in (0, 1], "
                f"got {self.breaker_threshold}"
            )
        if self.breaker_window < 1:
            raise ConfigError(
                f"breaker_window must be >= 1, got {self.breaker_window}"
            )
        if self.breaker_cooloff_s <= 0:
            raise ConfigError(
                f"breaker_cooloff_s must be positive, "
                f"got {self.breaker_cooloff_s}"
            )
        if self.degrade_keep_tenants < 1:
            raise ConfigError(
                f"degrade_keep_tenants must be >= 1, "
                f"got {self.degrade_keep_tenants}"
            )
        if self.telemetry not in ("full", "sampler", "off"):
            raise ConfigError(
                f"telemetry must be 'full', 'sampler', or 'off', "
                f"got {self.telemetry!r}"
            )
        if not 0.0 <= self.exemplar_rate <= 1.0:
            raise ConfigError(
                f"exemplar_rate must be in [0, 1], got {self.exemplar_rate}"
            )
        if self.reservoir_size < 1:
            raise ConfigError(
                f"reservoir_size must be >= 1, got {self.reservoir_size}"
            )
        if self.timeline_window_s <= 0:
            raise ConfigError(
                f"timeline_window_s must be positive, "
                f"got {self.timeline_window_s}"
            )
        return self


class QueryServer:
    """Deterministic discrete-event serving loop (see module docstring)."""

    def __init__(self, db: Database, core_set: CoreSet,
                 admission: AdmissionController, policy: SchedulingPolicy,
                 driver: Driver, mpl: int = 2, quantum_rows: int = 64,
                 injector: Optional[FaultInjector] = None,
                 retry: Optional[RetryManager] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 deadline_s: Optional[float] = None,
                 degrade_keep_tenants: int = 1):
        self.db = db
        self.machine = db.machine
        self.core_set = core_set
        self.admission = admission
        self.policy = policy
        self.driver = driver
        self.mpl = mpl
        self.quantum_rows = quantum_rows
        self.injector = injector
        self.retry = retry
        self.breaker = breaker
        self.deadline_s = deadline_s
        self.degrade_keep_tenants = degrade_keep_tenants
        #: Scheduling fallback while the breaker is open: the cheapest
        #: policy (no cost model, no locality scan).
        self._degraded_policy = FifoPolicy()
        #: Optional :class:`~repro.obs.timeline.TimelineRecorder` fed
        #: serve events (admissions, terminals, queue depth samples).
        self.timeline = None
        #: Every request ever created, in arrival order (the report's input).
        self.requests: list[Request] = []
        #: Tables of the most recently dispatched request (locality key).
        self.hot_tables: frozenset[str] = frozenset()
        #: Heap payload is a JobTemplate (fresh arrival) or a Request
        #: re-arriving after retry backoff; seq breaks every tie so the
        #: payloads themselves are never compared.
        self._heap: list = []
        self._seq = 0
        self._free_slots = {
            core.index: list(range(mpl)) for core in core_set.cores
        }
        #: Busy-core heap of ``(clock_s, core_index)`` with lazy
        #: deletion: an entry is valid only while the core has a run
        #: list and its clock still equals the entry's.
        self._core_heap: list = []
        #: Monotone high-water mark over all core clocks (force-dispatch
        #: time); core clocks never move backwards.
        self._clock_hwm = 0.0
        #: Total quanta executed (reported as ``clock.quanta``).
        self.quanta = 0

    def _degraded(self, now: float) -> bool:
        return self.breaker is not None and self.breaker.degraded(now)

    def _tenant_priority(self, client: int) -> int:
        """Tenant index of a client; lower = higher priority when the
        breaker's degraded mode sheds tenants."""
        return client % self.driver.tenants

    # ------------------------------------------------------------ arrivals

    def _push_arrival(self, t: float, client: int, job: JobTemplate) -> None:
        heapq.heappush(self._heap, (t, self._seq, client, job))
        self._seq += 1

    def _client_terminal(self, request: Request, now: float) -> None:
        if self.timeline is not None:
            self.timeline.count(request.state)
        nxt = self.driver.on_terminal(request.client, now)
        if nxt is not None:
            self._push_arrival(nxt[0], request.client, nxt[1])

    def _drain_shed(self) -> None:
        while self.admission.shed:
            request = self.admission.shed.pop(0)
            self._client_terminal(request, request.finish_s)

    def _shed_degraded(self, request: Request, now: float) -> None:
        request.state = SHED_DEGRADED
        request.finish_s = now
        self.machine.metrics.counter("serve.shed_degraded").inc()
        self._client_terminal(request, now)

    def _process_arrival(self) -> None:
        t, _seq, client, payload = heapq.heappop(self._heap)
        if not self.admission.queue and not any(
            core.run_list for core in self.core_set.cores
        ):
            self.core_set.quiesce_until(t)
            if t > self._clock_hwm:
                self._clock_hwm = t
        if isinstance(payload, Request):
            # A failed request re-arriving after its retry backoff.
            request = payload
            if self._degraded(t) and (
                self._tenant_priority(client) >= self.degrade_keep_tenants
            ):
                self._shed_degraded(request, t)
            else:
                try:
                    request.check_deadline(t)
                except DeadlineExceeded:
                    self._mark_deadline_exceeded(request, t)
                else:
                    admitted = self.admission.offer(request, t, record=False)
                    if admitted and self.timeline is not None:
                        self.timeline.count("admitted")
                    self._drain_shed()
                    if not admitted:
                        self._client_terminal(request, t)
            self._assign(t)
            return
        request = Request(
            request_id=len(self.requests),
            tenant=self.driver.tenant_of(client),
            client=client,
            job=payload,
            arrival_s=t,
            deadline_s=self.deadline_s,
        )
        self.requests.append(request)
        if self._degraded(t) and (
            self._tenant_priority(client) >= self.degrade_keep_tenants
        ):
            self._shed_degraded(request, t)
            self._assign(t)
            return
        admitted = self.admission.offer(request, t)
        if admitted and self.timeline is not None:
            self.timeline.count("admitted")
        self._drain_shed()
        if not admitted:
            self._client_terminal(request, t)
        self._assign(t)

    # ------------------------------------------------------------ dispatch

    def _mark_deadline_exceeded(self, request: Request, now: float) -> None:
        """Common bookkeeping for a request abandoned past its deadline.

        Callers release any queue/slot/quota resources first; this only
        records the terminal state and feeds the breaker (a deadline
        miss is an overload signal, same as a failed attempt).
        """
        request.state = DEADLINE_EXCEEDED
        request.finish_s = now
        self.machine.metrics.counter("serve.deadline_exceeded").inc()
        if self.breaker is not None:
            self.breaker.record(False, now)
        self._client_terminal(request, now)

    def _assign(self, now: float) -> None:
        """Fill core run lists from the queue via the policy."""
        self.admission.candidates(now)  # sheds expired waiters
        self._drain_shed()
        if self.timeline is not None:
            self.timeline.sample_queue_depth(len(self.admission.queue))
        while self.admission.queue:
            open_cores = [core for core in self.core_set.cores
                          if len(core.run_list) < self.mpl]
            if not open_cores:
                return
            core = min(open_cores,
                       key=lambda c: (len(c.run_list), c.clock_s, c.index))
            policy = (self._degraded_policy if self._degraded(now)
                      else self.policy)
            request = policy.select(self.admission.queue, self.hot_tables)
            if request is None:
                return
            self.admission.take(request, now)
            try:
                request.check_deadline(now)
            except DeadlineExceeded:
                # Expired while queued: abandon before burning a quantum.
                self.admission.release(request)
                self._mark_deadline_exceeded(request, now)
                continue
            offset = self._free_slots[core.index].pop(0)
            request.slot = core.index * self.mpl + offset
            if not core.run_list:
                # The core sat idle until this dispatch; its next quantum
                # cannot begin before the request exists.  Turning busy,
                # it (re)enters the busy-core heap.
                core.clock_s = max(core.clock_s, now)
                if core.clock_s > self._clock_hwm:
                    self._clock_hwm = core.clock_s
                heapq.heappush(self._core_heap, (core.clock_s, core.index))
            core.run_list.append(request)
            self.hot_tables = frozenset(request.job.tables)

    # ------------------------------------------------------------ quanta

    def _release_core_slot(self, request: Request, core: Core) -> None:
        """Return a departing request's execution slot to its core."""
        self._free_slots[core.index].append(
            request.slot - core.index * self.mpl
        )
        self._free_slots[core.index].sort()
        if core.resident is request:
            core.resident = None

    def _attempt_failed(self, request: Request, core: Core) -> None:
        """An injected fault killed the running attempt: free the
        request's resources, then retry (after backoff, through the
        arrival heap) or fail it for good."""
        self._release_core_slot(request, core)
        self.admission.release(request)
        request.failures += 1
        now = core.clock_s
        self.machine.metrics.counter("serve.attempt_failures").inc()
        try:
            request.check_deadline(now)
        except DeadlineExceeded:
            # The attempt failed *and* the deadline has already passed:
            # that is a deadline miss, not a retry candidate.  Admitting
            # it would burn global retry budget (and double-count the
            # breaker failure) on work the client has abandoned.
            self._mark_deadline_exceeded(request, now)
            return
        if self.breaker is not None:
            self.breaker.record(False, now)
        if self.retry is not None and self.retry.admit_retry(request):
            request.prepare_retry()
            self._push_arrival(now + self.retry.backoff_s(request),
                               request.client, request)
        else:
            request.state = FAILED
            request.finish_s = now
            self.machine.metrics.counter("serve.failed").inc()
            self._client_terminal(request, now)

    def _run_quantum(self, core: Core) -> None:
        request = core.run_list.pop(0)
        finished = False
        injector = self.injector
        rows_before = request.rows

        def work() -> None:
            nonlocal finished
            self.core_set.context_switch(core, request)
            if injector is not None and injector.request_error():
                raise FaultError(
                    f"injected request failure "
                    f"(request {request.request_id}, "
                    f"attempt {request.failures + 1})"
                )
            it = request.work_iter(request.slot)
            run_rows = getattr(it, "run_rows", None)
            if run_rows is not None:
                # Batched-quantum protocol: the iterator executes the
                # whole quantum in one call and reports how many units
                # it completed (fewer than asked = exhausted).  It must
                # charge exactly the micro-ops `quantum_rows` pulls
                # would; both engines use this path whenever the
                # iterator provides it, so cross-engine reports agree
                # by construction.
                done = run_rows(self.quantum_rows)
                request.rows += done
                finished = done < self.quantum_rows
                return
            for _ in range(self.quantum_rows):
                try:
                    next(it)
                except StopIteration:
                    finished = True
                    return
                request.rows += 1

        try:
            with self.machine.tracer.span(
                f"req{request.request_id}.q{request.quanta}",
                category=CATEGORY_QUANTUM,
                tenant=request.tenant,
                request=request.request_id,
                job=request.job.name,
                attempt=request.failures + 1,
            ):
                self.core_set.run_on(core, work)
        except FaultError:
            # The killed attempt delivered nothing to the client: roll
            # back any rows it accrued mid-quantum (faults can surface
            # from inside the work iterator, between row pulls) so
            # ``request.rows`` always equals rows actually delivered.
            # Retries reset the count anyway; this covers attempts that
            # fail for good or expire, which used to keep the partial
            # progress of their final, undelivered quantum.
            request.rows = rows_before
            request.quanta += 1
            self.quanta += 1
            self._attempt_failed(request, core)
            return
        request.quanta += 1
        self.quanta += 1
        if finished:
            request.state = COMPLETED
            request.finish_s = core.clock_s
            self._release_core_slot(request, core)
            self.admission.release(request)
            if self.breaker is not None:
                self.breaker.record(True, core.clock_s)
            self._client_terminal(request, core.clock_s)
            return
        try:
            request.check_deadline(core.clock_s)
        except DeadlineExceeded:
            # Past deadline mid-flight: abandon instead of finishing work
            # nobody is waiting for (its joules are already wasted).
            self._release_core_slot(request, core)
            self.admission.release(request)
            self._mark_deadline_exceeded(request, core.clock_s)
            return
        core.run_list.append(request)

    # ------------------------------------------------------------ main loop

    def _next_busy(self) -> Optional[Core]:
        """Earliest busy core by ``(clock, index)`` via the lazy-deletion
        heap; stale entries (core went idle, or its clock moved on) are
        discarded as they surface."""
        heap = self._core_heap
        cores = self.core_set.cores
        while heap:
            t, index = heap[0]
            core = cores[index]
            if core.run_list and core.clock_s == t:
                return core
            heapq.heappop(heap)
        return None

    def run(self) -> list[Request]:
        # The driver's entry list is sorted by (time, seq), which is
        # already a valid heap — adopt it wholesale.
        entries = self.driver.initial_arrival_entries()
        heapq.heapify(entries)
        self._heap = entries
        self._seq = len(entries)
        self._clock_hwm = max(core.clock_s for core in self.core_set.cores)
        heap = self._heap
        while True:
            core = self._next_busy()
            if heap and (core is None or heap[0][0] <= core.clock_s):
                self._process_arrival()
            elif core is not None:
                self._run_quantum(core)
                if core.clock_s > self._clock_hwm:
                    self._clock_hwm = core.clock_s
                if core.run_list:
                    heapq.heappush(self._core_heap,
                                   (core.clock_s, core.index))
                self._assign(core.clock_s)
            elif self.admission.queue:
                # Cores drained while requests still waited (e.g. the
                # policy declined); force-dispatch at the latest clock.
                self._assign(self._clock_hwm)
                if not any(c.run_list for c in self.core_set.cores):
                    break
            else:
                break
        self.machine.settle()
        return self.requests
