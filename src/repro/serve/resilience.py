"""Resilience mechanisms for the serving loop: retries and a breaker.

Failures here are *simulated* failures injected by :mod:`repro.faults`;
the mechanisms are the real ones a serving system would deploy against
them, and the point of modelling both is the energy ledger: every retry
re-spends joules the first attempt already burned, every tripped breaker
trades availability for not burning more.  The serve report splits
Active energy into useful and wasted exactly (span-partitioned, see
``docs/robustness.md``), so the cost of each mechanism is measurable.

* :class:`RetryManager` — per-request attempt limit plus an optional
  global retry budget; exponential backoff with deterministic, seeded
  jitter (per request *and* attempt, so scheduling order cannot perturb
  the draw).
* :class:`CircuitBreaker` — sliding window of attempt outcomes; when
  the failure rate crosses the threshold the breaker opens for a
  cooloff period of simulated time, during which the server degrades:
  low-priority tenants are shed at arrival and scheduling falls back to
  the cheapest policy (FIFO).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.seeding import derive_seed, seeded_rng
from repro.serve.request import Request


class RetryManager:
    """Decides whether and when a failed request may try again."""

    def __init__(self, root_seed: int, max_retries: int = 2,
                 backoff_s: float = 0.005, jitter: float = 0.1,
                 budget: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None):
        if max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_s <= 0:
            raise ConfigError(f"backoff_s must be positive, got {backoff_s}")
        if not 0.0 <= jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {jitter}")
        if budget is not None and budget < 0:
            raise ConfigError(f"retry budget must be >= 0, got {budget}")
        self.root_seed = root_seed
        self.max_retries = max_retries
        self.base_backoff_s = backoff_s
        self.jitter = jitter
        self.budget = budget
        self.metrics = metrics
        self.spent = 0

    def admit_retry(self, request: Request) -> bool:
        """True when ``request`` (which just failed) may run again.

        Consumes one unit of the global budget per admitted retry; a
        request past its per-request limit or an exhausted budget means
        the request fails for good.
        """
        if request.failures > self.max_retries:
            return False
        if self.budget is not None and self.spent >= self.budget:
            return False
        self.spent += 1
        if self.metrics is not None:
            self.metrics.counter("serve.retries").inc()
        return True

    def backoff_s(self, request: Request) -> float:
        """Backoff before attempt ``failures + 1``: exponential in the
        failure count, jittered by a per-(request, attempt) seeded draw
        so concurrent failures don't retry in lockstep."""
        base = self.base_backoff_s * (2 ** (request.failures - 1))
        if self.jitter == 0.0:
            return base
        rng = seeded_rng(
            derive_seed(self.root_seed, "serve", "retry",
                        f"r{request.request_id}", f"f{request.failures}"),
            "retry jitter",
        )
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


class CircuitBreaker:
    """Sliding-window failure-rate breaker over attempt outcomes."""

    def __init__(self, threshold: float, window: int = 16,
                 cooloff_s: float = 0.1,
                 metrics: Optional[MetricsRegistry] = None):
        if not 0.0 < threshold <= 1.0:
            raise ConfigError(
                f"breaker threshold must be in (0, 1], got {threshold}"
            )
        if window < 1:
            raise ConfigError(f"breaker window must be >= 1, got {window}")
        if cooloff_s <= 0:
            raise ConfigError(
                f"breaker cooloff must be positive, got {cooloff_s}"
            )
        self.threshold = threshold
        self.window = window
        self.cooloff_s = cooloff_s
        self.metrics = metrics
        self.outcomes: deque[bool] = deque(maxlen=window)
        self.open_until: Optional[float] = None
        self.trips = 0

    def record(self, ok: bool, now: float) -> None:
        """Record one attempt outcome; may trip the breaker.

        Tripping requires a *full* window (a single early failure is not
        a trend) and clears it, so the breaker re-opens only on fresh
        evidence gathered after the cooloff.  Outcomes observed *while*
        the breaker is open are dropped entirely — recording them would
        let cooloff-era failures linger in the window and re-trip the
        breaker on the first post-cooloff success.
        """
        if self.open_until is not None:
            if now < self.open_until:
                return
            self.open_until = None
        self.outcomes.append(ok)
        if len(self.outcomes) < self.window:
            return
        failures = sum(1 for outcome in self.outcomes if not outcome)
        if failures / len(self.outcomes) >= self.threshold:
            self.open_until = now + self.cooloff_s
            self.trips += 1
            self.outcomes.clear()
            if self.metrics is not None:
                self.metrics.counter("serve.breaker_trips").inc()

    def degraded(self, now: float) -> bool:
        """True while the breaker is open (degraded mode) at ``now``."""
        if self.open_until is None:
            return False
        if now >= self.open_until:
            self.open_until = None
            return False
        return True
