"""Admission control: the bounded front door of the serving layer.

Three mechanisms, all counted in the machine's metrics registry:

* **Bounded queue** — at most ``max_queue`` requests wait; an arrival
  past that is rejected immediately (backpressure to the client, state
  ``rejected_queue``).
* **Per-tenant quota** — at most ``tenant_quota`` requests per tenant
  may be queued *or running* at once; one tenant flooding the system
  cannot starve the others of queue slots (state ``rejected_quota``).
* **Timeout shedding** — a request that has waited longer than
  ``queue_timeout_s`` of simulated time is shed when the scheduler next
  touches the queue (state ``shed_timeout``); serving it would only add
  energy to a response the client has abandoned.

Counters: ``serve.admitted``, ``serve.rejected{reason=queue|quota}``,
``serve.shed``, and a ``serve.queue_depth`` gauge.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import ConfigError, ServeError
from repro.obs.metrics import MetricsRegistry
from repro.serve.request import (
    QUEUED,
    REJECTED_QUEUE,
    REJECTED_QUOTA,
    RUNNING,
    SHED_TIMEOUT,
    Request,
)


class AdmissionController:
    """Bounded, quota-aware queue in front of the scheduler."""

    def __init__(self, metrics: MetricsRegistry, max_queue: int = 64,
                 tenant_quota: Optional[int] = None,
                 queue_timeout_s: Optional[float] = None):
        if max_queue < 1:
            raise ConfigError(f"max_queue must be >= 1, got {max_queue}")
        if tenant_quota is not None and tenant_quota < 1:
            raise ConfigError(
                f"tenant_quota must be >= 1, got {tenant_quota}"
            )
        if queue_timeout_s is not None and queue_timeout_s <= 0:
            raise ConfigError(
                f"queue_timeout_s must be positive, got {queue_timeout_s}"
            )
        self.metrics = metrics
        self.max_queue = max_queue
        self.tenant_quota = tenant_quota
        self.queue_timeout_s = queue_timeout_s
        #: Waiting requests in arrival order.  A deque so the FIFO
        #: dispatch path (head take) is O(1) even at queue depths in the
        #: thousands; policies index/iterate it like a sequence.
        self.queue: deque[Request] = deque()
        #: Queued-or-running requests per tenant (quota denominator).
        self._in_flight: dict[str, int] = {}
        self.shed: list[Request] = []

    # ------------------------------------------------------------ arrivals

    def offer(self, request: Request, now: float,
              record: bool = True) -> bool:
        """Admit ``request`` or reject it with backpressure.

        Returns True when admitted (request joins the queue); on
        rejection the request's state records the reason and the
        matching counter increments.  Retry re-offers pass
        ``record=False`` so the admitted/rejected counters keep counting
        *first* offers only (their sum stays equal to issued requests).
        """
        self._shed_expired(now)
        if len(self.queue) >= self.max_queue:
            request.state = REJECTED_QUEUE
            request.finish_s = now
            if record:
                self.metrics.counter(
                    "serve.rejected", labels={"reason": "queue"}
                ).inc()
            return False
        tenant_load = self._in_flight.get(request.tenant, 0)
        if self.tenant_quota is not None and tenant_load >= self.tenant_quota:
            request.state = REJECTED_QUOTA
            request.finish_s = now
            if record:
                self.metrics.counter(
                    "serve.rejected", labels={"reason": "quota"}
                ).inc()
            return False
        request.state = QUEUED
        self.queue.append(request)
        self._in_flight[request.tenant] = tenant_load + 1
        if record:
            self.metrics.counter("serve.admitted").inc()
        self.metrics.gauge("serve.queue_depth").set(len(self.queue))
        return True

    # ------------------------------------------------------------ dispatch

    def _shed_expired(self, now: float) -> None:
        if self.queue_timeout_s is None:
            return
        kept: deque[Request] = deque()
        for request in self.queue:
            if now - request.arrival_s > self.queue_timeout_s:
                request.state = SHED_TIMEOUT
                request.finish_s = now
                self._release_tenant(request.tenant)
                self.shed.append(request)
                self.metrics.counter("serve.shed").inc()
            else:
                kept.append(request)
        if len(kept) != len(self.queue):
            self.queue = kept
            self.metrics.gauge("serve.queue_depth").set(len(self.queue))

    def take(self, request: Request, now: float) -> Request:
        """Remove ``request`` from the queue for dispatch; it stays in
        its tenant's in-flight count until :meth:`release`."""
        if self.queue and self.queue[0] is request:
            self.queue.popleft()  # FIFO fast path: head dispatch is O(1)
        else:
            try:
                self.queue.remove(request)
            except ValueError:
                raise ServeError(
                    f"request {request.request_id} is not queued "
                    f"(state={request.state!r})"
                ) from None
        request.state = RUNNING
        request.start_s = now
        self.metrics.gauge("serve.queue_depth").set(len(self.queue))
        return request

    def candidates(self, now: float) -> "deque[Request]":
        """The dispatchable queue, after shedding expired waiters."""
        self._shed_expired(now)
        return self.queue

    # ------------------------------------------------------------ completion

    def release(self, request: Request) -> None:
        """A dispatched request finished; free its quota slot."""
        self._release_tenant(request.tenant)

    def _release_tenant(self, tenant: str) -> None:
        count = self._in_flight.get(tenant, 0)
        if count <= 1:
            self._in_flight.pop(tenant, None)
        else:
            self._in_flight[tenant] = count - 1
