"""Workload drivers: who issues queries, and when.

Two standard load-generation shapes, both fully deterministic given the
root seed (every random draw comes from a per-client RNG derived via
:mod:`repro.seeding`):

* **Open loop** (:class:`OpenLoopDriver`) — a Poisson arrival process:
  each client issues at exponential interarrival times regardless of
  completions, so queueing pressure is independent of service rate.
  All arrival times are pre-generated; the run replays them.
* **Closed loop** (:class:`ClosedLoopDriver`) — each client keeps
  exactly one request outstanding: it issues, waits for a terminal
  state (completion, rejection, or shed all count — a rejected client
  retries with its next query), thinks for an exponential think time,
  and issues again.

Clients cycle through their mix's job cycle and are assigned
round-robin to tenants, which is what makes per-tenant quotas and
per-tenant energy accounting meaningful downstream.
"""

from __future__ import annotations

from itertools import accumulate, repeat
from typing import Optional

from repro.errors import ConfigError
from repro.seeding import derive_seed, seeded_rng
from repro.serve.request import JobTemplate
from repro.serve.workload import QueryMix

DRIVER_MODES = ("open", "closed")


def split_queries(n_queries: int, n_clients: int) -> list[int]:
    """Spread a query budget over clients as evenly as possible."""
    base, extra = divmod(n_queries, n_clients)
    return [base + (1 if i < extra else 0) for i in range(n_clients)]


class _ClientState:
    def __init__(self, index: int, jobs: tuple[JobTemplate, ...],
                 budget: int):
        self.index = index
        self.jobs = jobs
        self.budget = budget
        self.issued = 0

    def next_job(self) -> JobTemplate:
        job = self.jobs[self.issued % len(self.jobs)]
        self.issued += 1
        return job


class Driver:
    """Common shape: initial arrivals plus an optional reissue hook."""

    mode = "base"

    def __init__(self, mix: QueryMix, n_clients: int, n_queries: int,
                 seed: int, tenants: int):
        if n_clients < 1:
            raise ConfigError(f"need at least one client, got {n_clients}")
        if n_queries < 1:
            raise ConfigError(f"need at least one query, got {n_queries}")
        if tenants < 1:
            raise ConfigError(f"need at least one tenant, got {tenants}")
        self.mix = mix
        self.n_clients = n_clients
        self.n_queries = n_queries
        self.seed = seed
        self.tenants = tenants
        budgets = split_queries(n_queries, n_clients)
        self.clients = [
            _ClientState(i, mix.jobs_for_client(i), budgets[i])
            for i in range(n_clients)
        ]

    def tenant_of(self, client_index: int) -> str:
        return f"tenant{client_index % self.tenants}"

    def initial_arrivals(self) -> list[tuple[float, int, JobTemplate]]:
        """``(arrival_s, client_index, job)`` triples known up front."""
        raise NotImplementedError

    def initial_arrival_entries(self) -> list[tuple]:
        """The initial arrivals as ready-made event-heap entries
        ``(arrival_s, seq, client_index, job)``, generated in bulk.

        The list is sorted by ``(arrival_s, seq)`` with ``seq`` numbered
        in arrival order, so it is already a valid heap and the server
        can adopt it wholesale instead of pushing one entry at a time.
        """
        return [
            (t, seq, client, job)
            for seq, (t, client, job) in enumerate(self.initial_arrivals())
        ]

    def on_terminal(self, client_index: int,
                    now: float) -> Optional[tuple[float, JobTemplate]]:
        """Called when a client's request reaches a terminal state.
        Returns the client's next ``(arrival_s, job)`` or None."""
        return None


class OpenLoopDriver(Driver):
    """Seeded-Poisson arrivals, issued independently of completions."""

    mode = "open"

    def __init__(self, mix: QueryMix, n_clients: int, n_queries: int,
                 seed: int, tenants: int, rate_qps: float):
        super().__init__(mix, n_clients, n_queries, seed, tenants)
        if rate_qps <= 0:
            raise ConfigError(f"arrival rate must be positive, got {rate_qps}")
        self.rate_qps = rate_qps

    def initial_arrivals(self):
        per_client_rate = self.rate_qps / self.n_clients
        arrivals = []
        for client in self.clients:
            rng = seeded_rng(
                derive_seed(self.seed, "serve", "open",
                            f"c{client.index}", "arrivals"),
                "open-loop arrivals",
            )
            # Draw the whole interarrival array at once, prefix-sum it,
            # then zip with the client's job cycle — bulk generation
            # instead of one append per draw.
            expovariate = rng.expovariate
            gaps = [expovariate(per_client_rate)
                    for _ in range(client.budget)]
            index = client.index
            arrivals.extend(zip(
                accumulate(gaps),
                repeat(index, client.budget),
                (client.next_job() for _ in range(client.budget)),
            ))
        arrivals.sort(key=lambda a: (a[0], a[1]))
        return arrivals


class ClosedLoopDriver(Driver):
    """One outstanding request per client, with think time between."""

    mode = "closed"

    def __init__(self, mix: QueryMix, n_clients: int, n_queries: int,
                 seed: int, tenants: int, think_s: float):
        super().__init__(mix, n_clients, n_queries, seed, tenants)
        if think_s < 0:
            raise ConfigError(f"think time must be >= 0, got {think_s}")
        self.think_s = think_s
        self._think_rngs = [
            seeded_rng(
                derive_seed(seed, "serve", "closed", f"c{i}", "think"),
                "closed-loop think time",
            )
            for i in range(n_clients)
        ]

    def _think(self, client_index: int) -> float:
        if self.think_s == 0:
            return 0.0
        return self._think_rngs[client_index].expovariate(1.0 / self.think_s)

    def initial_arrivals(self):
        arrivals = []
        for client in self.clients:
            if client.budget > 0:
                arrivals.append((0.0, client.index, client.next_job()))
        return arrivals

    def on_terminal(self, client_index: int, now: float):
        client = self.clients[client_index]
        if client.issued >= client.budget:
            return None
        return (now + self._think(client_index), client.next_job())


def make_driver(mode: str, mix: QueryMix, *, n_clients: int, n_queries: int,
                seed: int, tenants: int, rate_qps: float,
                think_s: float) -> Driver:
    if mode == "open":
        return OpenLoopDriver(mix, n_clients, n_queries, seed, tenants,
                              rate_qps)
    if mode == "closed":
        return ClosedLoopDriver(mix, n_clients, n_queries, seed, tenants,
                                think_s)
    raise ConfigError(f"unknown driver mode {mode!r}; known: {DRIVER_MODES}")
