"""Simulator performance harness behind ``repro bench``.

Measures how fast the *simulator itself* runs — micro-ops simulated per
wall-clock second, wall-seconds per TPC-H query, serve requests per
second — in both execution modes (``reference`` vs ``batched``), and
writes the results to ``BENCH_simperf.json`` at the repository root.
This is the project's recorded performance trajectory and the CI
regression gate (see ``.github/workflows/ci.yml``, job ``bench-smoke``).

The headline metrics are the *scan paths*: the sequential line-scan
access pattern that dominates the paper's fig07 (TPC-H breakdown) and
fig08 (data-size sweep) workloads.  ``fig07_tpch_scan`` measures the
steady-state (L1D-resident) table-scan inner loop; ``fig08_datasize_scan``
measures the same hot-scan regime at each fig08 data tier;
``cold_stream_scan`` reports the DRAM-streaming (all-miss) regime so the
fast path's worst case is visible too.  Query wall-clock (Q1/Q6) and a
serve run round out the picture.

Every throughput comparison first re-runs the workload in both modes on
one machine pair and asserts identical PMU counters — the bench refuses
to report a speedup that drifts.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

from repro.config import intel_i7_4790
from repro.sim.machine import Machine

#: Result schema version, bumped on layout changes.  v2 added the
#: ``schema_version`` stamp (``repro diff`` keys on it) and per-section
#: wall times in ``sections_wall_s``.  v3 added the ``optimizer``
#: section (measured optimizer-vs-hand-built energy gate).  v4 split
#: ``serve`` into ``tpch`` (plan-backed mix) and ``engine`` (the
#: ``points`` mix, where the serve core itself is the bottleneck) and
#: added the closed-loop ``serve_scale`` section.  v5 added the
#: ``cluster`` section (J/query and p99 across node counts and fault
#: rates, with the cluster-wide energy-conservation and cross-mode
#: identity gates).  v6 extended ``serve.tpch`` with the cross-mode and
#: run_rows-vs-next report-identity flags and gated the section (ratio
#: vs baseline plus the absolute :data:`SERVE_TPCH_MIN_SPEEDUP` floor).
SCHEMA_VERSION = 6

#: Absolute floor for the ``serve.tpch`` batched/reference speedup: the
#: batched-session path must never regress below the seed revision's
#: measured 1.22x, whatever the baseline file says.
SERVE_TPCH_MIN_SPEEDUP = 1.22

#: Default output file, at the repository root by convention.
DEFAULT_OUT = "BENCH_simperf.json"

#: fig08 data tiers (mirrors repro.analysis.experiments.fig08).
FIG08_TIERS = ("100MB", "500MB", "1GB")


# --------------------------------------------------------------- primitives

def _scan_machine(mode: str) -> tuple[Machine, int, int]:
    """A full-size (scale=1) machine plus an L1D-resident buffer base."""
    machine = Machine(intel_i7_4790(scale=1), exec_mode=mode)
    n_lines = (machine.hierarchy.l1d.size // 64) * 7 // 8
    base = machine.address_space.alloc_lines(n_lines, "bench-scan").base
    return machine, base, n_lines


#: Timing windows per measurement.  Short timed regions under-report
#: throughput (CPU frequency ramp, cold branch predictors), so each
#: primitive is timed as the best of WINDOWS equal slices — stable to
#: within a few percent across rep counts, which is what lets the CI
#: ``--quick`` run be gated against the committed full-run baseline.
WINDOWS = 5


def _warm_scan_mops(mode: str, reps: int) -> tuple[float, dict]:
    """Steady-state sequential scan: an L1D-resident buffer rescanned."""
    machine, base, n_lines = _scan_machine(mode)
    machine.scan_lines(base, n_lines)
    machine.scan_lines(base, n_lines)  # enter steady state in both modes
    per = max(1, reps // WINDOWS)
    best = 0.0
    for _ in range(WINDOWS):
        t0 = time.perf_counter()
        for _ in range(per):
            machine.scan_lines(base, n_lines)
        elapsed = time.perf_counter() - t0
        best = max(best, n_lines * per / elapsed)
    machine.settle()
    return best, machine.cpu.counters.as_dict()


def _cold_scan_mops(mode: str, reps: int) -> tuple[float, dict]:
    """Streaming scan over a buffer 4x the L3: every line misses."""
    machine = Machine(intel_i7_4790(scale=16), exec_mode=mode)
    n_lines = (machine.hierarchy.l3.size * 4) // 64
    base = machine.address_space.alloc_lines(n_lines, "bench-cold").base
    # One untimed pass: the very first scan mixes in one-off work
    # (prefetcher training from nothing, filling empty caches) that is
    # not the streaming regime.  After it, every rep still misses on
    # every line (the buffer is 4x the L3), which is the regime this
    # entry reports — and a 1-rep --quick run then measures the same
    # thing the full run's best-of-reps does, so the CI gate can
    # compare the two.
    machine.scan_lines(base, n_lines)
    best = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        machine.scan_lines(base, n_lines)
        elapsed = time.perf_counter() - t0
        best = max(best, n_lines / elapsed)
    machine.settle()
    return best, machine.cpu.counters.as_dict()


def _row_load_run_mops(mode: str, rows: int) -> tuple[float, dict]:
    """The table-scan row shape: one short load_run per row over a
    buffer-pool-resident page (the repro.db seq_scan inner loop)."""
    machine = Machine(intel_i7_4790(scale=1), exec_mode=mode)
    base = machine.address_space.alloc_lines(64, "bench-page").base
    offsets = (0, 8, 16, 24, 40, 56)
    ex = machine.exec
    ex.load_run(base, offsets)  # fill the lines once
    per = max(1, rows // WINDOWS)
    best = 0.0
    done = 0
    for _ in range(WINDOWS):
        t0 = time.perf_counter()
        for i in range(done, done + per):
            ex.load_run(base + (i % 56) * 64, offsets)
        elapsed = time.perf_counter() - t0
        done += per
        best = max(best, per * len(offsets) / elapsed)
    machine.settle()
    return best, machine.cpu.counters.as_dict()


def _compare(fn, reps: int) -> dict:
    """Run one primitive in both modes; assert zero counter drift."""
    ref_rate, ref_counters = fn("reference", reps)
    bat_rate, bat_counters = fn("batched", reps)
    if ref_counters != bat_counters:
        drifted = sorted(
            k for k in ref_counters
            if ref_counters[k] != bat_counters[k]
        )
        raise AssertionError(
            f"counter drift between exec modes: {drifted}"
        )
    return {
        "reference_mops": round(ref_rate / 1e6, 4),
        "batched_mops": round(bat_rate / 1e6, 4),
        "speedup": round(bat_rate / ref_rate, 2),
        "counters_identical": True,
    }


# ------------------------------------------------------------------ queries

def _tpch_seconds(tier: str, queries: tuple) -> dict:
    from repro.analysis.lab import Lab, LabConfig
    from repro.workloads.tpch import run_query

    out: dict = {}
    for mode in ("reference", "batched"):
        lab = Lab(LabConfig(scale=16, tier=tier, exec_mode=mode))
        db = lab.database("postgresql")
        for number in queries:
            run_query(db, number)  # warm the buffer pool and caches
            t0 = time.perf_counter()
            run_query(db, number)
            elapsed = time.perf_counter() - t0
            out.setdefault(f"Q{number}", {})[f"{mode}_s"] = round(elapsed, 4)
    for name, entry in out.items():
        entry["speedup"] = round(entry["reference_s"] / entry["batched_s"], 2)
    return out


def _serve_rps(queries: int) -> dict:
    from repro.db.engine import SessionRows
    from repro.serve import ServeConfig, run_serve

    def run(mode: str) -> tuple[dict, float]:
        config = ServeConfig(
            tier="10MB", queries=queries, clients=4, seed=7,
            exec_mode=mode,
        )
        t0 = time.perf_counter()
        report = run_serve(config)
        return report, time.perf_counter() - t0

    out: dict = {}
    canonical: dict = {}
    for mode in ("reference", "batched"):
        report, elapsed = run(mode)
        completed = report["counts"]["completed"]
        out[mode] = {
            "completed": completed,
            "wall_s": round(elapsed, 3),
            "requests_per_s": round(completed / elapsed, 2),
        }
        report.pop("config", None)
        canonical[mode] = json.dumps(report, sort_keys=True)
    out["speedup"] = round(
        out["batched"]["requests_per_s"] / out["reference"]["requests_per_s"],
        2,
    )
    # The speedup only counts if nothing observable moved: the whole
    # report (per-tenant joules, latencies, counters) must match across
    # engines byte for byte once the exec_mode config field is dropped.
    out["reports_identical"] = canonical["reference"] == canonical["batched"]
    # ...and across quantum protocols: hiding SessionRows.run_rows
    # forces the serve loop onto the legacy per-row __next__ quantum,
    # which must charge the exact same micro-ops.
    saved = SessionRows.run_rows
    try:
        del SessionRows.run_rows
        report, _ = run("batched")
    finally:
        SessionRows.run_rows = saved
    report.pop("config", None)
    out["run_rows_vs_next_identical"] = (
        json.dumps(report, sort_keys=True) == canonical["batched"]
    )
    return out


def _points_engine_rps(queries: int) -> dict:
    """Cross-mode serve run on the ``points`` mix: the engine headline.

    ``points`` requests are pure micro-ops whose work iterator speaks
    the batched-quantum protocol (``run_rows``), so this entry measures
    the serve core itself — event loop, admission, scheduling, spans —
    rather than plan interpretation.  Both modes must produce the exact
    same report once the ``exec_mode`` config field is dropped; that is
    the bit-identity contract extended to the whole serve report
    (per-tenant joules, latency percentiles, counters, everything).
    """
    from repro.serve import ServeConfig, run_serve

    out: dict = {}
    reports: dict = {}
    for mode in ("reference", "batched"):
        config = ServeConfig(
            workload="points", queries=queries, clients=8, seed=7,
            exec_mode=mode,
        )
        t0 = time.perf_counter()
        report = run_serve(config)
        elapsed = time.perf_counter() - t0
        reports[mode] = report
        completed = report["counts"]["completed"]
        out[mode] = {
            "completed": completed,
            "wall_s": round(elapsed, 3),
            "requests_per_s": round(completed / elapsed, 2),
            "quanta_per_s": round(report["clock"]["quanta"] / elapsed, 2),
        }
    for report in reports.values():
        del report["config"]["exec_mode"]
    if reports["reference"] != reports["batched"]:
        raise AssertionError(
            "serve report drift between exec modes on the points mix"
        )
    out["reports_identical"] = True
    out["speedup"] = round(
        out["batched"]["requests_per_s"] / out["reference"]["requests_per_s"],
        2,
    )
    return out


def _serve_scale(quick: bool) -> dict:
    """Closed-loop many-tenant scenario, batched engine only.

    The full run serves a million ``points`` requests from 2000 clients
    across 1000 tenants (8 cores, MPL 4, sampling telemetry) — the
    scale the event-driven core exists for.  The quick variant keeps
    the same shape at 50k requests so CI can gate requests/s against
    the committed full-run baseline (same steady-state regime, just a
    shorter window).  No reference-mode pair: a reference run at this
    scale would take hours; cross-mode identity is covered by the
    ``engine`` section and the equivalence test suite.
    """
    from repro.serve import ServeConfig, run_serve

    queries, clients, tenants = (
        (50_000, 400, 200) if quick else (1_000_000, 2000, 1000)
    )
    # Closed-loop clients park at most one request each in the queue,
    # so the bound sits just above the client count: real admission
    # pressure without shedding the steady state.
    config = ServeConfig(
        workload="points", mode="closed", queries=queries,
        clients=clients, tenants=tenants, cores=8, mpl=4,
        max_queue=clients + 112, telemetry="sampler", seed=7,
        exec_mode="batched",
    )
    t0 = time.perf_counter()
    report = run_serve(config)
    elapsed = time.perf_counter() - t0
    counts = report["counts"]
    return {
        "queries": queries,
        "clients": clients,
        "tenants": tenants,
        "completed": counts["completed"],
        "wall_s": round(elapsed, 3),
        "requests_per_s": round(counts["completed"] / elapsed, 2),
        "quanta_per_s": round(report["clock"]["quanta"] / elapsed, 2),
        "tenants_reported": len(report["tenants"]),
    }


#: Cluster bench cells: node counts x injected fault rates.  The
#: metrics are *simulated* joules and seconds — deterministic and
#: host-independent — so quick and full runs produce identical cells
#: and the committed baseline gates both exactly.
CLUSTER_NODE_COUNTS = (2, 4)
CLUSTER_FAULT_RATES = (0.0, 0.05)


def _cluster_section(quick: bool) -> dict:
    """Sharded scatter-gather cluster: J/query and p99 latency across
    node counts and fault rates, plus the conservation and cross-mode
    identity gates.

    Every cell asserts the cluster-wide energy-conservation identity
    (useful + wasted == active, exactly); the faulty 2-node cell is
    additionally run in both exec modes and the reports compared byte
    for byte (``exec_mode`` dropped) — the bit-identity contract
    extended to the whole cluster.
    """
    from repro.cluster import ClusterConfig, run_cluster
    from repro.faults import FaultPlan

    del quick  # same cells either way: the metrics are simulated time

    def config(nodes: int, rate: float, mode: str = "batched"):
        return ClusterConfig(
            nodes=nodes, replication=2, clients=4, queries=24,
            tier="10MB", seed=7, exec_mode=mode,
            faults=(FaultPlan(node_crash_p=rate, net_drop_p=rate)
                    if rate > 0.0 else None),
        )

    cells: dict = {}
    for nodes in CLUSTER_NODE_COUNTS:
        for rate in CLUSTER_FAULT_RATES:
            t0 = time.perf_counter()
            report = run_cluster(config(nodes, rate))
            elapsed = time.perf_counter() - t0
            energy = report["energy"]
            counts = report["counts"]
            active = energy["active_energy_j"]
            conserved = (energy["useful_energy_j"]
                         + energy["wasted_energy_j"] == active)
            cells[f"n{nodes}_f{rate:g}"] = {
                "nodes": nodes,
                "fault_rate": rate,
                "completed": counts["completed"],
                "degraded_partial": counts["degraded_partial"],
                "failed": counts["failed"],
                "energy_per_query_j": energy["energy_per_query_j"],
                "p99_s": report["latency_s"]["p99_s"],
                "wasted_share": (energy["wasted_energy_j"] / active
                                 if active else 0.0),
                "failovers": report["subrequests"]["failovers"],
                "hedges": report["subrequests"]["hedges"],
                "conservation_ok": conserved,
                "wall_s": round(elapsed, 3),
            }

    reports = {}
    for mode in ("reference", "batched"):
        report = run_cluster(config(2, CLUSTER_FAULT_RATES[-1], mode))
        del report["config"]["exec_mode"]
        reports[mode] = report
    return {
        "cells": cells,
        "reports_identical": reports["reference"] == reports["batched"],
    }


def _optimizer_section(quick: bool) -> dict:
    """Measured optimizer-vs-hand-built energy over TPC-H plans.

    Always runs at the 10MB tier (bench wall-clock budget); the quick
    variant covers the subset that exercises every pass family, the
    full one all 22 queries.  The summary is self-gated in
    :func:`check_regression`: any measured energy regression or result
    mismatch fails the bench outright.
    """
    from repro.workloads.tpch.optimize import run_optimizer_bench

    doc = run_optimizer_bench(quick=quick, tier="10MB")
    ratios = {
        engine: {
            name: round(entry["ratio"], 6)
            for name, entry in per_engine.items()
        }
        for engine, per_engine in doc["engines"].items()
    }
    return {"tier": doc["tier"], "summary": doc["summary"],
            "ratios": ratios}


# -------------------------------------------------------------------- entry

def run_bench(quick: bool = False) -> dict:
    """Run the full harness; returns the JSON-serialisable report."""
    warm_reps = 60 if quick else 400
    cold_reps = 1 if quick else 3
    rows = 20_000 if quick else 100_000
    walls: dict = {}

    def timed(section: str, fn):
        t0 = time.perf_counter()
        out = fn()
        walls[section] = round(time.perf_counter() - t0, 3)
        return out

    results = {
        "version": SCHEMA_VERSION,
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "generated_unix": int(time.time()),
        "scan_path": {
            "fig07_tpch_scan": timed(
                "scan_path.fig07_tpch_scan",
                lambda: _compare(_warm_scan_mops, warm_reps)),
            "fig08_datasize_scan": {
                tier: timed(
                    f"scan_path.fig08.{tier}",
                    lambda: _compare(_warm_scan_mops, warm_reps // 2))
                for tier in FIG08_TIERS
            },
            "cold_stream_scan": timed(
                "scan_path.cold_stream_scan",
                lambda: _compare(_cold_scan_mops, cold_reps)),
        },
        "row_load_run": timed(
            "row_load_run", lambda: _compare(_row_load_run_mops, rows)),
        "tpch": timed("tpch", lambda: _tpch_seconds(
            "10MB" if quick else "100MB", (1, 6))),
        "serve": {
            "tpch": timed(
                "serve.tpch", lambda: _serve_rps(20 if quick else 120)),
            "engine": timed(
                "serve.engine",
                lambda: _points_engine_rps(200 if quick else 2000)),
        },
        "serve_scale": timed("serve_scale", lambda: _serve_scale(quick)),
        "cluster": timed("cluster", lambda: _cluster_section(quick)),
        "optimizer": timed("optimizer", lambda: _optimizer_section(quick)),
    }
    results["sections_wall_s"] = walls
    return results


def check_regression(current: dict, baseline: dict,
                     max_regression: float = 0.30) -> list[str]:
    """Compare batched ops/sec against a baseline report.

    Returns a list of human-readable failures (empty = pass).  Only
    throughput metrics are gated — wall-clock metrics vary too much
    across machines to gate on.
    """
    failures = []

    def gate(name: str, new: Optional[float], old: Optional[float]) -> None:
        if not new or not old:
            return
        if new < old * (1.0 - max_regression):
            failures.append(
                f"{name}: {new:.3f} Mops/s is more than "
                f"{max_regression:.0%} below baseline {old:.3f}"
            )

    new_scan = current.get("scan_path", {})
    old_scan = baseline.get("scan_path", {})
    for key in ("fig07_tpch_scan", "cold_stream_scan"):
        gate(
            key,
            new_scan.get(key, {}).get("batched_mops"),
            old_scan.get(key, {}).get("batched_mops"),
        )
        # Absolute Mops/s tracks the host machine; the batched/reference
        # *ratio* tracks the code.  Gate the ratio too so a fast-path
        # rot (e.g. the cold-stride preconditions silently failing and
        # every scan falling back to the generic walk) fails CI even on
        # a faster runner.
        new_ratio = new_scan.get(key, {}).get("speedup")
        old_ratio = old_scan.get(key, {}).get("speedup")
        if new_ratio and old_ratio:
            if new_ratio < old_ratio * (1.0 - max_regression):
                failures.append(
                    f"{key}: speedup {new_ratio:.2f}x is more than "
                    f"{max_regression:.0%} below baseline {old_ratio:.2f}x"
                )
        # The speedup is meaningless unless both modes produced the
        # exact same PMU counters (the bit-identity contract).
        entry = new_scan.get(key)
        if entry is not None and not entry.get("counters_identical", False):
            failures.append(f"{key}: counters_identical is not true")
    gate(
        "row_load_run",
        current.get("row_load_run", {}).get("batched_mops"),
        baseline.get("row_load_run", {}).get("batched_mops"),
    )

    def gate_ratio(name: str, new_ratio, old_ratio) -> None:
        if new_ratio and old_ratio:
            if new_ratio < old_ratio * (1.0 - max_regression):
                failures.append(
                    f"{name}: speedup {new_ratio:.2f}x is more than "
                    f"{max_regression:.0%} below baseline {old_ratio:.2f}x"
                )

    # Serve engine: the cross-mode speedup ratio tracks the code (both
    # runs share the host), so gate it against the baseline's ratio;
    # the report-identity flag is absolute — a speedup bought by
    # drifting per-tenant joules is not a speedup.
    new_engine = current.get("serve", {}).get("engine")
    old_engine = baseline.get("serve", {}).get("engine", {})
    if new_engine is not None:
        if not new_engine.get("reports_identical", False):
            failures.append("serve.engine: reports_identical is not true")
        gate_ratio("serve.engine", new_engine.get("speedup"),
                   old_engine.get("speedup"))
    elif baseline.get("serve", {}).get("engine") is not None:
        failures.append("serve.engine: section missing from current report")
    # serve.tpch: plan-backed SQL serving through batched run_rows
    # sessions.  Same conventions as serve.engine (ratio vs baseline,
    # identity absolute), plus an absolute speedup floor: the batched
    # path must never fall below the seed revision's measured ratio.
    new_tpch = current.get("serve", {}).get("tpch")
    old_tpch = baseline.get("serve", {}).get("tpch", {})
    if new_tpch is not None:
        if not new_tpch.get("reports_identical", False):
            failures.append("serve.tpch: reports_identical is not true")
        if not new_tpch.get("run_rows_vs_next_identical", False):
            failures.append(
                "serve.tpch: run_rows_vs_next_identical is not true")
        gate_ratio("serve.tpch", new_tpch.get("speedup"),
                   old_tpch.get("speedup"))
        speedup = new_tpch.get("speedup")
        if speedup and speedup < SERVE_TPCH_MIN_SPEEDUP:
            failures.append(
                f"serve.tpch: speedup {speedup:.2f}x is below the "
                f"absolute {SERVE_TPCH_MIN_SPEEDUP:.2f}x floor "
                "(batched-session serving regressed past the seed)"
            )
    elif baseline.get("serve", {}).get("tpch") is not None:
        failures.append("serve.tpch: section missing from current report")
    # TPC-H query wall-clock tracks the host; the mode ratio tracks the
    # code (history: Q1 once dipped to 0.94x when the batched cold-load
    # path built a Python address list per row).
    for name, old_entry in baseline.get("tpch", {}).items():
        new_entry = current.get("tpch", {}).get(name)
        if new_entry is not None:
            gate_ratio(f"tpch.{name}", new_entry.get("speedup"),
                       old_entry.get("speedup"))
    # serve_scale: absolute requests/s vs baseline, same convention as
    # the Mops gates (quick and full runs measure the same steady-state
    # regime, so the committed full-run baseline gates the CI quick run).
    new_scale = current.get("serve_scale", {}).get("requests_per_s")
    old_scale = baseline.get("serve_scale", {}).get("requests_per_s")
    if new_scale and old_scale:
        if new_scale < old_scale * (1.0 - max_regression):
            failures.append(
                f"serve_scale: {new_scale:.0f} requests/s is more than "
                f"{max_regression:.0%} below baseline {old_scale:.0f}"
            )
    elif baseline.get("serve_scale") is not None and new_scale is None:
        failures.append("serve_scale: section missing from current report")
    # Cluster: the cell metrics are simulated joules/seconds, which are
    # deterministic — but hosts differ in float-identical ways only for
    # the same code, so gate with the same fractional tolerance as the
    # throughput metrics.  Conservation and cross-mode identity are
    # absolute: they must hold on any host.
    new_cluster = current.get("cluster")
    old_cluster = baseline.get("cluster", {})
    if new_cluster is not None:
        if not new_cluster.get("reports_identical", False):
            failures.append("cluster: reports_identical is not true")
        for name, old_cell in old_cluster.get("cells", {}).items():
            new_cell = new_cluster.get("cells", {}).get(name)
            if new_cell is None:
                failures.append(f"cluster.{name}: cell missing from "
                                "current report")
                continue
            if not new_cell.get("conservation_ok", False):
                failures.append(
                    f"cluster.{name}: energy conservation identity broke")
            for metric in ("energy_per_query_j", "p99_s"):
                new_value = new_cell.get(metric)
                old_value = old_cell.get(metric)
                if not new_value or not old_value:
                    continue
                if new_value > old_value * (1.0 + max_regression):
                    failures.append(
                        f"cluster.{name}: {metric} {new_value:.4g} is "
                        f"more than {max_regression:.0%} above baseline "
                        f"{old_value:.4g}"
                    )
    elif baseline.get("cluster") is not None:
        failures.append("cluster: section missing from current report")
    # The optimizer section self-gates: its invariants (never a measured
    # energy regression, always identical results) hold on any host, so
    # they are checked absolutely rather than against the baseline.
    summary = current.get("optimizer", {}).get("summary")
    if summary is not None:
        if summary.get("result_mismatches", 0):
            failures.append(
                f"optimizer: {summary['result_mismatches']} optimized "
                "plans returned different results"
            )
        if summary.get("regressions", 0):
            failures.append(
                f"optimizer: {summary['regressions']} queries measured "
                "more energy with the optimized plan"
            )
        if not summary.get("wins", 0):
            failures.append("optimizer: no query measured a strict win")
    elif baseline.get("optimizer") is not None:
        failures.append("optimizer: section missing from current report")
    return failures


def write_report(results: dict, path: str = DEFAULT_OUT) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
