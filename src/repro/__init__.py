"""repro - reproduction of "Micro Analysis to Enable Energy-Efficient
Database Systems" (EDBT 2020).

The public API is organised in layers:

* :mod:`repro.sim` - simulated measurement platform (CPU, caches, RAPL,
  DVFS, disk, TCM);
* :mod:`repro.micro` - the paper's section-2 micro-benchmark sets (MBS, VMBS);
* :mod:`repro.core` - the contribution: calibration of per-micro-op
  energy, Busy-CPU energy breakdown, verification, profiling;
* :mod:`repro.db` - the mini relational engine with PostgreSQL-, SQLite-
  and MySQL-like profiles;
* :mod:`repro.workloads` - TPC-H, the 7 basic query operations, and the
  CPU2006-like kernels;
* :mod:`repro.tcm` - the section-4 DTCM proof-of-concept;
* :mod:`repro.analysis` - one callable per paper table/figure.
"""

from repro.config import (
    CacheConfig,
    MachineConfig,
    arm1176jzf_s,
    intel_i7_4790,
    tiny_arm,
    tiny_intel,
)
from repro.sim.machine import Machine

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "MachineConfig",
    "arm1176jzf_s",
    "intel_i7_4790",
    "tiny_arm",
    "tiny_intel",
    "Machine",
    "__version__",
]
