"""Traversal frameworks for the micro-benchmarks (§2.5.1, Figure 4).

Two designs, exactly as the paper motivates:

* **list traversal** — items form a pointer chain, so every load depends
  on the previous one; out-of-order execution and speculation cannot
  hide the latency, which isolates ``dE_m + dE_stall`` for the memory
  layer ``m`` the chain lives in;
* **array traversal** — item addresses are known up front, the pipeline
  stays full (dual-issue on the Intel preset), which isolates the pure
  load energy without stall cycles.

Items are 64 bytes (one cache line) so that one load instruction touches
one line; a traversal over ``n`` items touches ``n`` distinct lines once
per round.

``shuffled_chain_order`` implements Algorithm 3's logical-position
shuffle (Figure 4d): the chain visits lines in a randomised order where
consecutive hops are at least ``span_threshold`` lines apart, breaking
spatial locality so that a chain bigger than a cache level reliably
misses it.  The shuffle is deterministic given the seed.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.sim.address_space import Region
from repro.sim.machine import Machine

#: One item per cache line, as in the paper's Figure 4.
ITEM_BYTES = 64

#: Loop-control overhead modelled per fully-unrolled traversal round:
#: the paper unrolls the body so that >97% of instructions are the
#: desired loads (Table 1's BLI column); a small per-block residue of
#: compare/branch/other remains.
_UNROLL_BLOCK = 128


def sequential_order(n_items: int) -> range:
    """Physical order 0..n-1 — what array traversal uses."""
    return range(n_items)


def shuffled_chain_order(
    n_items: int, span_threshold: Optional[int] = None, seed: int = 1234
) -> list[int]:
    """Algorithm 3's randomised logical order with a minimum hop span.

    Starts from the identity order and exchanges each position with a
    random partner at least ``span_threshold`` away (default: an eighth
    of the item count), rejecting logical-neighbour swaps — a faithful
    rendering of the paper's lines 7-11.
    """
    if n_items <= 0:
        raise ConfigError("chain needs at least one item")
    if n_items <= 3:
        return list(range(n_items))
    span = span_threshold if span_threshold is not None else max(2, n_items // 8)
    span = min(span, n_items - 2)
    rng = random.Random(seed)
    order = list(range(n_items))
    for z in range(n_items - 1):
        for _ in range(16):  # bounded retries to satisfy the span constraint
            e = rng.randrange(1, n_items - 1)
            if abs(z - e) > span and abs(order[z] - order[e]) > 1:
                order[z], order[e] = order[e], order[z]
                break
    return order


def _loop_overhead(machine: Machine, n_items: int) -> None:
    """Residual loop-control instructions after full unrolling."""
    blocks = max(1, n_items // _UNROLL_BLOCK)
    machine.cmp(blocks)
    machine.branch(blocks)
    machine.other(blocks)


def list_traverse(
    machine: Machine,
    region: Region,
    order: Sequence[int],
    rounds: int,
    add_per_item: int = 0,
    nop_per_item: int = 0,
) -> None:
    """Pointer-chase the chain ``rounds`` times (dependent loads).

    ``add_per_item`` / ``nop_per_item`` inject a known number of compute
    instructions between hops — how the paper derives its verification
    benchmarks (B_L1D_list_nop etc., §2.5.5) from the base ones.
    """
    addrs = [region.line(i) for i in order]
    if not add_per_item and not nop_per_item:
        # Pure pointer chase: hand the whole chain to the execution
        # engine per round (one call instead of one per hop).
        load_list = machine.exec.load_list
        for _ in range(rounds):
            load_list(addrs, True)
            _loop_overhead(machine, len(addrs))
        return
    load = machine.load
    add = machine.add
    nop = machine.nop
    for _ in range(rounds):
        for addr in addrs:
            load(addr, True)
            if add_per_item:
                add(add_per_item)
            if nop_per_item:
                nop(nop_per_item)
        _loop_overhead(machine, len(addrs))


def array_traverse(
    machine: Machine,
    region: Region,
    n_items: int,
    rounds: int,
    add_per_item: int = 0,
    nop_per_item: int = 0,
) -> None:
    """Sequentially read the array ``rounds`` times (independent loads)."""
    base = region.base
    if not add_per_item and not nop_per_item:
        # ITEM_BYTES == LINE_SIZE: one independent load per line is
        # exactly a line scan.
        scan_lines = machine.scan_lines
        for _ in range(rounds):
            scan_lines(base, n_items)
            _loop_overhead(machine, n_items)
        return
    load = machine.load
    add = machine.add
    nop = machine.nop
    for _ in range(rounds):
        for i in range(n_items):
            load(base + i * ITEM_BYTES)
            if add_per_item:
                add(add_per_item)
            if nop_per_item:
                nop(nop_per_item)
        _loop_overhead(machine, n_items)


def store_loop(
    machine: Machine,
    region: Region,
    rounds: int,
    unroll: int,
) -> None:
    """Algorithm 4 (B_Reg2L1D): repeatedly store to one 64-byte variable.

    The value lives in a register; only the store micro-operation touches
    L1D, and after the first write-allocate every store hits.
    """
    addr = region.base
    store_repeat = machine.exec.store_repeat
    for _ in range(rounds):
        store_repeat(addr, unroll)
        _loop_overhead(machine, unroll)


def compute_loop(machine: Machine, kind: str, rounds: int, unroll: int) -> None:
    """B_add / B_nop: a known number of one instruction class."""
    if kind == "add":
        op = machine.add
    elif kind == "nop":
        op = machine.nop
    else:
        raise ConfigError(f"unknown compute loop kind {kind!r}")
    for _ in range(rounds):
        op(unroll)
        _loop_overhead(machine, unroll)


def interleaved_list_traverse(
    machine: Machine,
    regions_and_orders: Sequence[tuple[Region, Sequence[int]]],
    rounds: int,
) -> None:
    """Alternate whole-chain traversals over several chains per round.

    Used by the verification benchmark B_L1D_list_L2, which mixes an
    L1D-resident chain with an L2-resident chain (§2.5.5).
    """
    chains = [
        [region.line(i) for i in order] for region, order in regions_and_orders
    ]
    load_list = machine.exec.load_list
    for _ in range(rounds):
        for addrs in chains:
            load_list(addrs, True)
            _loop_overhead(machine, len(addrs))
