"""Micro-benchmarks (MBS), verification set (VMBS), and the measurement
procedure of the paper's §2."""

from repro.micro.benchmarks import (
    BLI_CLASSES,
    MBS,
    PreparedBenchmark,
    default_rounds,
    mbs_for,
    prepare,
)
from repro.micro.measurement import (
    DOMAIN_CORE,
    DOMAIN_PACKAGE,
    DOMAIN_PACKAGE_DRAM,
    BackgroundRates,
    Measurement,
    measure_background,
    run_measured,
    select_domain,
)
from repro.micro.runner import (
    MicroResult,
    RuntimeConfig,
    apply_runtime_config,
    run_microbenchmark,
    run_prepared,
)
from repro.micro.verification import VMBS, prepare_verification, vmbs_for

__all__ = [
    "BLI_CLASSES",
    "MBS",
    "PreparedBenchmark",
    "default_rounds",
    "mbs_for",
    "prepare",
    "DOMAIN_CORE",
    "DOMAIN_PACKAGE",
    "DOMAIN_PACKAGE_DRAM",
    "BackgroundRates",
    "Measurement",
    "measure_background",
    "run_measured",
    "select_domain",
    "MicroResult",
    "RuntimeConfig",
    "apply_runtime_config",
    "run_microbenchmark",
    "run_prepared",
    "VMBS",
    "prepare_verification",
    "vmbs_for",
]
