"""Micro-benchmark execution under the paper's runtime configuration.

§2.5.3 lists the knobs that must be controlled for accurate isolation:
-O3-with-volatile compilation and core pinning have no simulator
analogue (the trace *is* the compiled, pinned program), but the other
two do and are enforced here:

* **DVFS** — the machine is pinned to a fixed P-state (EIST off);
* **prefetcher** — turned off while running MBS (the MSR bit), so that
  no unexpected loads pollute the counters; workload profiling turns it
  back on.

Each run does warm-up rounds first (so the region settles into its
target layer), then measures a fixed number of rounds via
:mod:`repro.micro.measurement`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.micro.benchmarks import (
    BLI_CLASSES,
    PreparedBenchmark,
    default_rounds,
    prepare,
)
from repro.micro.measurement import (
    BackgroundRates,
    Measurement,
    measure_background,
    run_measured,
)
from repro.sim.machine import Machine


@dataclass(frozen=True)
class RuntimeConfig:
    """The controlled execution environment of §2.5.3."""

    pstate: Optional[int] = None      # None = machine's highest
    prefetcher_enabled: bool = False  # off while benchmarking MBS
    warmup_rounds: int = 1
    target_ops: int = 100_000
    apply_noise: bool = True
    #: Measured windows averaged per benchmark.  The paper re-runs every
    #: workload 100 times to suppress measurement noise; a handful of
    #: repeats suffices at the simulator's noise level.
    repeats: int = 3


@dataclass(frozen=True)
class MicroResult:
    """One benchmark's measurement plus Table 1 runtime metrics."""

    name: str
    measurement: Measurement
    rounds: int
    items_per_round: int

    # ---- Table 1 metrics ------------------------------------------------

    @property
    def bli_pct(self) -> float:
        classes = BLI_CLASSES.get(self.name, ("load",))
        return self.measurement.counters.body_loop_instruction_pct(*classes)

    @property
    def ipc(self) -> float:
        return self.measurement.counters.ipc

    @property
    def l1d_miss_pct(self) -> float:
        return 100.0 * self.measurement.counters.l1d_miss_rate

    @property
    def l2_miss_pct(self) -> Optional[float]:
        c = self.measurement.counters
        return 100.0 * c.l2_miss_rate if c.n_l2 else None

    @property
    def l3_miss_pct(self) -> Optional[float]:
        c = self.measurement.counters
        return 100.0 * c.l3_miss_rate if c.n_l3 else None

    @property
    def active_energy_j(self) -> float:
        return self.measurement.active_energy_j

    @property
    def ops_measured(self) -> int:
        return self.rounds * self.items_per_round


def apply_runtime_config(machine: Machine, runtime: RuntimeConfig) -> None:
    """Pin the machine into the controlled environment."""
    machine.disable_eist()
    machine.set_cstates(False)
    pstate = runtime.pstate
    if pstate is None:
        pstate = machine.config.pstates.highest
    machine.set_pstate(pstate)
    machine.set_prefetcher(runtime.prefetcher_enabled)


def run_prepared(
    machine: Machine,
    prepared: PreparedBenchmark,
    background: BackgroundRates,
    runtime: RuntimeConfig = RuntimeConfig(),
    rounds: Optional[int] = None,
) -> MicroResult:
    """Warm up, then measure ``rounds`` rounds of a prepared benchmark.

    The measurement is repeated ``runtime.repeats`` times and the active
    energies averaged (the paper's re-run-and-average procedure); the
    counters of the repeats are identical because the simulator is
    deterministic, so the first window's counters are reported.
    """
    apply_runtime_config(machine, runtime)
    if rounds is None:
        rounds = default_rounds(prepared, runtime.target_ops)
    if runtime.warmup_rounds > 0:
        prepared.run(runtime.warmup_rounds)
    repeats = max(1, runtime.repeats)
    windows = [
        run_measured(
            machine,
            lambda: prepared.run(rounds),
            background,
            apply_noise=runtime.apply_noise,
        )
        for _ in range(repeats)
    ]
    first = windows[0]
    measurement = Measurement(
        counters=first.counters,
        domain=first.domain,
        total_energy_j=sum(w.total_energy_j for w in windows) / repeats,
        background_energy_j=sum(w.background_energy_j for w in windows) / repeats,
        active_energy_j=sum(w.active_energy_j for w in windows) / repeats,
        busy_s=first.busy_s,
        idle_s=first.idle_s,
        time_s=first.time_s,
    )
    return MicroResult(
        name=prepared.name,
        measurement=measurement,
        rounds=rounds,
        items_per_round=prepared.items_per_round,
    )


def run_microbenchmark(
    machine: Machine,
    name: str,
    background: Optional[BackgroundRates] = None,
    runtime: RuntimeConfig = RuntimeConfig(),
    rounds: Optional[int] = None,
    seed: int = 1234,
) -> MicroResult:
    """Prepare and run one benchmark by name (convenience wrapper)."""
    if background is None:
        background = measure_background(machine)
    prepared = prepare(name, machine, seed=seed)
    return run_prepared(machine, prepared, background, runtime, rounds)
