"""Active-energy measurement (§2.6).

The paper measures RAPL domain energies and subtracts the Background
energy (measured with an only-blocked program while C-states are off).
The domain read depends on how deep the workload reaches:

* no L3 / DRAM traffic          → core domain,
* L3 but no DRAM traffic        → package domain,
* DRAM traffic                  → package + dram domains.

This module implements that procedure against a simulated machine, plus
the multiplicative measurement noise the machine is configured with —
RAPL and power meters are not exact on hardware either, and a noiseless
measurement would make the Table 3 verification trivially perfect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.machine import Machine
from repro.sim.pmu import PmuCounters

DOMAIN_CORE = "core"
DOMAIN_PACKAGE = "package"
DOMAIN_PACKAGE_DRAM = "package+dram"


@dataclass(frozen=True)
class BackgroundRates:
    """Background power per RAPL domain, in watts, as *measured*."""

    core_w: float
    package_w: float
    dram_w: float

    def rate(self, domain: str) -> float:
        if domain == DOMAIN_CORE:
            return self.core_w
        if domain == DOMAIN_PACKAGE:
            return self.package_w
        if domain == DOMAIN_PACKAGE_DRAM:
            return self.package_w + self.dram_w
        raise ValueError(f"unknown domain {domain!r}")


@dataclass(frozen=True)
class Measurement:
    """One measured window of workload execution."""

    counters: PmuCounters
    domain: str
    total_energy_j: float       # domain energy over the window
    background_energy_j: float  # background rate x elapsed
    active_energy_j: float      # total - background (noise applied)
    busy_s: float
    idle_s: float
    time_s: float

    @property
    def busy_cpu_energy_j(self) -> float:
        """Busy-CPU energy = Active + Background accrued while busy."""
        if self.time_s <= 0:
            return 0.0
        busy_fraction = self.busy_s / self.time_s
        return self.active_energy_j + self.background_energy_j * busy_fraction


def measure_background(machine: Machine, seconds: float = 0.05) -> BackgroundRates:
    """The paper's ``sleep 1`` calibration: idle with C-states disabled
    and read each domain's power."""
    cstates = machine.cstates_enabled
    machine.set_cstates(False)
    machine.settle()
    core0 = machine.rapl.energy_core()
    pkg0 = machine.rapl.energy_package()
    dram0 = machine.rapl.energy_dram()
    machine.idle(seconds)
    rates = BackgroundRates(
        core_w=(machine.rapl.energy_core() - core0) / seconds,
        package_w=(machine.rapl.energy_package() - pkg0) / seconds,
        dram_w=(machine.rapl.energy_dram() - dram0) / seconds,
    )
    machine.set_cstates(cstates)
    return rates


def select_domain(counters: PmuCounters) -> str:
    """§2.6's domain-selection rule, from observable counters."""
    touches_dram = counters.n_mem > 0 or counters.n_pf_l3 > 0
    if touches_dram:
        return DOMAIN_PACKAGE_DRAM
    touches_uncore = counters.n_l3 > 0 or counters.n_pf_l2 > 0
    if touches_uncore:
        return DOMAIN_PACKAGE
    return DOMAIN_CORE


def _domain_energy(machine: Machine, domain: str) -> float:
    if domain == DOMAIN_CORE:
        return machine.rapl.energy_core()
    if domain == DOMAIN_PACKAGE:
        return machine.rapl.energy_package()
    return machine.rapl.energy_package() + machine.rapl.energy_dram()


def run_measured(
    machine: Machine,
    workload: Callable[[], None],
    background: BackgroundRates,
    apply_noise: bool = True,
) -> Measurement:
    """Run ``workload`` and return its measured window.

    The domain is selected *after* the run from the observed counters —
    operationally equivalent to the paper's per-workload choice, but
    automatic.
    """
    machine.settle()
    pmu_before = machine.pmu.snapshot()
    core0 = machine.rapl.energy_core()
    pkg0 = machine.rapl.energy_package()
    dram0 = machine.rapl.energy_dram()
    time0 = machine.time_s
    busy0 = machine.busy_s
    idle0 = machine.idle_s

    workload()
    machine.settle()

    counters = machine.pmu.since(pmu_before)
    domain = select_domain(counters)
    if domain == DOMAIN_CORE:
        total = machine.rapl.energy_core() - core0
    elif domain == DOMAIN_PACKAGE:
        total = machine.rapl.energy_package() - pkg0
    else:
        total = (machine.rapl.energy_package() - pkg0) + (
            machine.rapl.energy_dram() - dram0
        )
    elapsed = machine.time_s - time0
    background_energy = background.rate(domain) * elapsed
    active = total - background_energy
    if apply_noise:
        active *= machine.measurement_noise_factor()
    return Measurement(
        counters=counters,
        domain=domain,
        total_energy_j=total,
        background_energy_j=background_energy,
        active_energy_j=active,
        busy_s=machine.busy_s - busy0,
        idle_s=machine.idle_s - idle0,
        time_s=elapsed,
    )
