"""The micro-benchmark set MBS (§2.5.2, Algorithms 1-4).

Eight benchmarks, each built to exhibit one clean performance behaviour
on the machine it is prepared for:

=============  =====================================================
B_L1D_array    independent loads that always hit L1D (Algorithm 1)
B_L1D_list     dependent loads that always hit L1D (Algorithm 2)
B_L2           dependent loads that miss L1D, hit L2 (Algorithm 3)
B_L3           dependent loads that miss L1D+L2, hit L3 (Algorithm 3)
B_mem          dependent loads that miss all caches (Algorithm 3)
B_Reg2L1D      stores from a register into L1D (Algorithm 4)
B_add          a known number of add instructions
B_nop          a known number of nop instructions
=============  =====================================================

plus ``B_DTCM_array`` (§4.3) for machines with a DTCM.

Region sizes follow §2.8 proportionally to the prepared machine's cache
geometry (31KB of a 32KB L1D, 260KB of a 256KB L2, 6MB of an 8MB L3,
60MB for DRAM), so the same definitions work on scaled-down presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError
from repro.micro import framework
from repro.sim.address_space import Region
from repro.sim.machine import Machine

#: The paper's micro-benchmark set, in calibration order.
MBS = (
    "B_L1D_array",
    "B_L1D_list",
    "B_L2",
    "B_L3",
    "B_mem",
    "B_Reg2L1D",
    "B_add",
    "B_nop",
)

#: Instruction classes that count as "desired" per benchmark (Table 1 BLI).
BLI_CLASSES = {
    "B_L1D_array": ("load",),
    "B_L1D_list": ("load",),
    "B_L2": ("load",),
    "B_L3": ("load",),
    "B_mem": ("load",),
    "B_Reg2L1D": ("store",),
    "B_add": ("add",),
    "B_nop": ("nop",),
    "B_DTCM_array": ("load",),
}


@dataclass
class PreparedBenchmark:
    """A benchmark bound to a machine: regions allocated, chain built."""

    name: str
    machine: Machine
    #: deepest memory layer the benchmark intentionally reaches
    reach: str
    #: micro-ops of the desired kind issued per round
    items_per_round: int
    run_rounds: Callable[[int], None]
    regions: tuple[Region, ...] = field(default=())

    def run(self, rounds: int) -> None:
        if rounds <= 0:
            raise ConfigError("rounds must be positive")
        self.run_rounds(rounds)


def _l1_resident_items(machine: Machine) -> int:
    """Items for an L1D-resident region: ~31/32 of L1D capacity (§2.8)."""
    lines = machine.config.l1d.size // framework.ITEM_BYTES
    return max(4, lines * 31 // 32)


def _l2_resident_items(machine: Machine) -> int:
    """~75% of (L1D + L2).

    The paper uses 260KB against 32K+256K (~90%); with true-LRU sets and
    a randomised chain order that leaves ~10% conflict misses, so the
    simulator stays a little further from capacity to reproduce the
    paper's clean "L2 miss 0.02%" behaviour (Table 1)."""
    cfg = machine.config
    if cfg.l2 is None:
        raise ConfigError(f"{cfg.name} has no L2; B_L2 is undefined")
    lines = (cfg.l1d.size + cfg.l2.size) * 3 // 4 // framework.ITEM_BYTES
    return max(8, lines)


def _l3_resident_items(machine: Machine) -> int:
    """75% of L3: the paper's 6MB of 8MB."""
    cfg = machine.config
    if cfg.l3 is None:
        raise ConfigError(f"{cfg.name} has no L3; B_L3 is undefined")
    return max(16, cfg.l3.size * 3 // 4 // framework.ITEM_BYTES)


def _mem_items(machine: Machine) -> int:
    """7.5x the largest cache: the paper's 60MB against an 8MB L3."""
    cfg = machine.config
    largest = max(
        cfg.l1d.size,
        cfg.l2.size if cfg.l2 is not None else 0,
        cfg.l3.size if cfg.l3 is not None else 0,
    )
    return max(32, largest * 15 // 2 // framework.ITEM_BYTES)


def prepare(name: str, machine: Machine, seed: int = 1234) -> PreparedBenchmark:
    """Build one MBS benchmark (or B_DTCM_array) for ``machine``."""
    if name == "B_L1D_array":
        n = _l1_resident_items(machine)
        region = machine.address_space.alloc_lines(n, label=name)
        return PreparedBenchmark(
            name=name, machine=machine, reach="L1D", items_per_round=n,
            regions=(region,),
            run_rounds=lambda r: framework.array_traverse(machine, region, n, r),
        )
    if name == "B_L1D_list":
        n = _l1_resident_items(machine)
        region = machine.address_space.alloc_lines(n, label=name)
        order = framework.sequential_order(n)
        return PreparedBenchmark(
            name=name, machine=machine, reach="L1D", items_per_round=n,
            regions=(region,),
            run_rounds=lambda r: framework.list_traverse(machine, region, order, r),
        )
    if name in ("B_L2", "B_L3", "B_mem"):
        if name == "B_L2":
            n, reach = _l2_resident_items(machine), "L2"
        elif name == "B_L3":
            n, reach = _l3_resident_items(machine), "L3"
        else:
            n, reach = _mem_items(machine), "mem"
        region = machine.address_space.alloc_lines(n, label=name)
        order = framework.shuffled_chain_order(n, seed=seed)
        return PreparedBenchmark(
            name=name, machine=machine, reach=reach, items_per_round=n,
            regions=(region,),
            run_rounds=lambda r: framework.list_traverse(machine, region, order, r),
        )
    if name == "B_Reg2L1D":
        region = machine.address_space.alloc_lines(1, label=name)
        unroll = 4096
        return PreparedBenchmark(
            name=name, machine=machine, reach="L1D", items_per_round=unroll,
            regions=(region,),
            run_rounds=lambda r: framework.store_loop(machine, region, r, unroll),
        )
    if name in ("B_add", "B_nop"):
        kind = name[2:]
        unroll = 8192
        return PreparedBenchmark(
            name=name, machine=machine, reach="L1D", items_per_round=unroll,
            run_rounds=lambda r: framework.compute_loop(machine, kind, r, unroll),
        )
    if name == "B_DTCM_array":
        if machine.tcm is None:
            raise ConfigError(f"{machine.config.name} has no DTCM")
        size = min(machine.config.l1d.size * 31 // 32, machine.tcm.bytes_free)
        n = max(4, size // framework.ITEM_BYTES)
        region = machine.tcm.alloc(n * framework.ITEM_BYTES, label=name)
        return PreparedBenchmark(
            name=name, machine=machine, reach="L1D", items_per_round=n,
            regions=(region,),
            run_rounds=lambda r: framework.array_traverse(machine, region, n, r),
        )
    raise ConfigError(f"unknown micro-benchmark {name!r}")


def default_rounds(prepared: PreparedBenchmark, target_ops: int = 100_000) -> int:
    """Rounds needed for ~``target_ops`` desired micro-ops.

    The paper loops T = 1e9 times for stability on hardware; the
    simulator is deterministic up to measurement noise, so far fewer
    operations suffice."""
    return max(1, target_ops // max(1, prepared.items_per_round))


def mbs_for(machine: Machine) -> list[str]:
    """The subset of MBS that exists on this machine's geometry."""
    names = ["B_L1D_array", "B_L1D_list"]
    if machine.config.l2 is not None:
        names.append("B_L2")
    if machine.config.l3 is not None:
        names.append("B_L3")
    names += ["B_mem", "B_Reg2L1D", "B_add", "B_nop"]
    return names
