"""The verification micro-benchmark set VMBS (§2.5.5, Table 3).

Seven benchmarks derived from MBS by mixing in known numbers of ``add``
and ``nop`` instructions (and, for B_L1D_list_L2, a second chain in a
different memory layer).  They exhibit *composite* behaviour: the
estimator prices them with Eq. (1) using the calibrated dE_m, and the
gap to the measured Active energy is the method's accuracy.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.micro import framework
from repro.micro.benchmarks import (
    PreparedBenchmark,
    _l1_resident_items,
    _l2_resident_items,
    _l3_resident_items,
    _mem_items,
)
from repro.sim.machine import Machine

#: The paper's verification set, in Table 3 order.
VMBS = (
    "B_L1D_list_nop",
    "B_L1D_array_add",
    "B_L2_nop",
    "B_L3_add",
    "B_mem_nop",
    "B_L1D_list_L2",
    "B_L1D_list_nop_add",
)

#: Compute instructions injected per chain hop in the derived benchmarks.
_MIX = 2


def prepare_verification(
    name: str, machine: Machine, seed: int = 4321
) -> PreparedBenchmark:
    """Build one VMBS benchmark for ``machine``."""
    if name == "B_L1D_list_nop":
        return _chain_with_mix(machine, name, "L1D", nop=_MIX, seed=seed)
    if name == "B_L1D_array_add":
        n = _l1_resident_items(machine)
        region = machine.address_space.alloc_lines(n, label=name)
        return PreparedBenchmark(
            name=name, machine=machine, reach="L1D", items_per_round=n,
            regions=(region,),
            run_rounds=lambda r: framework.array_traverse(
                machine, region, n, r, add_per_item=_MIX
            ),
        )
    if name == "B_L2_nop":
        return _chain_with_mix(machine, name, "L2", nop=_MIX, seed=seed)
    if name == "B_L3_add":
        return _chain_with_mix(machine, name, "L3", add=_MIX, seed=seed)
    if name == "B_mem_nop":
        return _chain_with_mix(machine, name, "mem", nop=_MIX, seed=seed)
    if name == "B_L1D_list_L2":
        n1 = _l1_resident_items(machine) // 2
        n2 = _l2_resident_items(machine)
        region1 = machine.address_space.alloc_lines(n1, label=name + "/l1")
        region2 = machine.address_space.alloc_lines(n2, label=name + "/l2")
        pairs = [
            (region1, framework.sequential_order(n1)),
            (region2, framework.shuffled_chain_order(n2, seed=seed)),
        ]
        return PreparedBenchmark(
            name=name, machine=machine, reach="L2", items_per_round=n1 + n2,
            regions=(region1, region2),
            run_rounds=lambda r: framework.interleaved_list_traverse(
                machine, pairs, r
            ),
        )
    if name == "B_L1D_list_nop_add":
        return _chain_with_mix(machine, name, "L1D", add=1, nop=1, seed=seed)
    raise ConfigError(f"unknown verification benchmark {name!r}")


def _chain_with_mix(
    machine: Machine,
    name: str,
    reach: str,
    add: int = 0,
    nop: int = 0,
    seed: int = 4321,
) -> PreparedBenchmark:
    if reach == "L1D":
        n = _l1_resident_items(machine)
        order: list[int] | range = framework.sequential_order(n)
    elif reach == "L2":
        n = _l2_resident_items(machine)
        order = framework.shuffled_chain_order(n, seed=seed)
    elif reach == "L3":
        n = _l3_resident_items(machine)
        order = framework.shuffled_chain_order(n, seed=seed)
    elif reach == "mem":
        n = _mem_items(machine)
        order = framework.shuffled_chain_order(n, seed=seed)
    else:
        raise ConfigError(f"unknown reach {reach!r}")
    region = machine.address_space.alloc_lines(n, label=name)
    return PreparedBenchmark(
        name=name, machine=machine, reach=reach, items_per_round=n,
        regions=(region,),
        run_rounds=lambda r: framework.list_traverse(
            machine, region, order, r, add_per_item=add, nop_per_item=nop
        ),
    )


def vmbs_for(machine: Machine) -> list[str]:
    """The subset of VMBS this machine's geometry supports."""
    names = ["B_L1D_list_nop", "B_L1D_array_add"]
    if machine.config.l2 is not None:
        names += ["B_L2_nop", "B_L1D_list_L2"]
    if machine.config.l3 is not None:
        names.append("B_L3_add")
    names += ["B_mem_nop", "B_L1D_list_nop_add"]
    # Preserve Table 3 order.
    return [n for n in VMBS if n in names]
