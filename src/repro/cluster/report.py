"""Cluster-run accounting: the scatter-gather report and energy split.

Same two properties as :mod:`repro.serve.report`, cluster-wide:

* **Determinism** — the report is a pure function of the config, so two
  runs with the same seed produce byte-identical JSON, across
  ``exec_mode`` reference/batched too.
* **Exact attribution** — every machine's Active energy is partitioned
  by the span-meta keys ``(request, attempt, wasted)``; the coordinator
  supplies a waste reason per losing attempt, so hedge-loser joules, a
  crashed node's lost partial work, and every failover re-read are
  itemised by cause in ``wasted_by_reason_j``.  Per machine,
  ``useful_j + wasted_j`` is *exactly* the partition total (one float
  sum, split two ways); the reported cluster ``active_energy_j`` is
  defined as ``useful + wasted`` so the conservation identity holds by
  construction, and ``node_active_sum_j`` carries the independently
  measured total for cross-checking.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.coordinator import (
    DEGRADED_PARTIAL,
    ClusterCoordinator,
    ClusterRequest,
)
from repro.serve.report import WASTE_KEYS, latency_summary, percentile
from repro.serve.request import COMPLETED, FAILED, SHED_DEGRADED

PERCENTILES = (50, 95, 99)

#: Version stamp on every cluster report.
CLUSTER_SCHEMA_VERSION = 1

#: Request states whose results reached the client (energy spent on
#: their winning attempts is useful).
DELIVERED_STATES = (COMPLETED, DEGRADED_PARTIAL)


def _meta_order(key: tuple) -> tuple:
    return tuple((v is None, str(v)) for v in key)


def cluster_energy_split(traces: dict, requests: Sequence[ClusterRequest],
                         attempt_outcomes: dict) -> dict:
    """Split every machine's Active energy into useful vs wasted joules.

    ``traces`` maps machine name -> :class:`~repro.obs.span.Trace`.
    Classification, per span-meta group ``(request, attempt, wasted)``:

    * request not delivered (failed / shed): every joule it touched is
      wasted under its terminal state;
    * request delivered but the attempt lost (hedge loser, failover
      duplicate, crashed node's partial work, message lost on the
      wire, timed-out straggler): wasted under the coordinator's
      recorded reason for that attempt;
    * spans tagged ``wasted`` (e.g. straggler stalls): wasted under the
      tag;
    * everything else — winning attempts, merges, untagged system work
      (idle, background, data load) — is useful.
    """
    state_of = {r.request_id: r.state for r in requests}
    useful_j = 0.0
    wasted_j = 0.0
    by_reason: dict = {}
    per_machine: dict = {}
    for name in sorted(traces):
        trace = traces[name]
        groups = trace.active_energy_by_metas(WASTE_KEYS)
        m_useful = 0.0
        m_wasted = 0.0
        for key in sorted(groups, key=_meta_order):
            req, attempt, tag = key
            joules = groups[key]
            reason = None
            if req is not None:
                state = state_of.get(req)
                if state not in DELIVERED_STATES:
                    reason = state or "unknown"
                elif attempt is not None and attempt in attempt_outcomes:
                    reason = attempt_outcomes[attempt]
                elif tag is not None:
                    reason = tag
            elif tag is not None:
                reason = tag
            if reason is None:
                m_useful += joules
            else:
                m_wasted += joules
                by_reason[reason] = by_reason.get(reason, 0.0) + joules
        useful_j += m_useful
        wasted_j += m_wasted
        per_machine[name] = {"useful_j": m_useful, "wasted_j": m_wasted}
    return {
        "useful_j": useful_j,
        "wasted_j": wasted_j,
        "by_reason_j": dict(sorted(by_reason.items())),
        "per_machine": per_machine,
    }


def _counts(requests: Sequence[ClusterRequest]) -> dict:
    counts = {
        "issued": len(requests),
        "completed": 0,
        "degraded_partial": 0,
        "failed": 0,
        "shed_degraded": 0,
    }
    for request in requests:
        if request.state == COMPLETED:
            counts["completed"] += 1
        elif request.state == DEGRADED_PARTIAL:
            counts["degraded_partial"] += 1
        elif request.state == FAILED:
            counts["failed"] += 1
        elif request.state == SHED_DEGRADED:
            counts["shed_degraded"] += 1
    return counts


def build_cluster_report(config, coordinator: ClusterCoordinator,
                         traces: dict, network, injector=None) -> dict:
    """Assemble the cluster run's JSON report.

    ``traces`` maps machine name ("coord", "node0", ...) to that
    machine's :class:`~repro.obs.span.Trace`.
    """
    requests = coordinator.requests
    delivered = [r for r in requests if r.state in DELIVERED_STATES]
    latencies = [r.latency_s for r in delivered]

    split = cluster_energy_split(traces, requests,
                                 coordinator.attempt_outcomes)
    node_active_sum_j = sum(traces[name].total_active_j
                            for name in sorted(traces))
    n_delivered = len(delivered)
    active_energy_j = split["useful_j"] + split["wasted_j"]
    energy_per_query_j = (active_energy_j / n_delivered
                          if n_delivered else None)

    # Per-request energy: one partition per machine, folded by request
    # id in sorted machine order so the sums are deterministic floats.
    per_request: dict = {}
    for name in sorted(traces):
        by_request = traces[name].active_energy_by_meta("request")
        by_request.pop(None, None)
        for rid in sorted(by_request):
            per_request[rid] = per_request.get(rid, 0.0) + by_request[rid]
    request_joules = [per_request[k] for k in sorted(per_request)]
    request_energy = {
        "n": len(request_joules),
        "mean_j": (sum(request_joules) / len(request_joules)
                   if request_joules else None),
    }
    for p in PERCENTILES:
        request_energy[f"p{p}_j"] = percentile(request_joules, p)

    nodes_section: dict = {}
    for node in coordinator.nodes:
        machine_split = split["per_machine"][node.name]
        nodes_section[node.name] = {
            "active_j": (machine_split["useful_j"]
                         + machine_split["wasted_j"]),
            "useful_j": machine_split["useful_j"],
            "wasted_j": machine_split["wasted_j"],
            "wall_s": node.machine.time_s,
            "busy_s": node.machine.busy_s,
            "idle_s": node.machine.idle_s,
            "subreqs_served": node.subreqs_served,
            "crashes": node.crashes,
            "slowdowns": node.slowdowns,
        }
    coord_split = split["per_machine"]["coord"]
    coord_machine = coordinator.machine
    coord_section = {
        "active_j": coord_split["useful_j"] + coord_split["wasted_j"],
        "useful_j": coord_split["useful_j"],
        "wasted_j": coord_split["wasted_j"],
        "wall_s": coord_machine.time_s,
        "busy_s": coord_machine.busy_s,
        "idle_s": coord_machine.idle_s,
    }

    makespan_s = max(
        [coord_machine.time_s]
        + [node.machine.time_s for node in coordinator.nodes]
    )

    report = {
        "schema_version": CLUSTER_SCHEMA_VERSION,
        "config": {
            "nodes": config.nodes,
            "replication": config.replication,
            "mode": config.mode,
            "clients": config.clients,
            "queries": config.queries,
            "tenants": config.tenants,
            "rate_qps": config.rate_qps,
            "think_s": config.think_s,
            "seed": config.seed,
            "engine": config.engine,
            "setting": config.setting,
            "tier": config.tier,
            "scale": config.scale,
            "exec_mode": config.exec_mode,
            "net_latency_s": config.net_latency_s,
            "net_bytes_per_s": config.net_bytes_per_s,
            "net_payload_factor": config.net_payload_factor,
            "faults": (config.faults.as_dict()
                       if config.faults is not None else None),
            "subreq_timeout_s": config.subreq_timeout_s,
            "failover_attempts": config.failover_attempts,
            "failover_backoff_s": config.failover_backoff_s,
            "hedge_quantile": config.hedge_quantile,
            "hedge_min_samples": config.hedge_min_samples,
            "allow_partial": config.allow_partial,
            "breaker_threshold": config.breaker_threshold,
            "breaker_window": config.breaker_window,
            "breaker_cooloff_s": config.breaker_cooloff_s,
            "degrade_keep_tenants": config.degrade_keep_tenants,
        },
        "counts": _counts(requests),
        "latency_s": latency_summary(latencies),
        "subrequests": {
            "sent": coordinator.subreqs_sent,
            "hedges": coordinator.hedges,
            "hedge_wins": coordinator.hedge_wins,
            "failovers": coordinator.failovers,
            "timeouts": coordinator.timeouts,
        },
        "energy": {
            "domain": next(iter(traces.values())).domain,
            "useful_energy_j": split["useful_j"],
            "wasted_energy_j": split["wasted_j"],
            # The conservation identity the chaos suite asserts: useful
            # plus wasted IS the cluster active total, by construction.
            "active_energy_j": active_energy_j,
            "node_active_sum_j": node_active_sum_j,
            "wasted_by_reason_j": split["by_reason_j"],
            "energy_per_query_j": energy_per_query_j,
            "request_energy_j": request_energy,
        },
        "coordinator": coord_section,
        "nodes": nodes_section,
        "network": {
            "messages": network.messages,
            "bytes_sent": network.bytes_sent,
            "dropped": network.dropped,
            "partitioned": network.partitioned,
            "partition_episodes": network.partition_episodes,
            "link_latencies": network.link_latencies(),
        },
        "resilience": {
            "faults_injected": (injector.counts()
                                if injector is not None else {}),
            "breaker_trips": (coordinator.breaker.trips
                              if coordinator.breaker is not None else 0),
            "shed_degraded": coordinator.shed_degraded,
        },
        "clock": {
            "makespan_s": makespan_s,
            "events": coordinator.events,
        },
    }
    return report


def render_cluster_summary(report: dict,
                           elapsed_s: float | None = None) -> str:
    """Human-readable one-screen summary of a cluster report."""
    cfg = report["config"]
    counts = report["counts"]
    latency = report["latency_s"]
    energy = report["energy"]
    subreqs = report["subrequests"]
    resilience = report["resilience"]

    def fmt(value, unit: str, precision: str = ".4g") -> str:
        return "n/a" if value is None else f"{value:{precision}} {unit}"

    lines = [
        f"cluster: nodes={cfg['nodes']} rf={cfg['replication']} "
        f"queries={cfg['queries']} clients={cfg['clients']} "
        f"seed={cfg['seed']}",
        "counts: " + "  ".join(
            f"{key}={value}" for key, value in counts.items()
        ),
        f"subrequests: sent={subreqs['sent']}  "
        f"hedged={subreqs['hedges']} (won {subreqs['hedge_wins']})  "
        f"failovers={subreqs['failovers']}  "
        f"timeouts={subreqs['timeouts']}  "
        f"shed={resilience['shed_degraded']}",
        f"latency: p50={fmt(latency['p50_s'], 's')}  "
        f"p95={fmt(latency['p95_s'], 's')}  "
        f"p99={fmt(latency['p99_s'], 's')}  "
        f"mean={fmt(latency['mean_s'], 's')}",
        f"energy: active={energy['active_energy_j']:.4g} J "
        f"({energy['domain']})  "
        f"per-query={fmt(energy['energy_per_query_j'], 'J')}  "
        f"makespan={report['clock']['makespan_s']:.4g} s",
    ]
    reasons = ", ".join(
        f"{reason}={joules:.3g} J" for reason, joules in
        list(energy["wasted_by_reason_j"].items())[:6]
    ) or "none"
    lines.append(
        f"waste: useful={energy['useful_energy_j']:.4g} J  "
        f"wasted={energy['wasted_energy_j']:.4g} J  "
        f"reasons: {reasons}"
    )
    if elapsed_s is not None and elapsed_s > 0:
        lines.append(
            f"engine: mode={cfg['exec_mode']}  host={elapsed_s:.3f} s  "
            f"events/s={report['clock']['events'] / elapsed_s:.1f}"
        )
    return "\n".join(lines)
