"""The cluster coordinator: a scatter-gather discrete-event engine.

One global event heap keyed ``(time, seq)`` drives the whole cluster
(the same two-heap discipline as :mod:`repro.serve.loop`, collapsed to
one heap whose events carry their kind).  Five event kinds:

``arrival``    a client issues a query (driver-generated, closed- or
               open-loop); the coordinator scatters one sub-request per
               shard.
``node_recv``  a sub-request message reaches a data node; the node runs
               the per-shard plan run-to-completion on its own machine
               (queueing emerges from the node's machine clock) and
               sends the partial back.
``coord_recv`` a partial lands at the coordinator; first one per shard
               wins, later ones are losers (hedge/failover waste).
``timeout``    a sub-request attempt outlived ``subreq_timeout_s``; the
               coordinator fails it over to the next replica (bounded
               by ``failover_attempts``) or gives the shard up.
``hedge``/``dispatch``  delayed dispatches: a hedge fires after the
               observed latency quantile, a failover after its backoff.

Determinism: every decision is a pure function of simulated time and
seeded draws — event ties break on sequence numbers, network latencies
and fault draws are seeded, and the hedge delay is a percentile of
observed (simulated) latencies.  Two runs with the same config are
byte-identical, across ``exec_mode`` reference/batched too.

Energy: every charged micro-op on any machine runs inside a tracer
span tagged ``(request, attempt)``, so the cluster report partitions
each node's Active energy exactly.  The coordinator records a waste
reason per losing attempt in :attr:`ClusterCoordinator.attempt_outcomes`
(``hedge_loser``, ``failover_reexec``, ``node_crash``, ``net_drop``,
``net_partition``, ``timeout``); the winning attempt of a delivered
request carries no reason and classifies useful.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.db.planner import Aggregate, Limit
from repro.db.sharding import merge_partials, shard_scan
from repro.errors import ClusterError
from repro.seeding import derive_seed, seeded_rng
from repro.serve.report import percentile
from repro.serve.request import COMPLETED, FAILED, SHED_DEGRADED
from repro.sim.network import DELIVERED

#: Terminal state of a request answered from a strict subset of its
#: shards (a shard was unreachable and ``allow_partial`` let the
#: coordinator degrade instead of failing).
DEGRADED_PARTIAL = "degraded_partial"

CATEGORY_EXEC = "cluster.exec"
CATEGORY_NET = "cluster.net"
CATEGORY_MERGE = "cluster.merge"
CATEGORY_FAULT = "cluster.fault"

#: Fixed sub-request message size (plan id + shard + bookkeeping).
REQUEST_BYTES = 192
#: Response framing plus one 8-byte slot per aggregate value.
RESPONSE_HEADER_BYTES = 64
VALUE_BYTES = 8


class SubAttempt:
    """One dispatch of one sub-request to one replica."""

    __slots__ = ("attempt_id", "subreq", "node", "hedge", "sent_s", "fate")

    def __init__(self, attempt_id, subreq, node, hedge, sent_s):
        self.attempt_id = attempt_id
        self.subreq = subreq
        self.node = node
        self.hedge = hedge
        self.sent_s = sent_s
        #: Known loss cause ("net_drop" / "net_partition" / "node_crash")
        #: or None while the attempt might still deliver.
        self.fate: Optional[str] = None


class SubRequest:
    """One shard's slice of a scatter-gather request."""

    __slots__ = ("request", "shard", "replicas", "attempts", "next_replica",
                 "satisfied", "failed", "winner", "dispatched_s", "hedged",
                 "timed_out", "pending_dispatch")

    def __init__(self, request, shard, replicas):
        self.request = request
        self.shard = shard
        self.replicas = replicas
        self.attempts: list[SubAttempt] = []
        self.next_replica = 0
        self.satisfied = False
        self.failed = False
        self.winner: Optional[SubAttempt] = None
        self.dispatched_s: Optional[float] = None
        self.hedged = False
        self.timed_out = 0
        self.pending_dispatch = False


class ClusterRequest:
    """One client query, scattered over every shard."""

    __slots__ = ("request_id", "tenant", "client", "job", "arrival_s",
                 "state", "finish_s", "subreqs", "partials", "pending",
                 "result")

    def __init__(self, request_id, tenant, client, job, arrival_s):
        self.request_id = request_id
        self.tenant = tenant
        self.client = client
        self.job = job
        self.arrival_s = arrival_s
        self.state: Optional[str] = None
        self.finish_s: Optional[float] = None
        self.subreqs: list[SubRequest] = []
        self.partials: dict[int, tuple] = {}
        self.pending = 0
        self.result: Optional[tuple] = None

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s


class ClusterCoordinator:
    """Scatter-gather engine over N nodes (see module docstring)."""

    def __init__(self, config, machine, nodes, network, shard_map, specs,
                 driver, seed, injector=None, breaker=None):
        self.config = config
        self.machine = machine
        self.nodes = nodes
        self.network = network
        self.shard_map = shard_map
        self.specs = specs
        self.driver = driver
        self.seed = seed
        self.injector = injector
        self.breaker = breaker
        self._merge_base = machine.address_space.alloc(
            4096, label="cluster/merge").base
        self.requests: list[ClusterRequest] = []
        #: Waste reason per losing attempt id; winners are absent.
        self.attempt_outcomes: dict[str, str] = {}
        #: Completed sub-request latencies (hedge-delay quantile input).
        self._samples: list[float] = []
        self._heap: list = []
        self._seq = 0
        self.subreqs_sent = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.failovers = 0
        self.timeouts = 0
        self.shed_degraded = 0
        self.events = 0

    # ------------------------------------------------------------ plumbing

    def _push(self, t: float, kind: str, payload) -> None:
        heapq.heappush(self._heap, (t, self._seq, kind, payload))
        self._seq += 1

    def _advance(self, machine, t: float) -> None:
        """Advance a machine's clock to ``t``, charging the gap as idle
        (background energy; outside any request span, so it classifies
        as useful system cost, never as fault waste)."""
        if t > machine.time_s:
            machine.idle(t - machine.time_s)

    def _degraded(self, now: float) -> bool:
        return self.breaker is not None and self.breaker.degraded(now)

    def _terminal(self, request: ClusterRequest, now: float) -> None:
        nxt = self.driver.on_terminal(request.client, now)
        if nxt is not None:
            self._push(nxt[0], "arrival", (request.client, nxt[1]))

    # ------------------------------------------------------------ dispatch

    def _dispatch(self, sub: SubRequest, t: float, hedge: bool) -> None:
        request = sub.request
        node = self.nodes[sub.replicas[sub.next_replica % len(sub.replicas)]]
        sub.next_replica += 1
        attempt_id = (f"r{request.request_id}.s{sub.shard}"
                      f".a{len(sub.attempts)}")
        attempt = SubAttempt(attempt_id, sub, node, hedge, t)
        sub.attempts.append(attempt)
        self.subreqs_sent += 1
        if sub.dispatched_s is None:
            sub.dispatched_s = t
        if hedge:
            sub.hedged = True
            self.hedges += 1
        with self.machine.tracer.span(
            f"{attempt_id}.tx", category=CATEGORY_NET,
            tenant=request.tenant, request=request.request_id,
            attempt=attempt_id,
        ):
            self.network.charge_tx("coord", REQUEST_BYTES)
        status, arrival = self.network.send(
            "coord", node.name, REQUEST_BYTES, t)
        if status == DELIVERED:
            self._push(arrival, "node_recv", attempt)
        else:
            attempt.fate = status
        self._push(t + self.config.subreq_timeout_s, "timeout", attempt)
        if (not hedge and len(sub.attempts) == 1
                and self.config.hedge_quantile is not None
                and len(sub.replicas) > 1
                and len(self._samples) >= self.config.hedge_min_samples):
            delay = percentile(self._samples,
                               self.config.hedge_quantile * 100.0)
            self._push(t + delay, "hedge", sub)

    def _handle_arrival(self, t: float, payload) -> None:
        client, job = payload
        request = ClusterRequest(
            request_id=len(self.requests),
            tenant=self.driver.tenant_of(client),
            client=client,
            job=job,
            arrival_s=t,
        )
        self.requests.append(request)
        if self._degraded(t) and (
            client % self.driver.tenants >= self.config.degrade_keep_tenants
        ):
            request.state = SHED_DEGRADED
            request.finish_s = t
            self.shed_degraded += 1
            self._terminal(request, t)
            return
        for shard in range(self.shard_map.n_shards):
            request.subreqs.append(SubRequest(
                request, shard, self.shard_map.replicas(shard)))
        request.pending = len(request.subreqs)
        for sub in request.subreqs:
            self._dispatch(sub, t, hedge=False)

    # ------------------------------------------------------------ node side

    def _handle_node_recv(self, t: float, attempt: SubAttempt) -> None:
        node = attempt.node
        sub = attempt.subreq
        request = sub.request
        machine = node.machine
        spec = self.specs[request.job.name]
        plan = self.injector.plan if self.injector is not None else None
        # FIFO queueing on the node's own clock; a rebooting node works
        # the backlog off once it is up again.
        self._advance(machine, max(t, node.crashed_until))
        crashed = False
        slowed = False
        row = None
        with machine.tracer.span(
            attempt.attempt_id, category=CATEGORY_EXEC,
            tenant=request.tenant, request=request.request_id,
            attempt=attempt.attempt_id, node=node.name,
        ):
            self.network.charge_rx(node.name, REQUEST_BYTES)
            if self.injector is not None:
                crashed = self.injector.node_crash()
                if not crashed:
                    slowed = self.injector.node_slow()
            started_s = machine.time_s
            if crashed:
                # The node dies a seeded fraction of the way through the
                # shard scan: that partial work is charged, then lost.
                nrows = self.shard_map.rows[spec.table][sub.shard]
                frac = seeded_rng(
                    derive_seed(self.seed, "cluster", "crash-frac",
                                attempt.attempt_id),
                    "crash fraction",
                ).random()
                k = max(1, int(nrows * (0.1 + 0.8 * frac)))
                partial_plan = Aggregate(
                    Limit(shard_scan(spec.table, sub.shard), k),
                    (), spec.aggs)
                node.db.execute_iter(partial_plan, slot=0).drain()
            else:
                rows = node.db.execute_iter(
                    spec.shard_plans[sub.shard], slot=0).fetch_all()
                row = rows[0]
                if slowed:
                    # Straggler: the node holds the finished result for
                    # (factor - 1) x the execution time.  Stall, not
                    # compute: it wastes tail latency, near-zero joules.
                    node.slowdowns += 1
                    stall = ((plan.node_slow_factor - 1.0)
                             * (machine.time_s - started_s))
                    with machine.tracer.span(
                        f"{attempt.attempt_id}.straggle",
                        category=CATEGORY_FAULT, wasted="node_slow",
                    ):
                        machine.idle(stall)
        if crashed:
            attempt.fate = "node_crash"
            node.crashes += 1
            node.crashed_until = (machine.time_s
                                  + plan.node_crash_restart_s)
            # Reboot cold: buffer pool, pagers, and CPU caches all gone.
            node.db.clear_caches()
            machine.hierarchy.flush()
            return
        node.subreqs_served += 1
        resp_bytes = RESPONSE_HEADER_BYTES + VALUE_BYTES * len(spec.aggs)
        with machine.tracer.span(
            f"{attempt.attempt_id}.tx", category=CATEGORY_NET,
            tenant=request.tenant, request=request.request_id,
            attempt=attempt.attempt_id,
        ):
            self.network.charge_tx(node.name, resp_bytes)
        status, arrival = self.network.send(
            node.name, "coord", resp_bytes, machine.time_s)
        if status == DELIVERED:
            self._push(arrival, "coord_recv", (attempt, row))
        else:
            attempt.fate = status

    # ------------------------------------------------------------ gather

    def _loser_reason(self, attempt: SubAttempt, sub: SubRequest) -> str:
        if attempt.fate is not None:
            return attempt.fate
        if sub.failed:
            return "timeout"
        if attempt.hedge:
            return "hedge_loser"
        if sub.winner is not None and sub.winner.hedge:
            return "hedge_loser"
        return "failover_reexec"

    def _handle_coord_recv(self, t: float, payload) -> None:
        attempt, row = payload
        sub = attempt.subreq
        request = sub.request
        spec = self.specs[request.job.name]
        resp_bytes = RESPONSE_HEADER_BYTES + VALUE_BYTES * len(spec.aggs)
        self._advance(self.machine, t)
        with self.machine.tracer.span(
            f"{attempt.attempt_id}.rx", category=CATEGORY_NET,
            tenant=request.tenant, request=request.request_id,
            attempt=attempt.attempt_id,
        ):
            self.network.charge_rx("coord", resp_bytes)
        if sub.satisfied or sub.failed:
            # A loser landed: hedge/failover duplicate, or a shard the
            # coordinator already gave up on.
            self.attempt_outcomes.setdefault(
                attempt.attempt_id, self._loser_reason(attempt, sub))
            return
        sub.satisfied = True
        sub.winner = attempt
        # The timeout handler may have provisionally judged this attempt
        # before its (late) response won the shard after all.
        self.attempt_outcomes.pop(attempt.attempt_id, None)
        if attempt.hedge:
            self.hedge_wins += 1
        self._samples.append(t - sub.dispatched_s)
        if self.breaker is not None:
            self.breaker.record(True, t)
        request.partials[sub.shard] = row
        request.pending -= 1
        if request.pending == 0:
            self._finalize(request, t)

    def _finalize(self, request: ClusterRequest, t: float) -> None:
        spec = self.specs[request.job.name]
        missing = len(request.subreqs) - len(request.partials)
        if missing == 0 or (request.partials and self.config.allow_partial):
            self._advance(self.machine, t)
            with self.machine.tracer.span(
                f"r{request.request_id}.merge", category=CATEGORY_MERGE,
                tenant=request.tenant, request=request.request_id,
            ):
                partial_rows = [request.partials[shard]
                                for shard in sorted(request.partials)]
                ops = len(partial_rows) * len(spec.aggs)
                self.machine.hot_loads(self._merge_base, ops)
                self.machine.add(ops)
                request.result = merge_partials(spec.aggs, partial_rows)
            request.state = COMPLETED if missing == 0 else DEGRADED_PARTIAL
        else:
            request.state = FAILED
        request.finish_s = t
        self._terminal(request, t)

    # ------------------------------------------------------------ timeouts

    def _handle_timeout(self, t: float, attempt: SubAttempt) -> None:
        sub = attempt.subreq
        request = sub.request
        if sub.satisfied or sub.failed:
            # Shard already resolved; this attempt lost unless it won.
            if attempt is not sub.winner:
                self.attempt_outcomes.setdefault(
                    attempt.attempt_id, self._loser_reason(attempt, sub))
            return
        sub.timed_out += 1
        self.timeouts += 1
        if self.breaker is not None:
            self.breaker.record(False, t)
        # Provisional judgement; coord_recv retracts it if a late
        # response from this very attempt ends up winning the shard.
        self.attempt_outcomes.setdefault(
            attempt.attempt_id, attempt.fate or "timeout")
        if len(sub.attempts) < self.config.failover_attempts:
            self.failovers += 1
            sub.pending_dispatch = True
            self._push(t + self.config.failover_backoff_s, "dispatch", sub)
            return
        if sub.timed_out >= len(sub.attempts) and not sub.pending_dispatch:
            # Every launched attempt timed out and no more are allowed:
            # the shard is unreachable.
            sub.failed = True
            request.pending -= 1
            if request.pending == 0:
                self._finalize(request, t)

    def _handle_dispatch(self, t: float, sub: SubRequest) -> None:
        sub.pending_dispatch = False
        if sub.satisfied or sub.failed:
            return
        self._dispatch(sub, t, hedge=False)

    def _handle_hedge(self, t: float, sub: SubRequest) -> None:
        if sub.satisfied or sub.failed or len(sub.attempts) > 1:
            return
        self._dispatch(sub, t, hedge=True)

    # ------------------------------------------------------------ main loop

    def run(self) -> list[ClusterRequest]:
        entries = self.driver.initial_arrival_entries()
        self._heap = [(t, seq, "arrival", (client, job))
                      for t, seq, client, job in entries]
        heapq.heapify(self._heap)
        self._seq = len(entries)
        handlers = {
            "arrival": self._handle_arrival,
            "node_recv": self._handle_node_recv,
            "coord_recv": self._handle_coord_recv,
            "timeout": self._handle_timeout,
            "dispatch": self._handle_dispatch,
            "hedge": self._handle_hedge,
        }
        while self._heap:
            t, _seq, kind, payload = heapq.heappop(self._heap)
            handler = handlers.get(kind)
            if handler is None:
                raise ClusterError(f"unknown cluster event kind {kind!r}")
            handler(t, payload)
            self.events += 1
        self.machine.settle()
        for node in self.nodes:
            node.machine.settle()
        return self.requests
