"""``repro.cluster`` — fault-tolerant sharded scatter-gather serving.

N independent simulated machines, each running its own database over a
hash-sharded slice of TPC-H, behind a seeded network model (per-link
latency, per-byte NIC energy) and a coordinator that scatter-gathers
mergeable aggregates with replica failover, hedged requests, and
partial-result degradation.  Every joule on every machine is
attributed — the useful/wasted Active-energy split of
:mod:`repro.serve` extends cluster-wide, with hedge losers, crashed
nodes' lost partial work, and failover re-reads itemised by cause.

:func:`run_cluster` is the one-call entry point the CLI, the chaos
scenarios, and the benchmarks use.
"""

from __future__ import annotations

from contextlib import ExitStack

from repro.cluster.config import ClusterConfig
from repro.cluster.coordinator import DEGRADED_PARTIAL, ClusterCoordinator
from repro.cluster.report import (
    CLUSTER_SCHEMA_VERSION,
    build_cluster_report,
    cluster_energy_split,
    render_cluster_summary,
)
from repro.cluster.topology import (
    CLUSTER_TABLES,
    ClusterNode,
    ShardMap,
    build_nodes,
    cluster_jobs,
    cluster_mix,
    load_sharded,
)
from repro.db.sharding import (
    merge_partials,
    partition_rows,
    shard_aggregate,
    shard_of,
    shard_scan,
    shard_table_name,
)
from repro.faults import FaultInjector
from repro.micro.measurement import measure_background
from repro.obs import Tracer
from repro.seeding import derive_seed, require_seed
from repro.serve.drivers import make_driver
from repro.serve.resilience import CircuitBreaker
from repro.sim.network import NetworkModel
from repro.workloads.tpch import TpchData

__all__ = [
    "CLUSTER_SCHEMA_VERSION",
    "CLUSTER_TABLES",
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterNode",
    "DEGRADED_PARTIAL",
    "NetworkModel",
    "ShardMap",
    "build_cluster_report",
    "build_nodes",
    "cluster_energy_split",
    "cluster_jobs",
    "cluster_mix",
    "load_sharded",
    "merge_partials",
    "partition_rows",
    "render_cluster_summary",
    "run_cluster",
    "shard_aggregate",
    "shard_of",
    "shard_scan",
    "shard_table_name",
]


def run_cluster(config: ClusterConfig, out: dict | None = None) -> dict:
    """Run one complete cluster simulation and return its JSON report.

    Builds coordinator + N node machines, shards and loads the data,
    measures background power per machine, runs the scatter-gather
    event loop under one span tracer per machine, and assembles the
    report.  Fully deterministic: the same config (seed included)
    produces the same report, byte for byte once serialised with
    sorted keys — across ``exec_mode`` reference/batched too.

    ``out``, if given, receives the run's internals (``coordinator``,
    ``traces``, ``network``, ``shard_map``) for white-box tests; the
    report itself never depends on it.
    """
    config.validate()
    seed = require_seed(config.seed, "cluster")
    coord, nodes = build_nodes(config, seed)
    shard_map = ShardMap(
        n_shards=config.nodes,
        replication=config.replication,
        n_nodes=config.nodes,
    )
    data = TpchData(config.tier,
                    seed=derive_seed(seed, "cluster", "tpch-datagen"))
    load_sharded(nodes, shard_map, data)
    injector = None
    if config.faults is not None and config.faults.any_enabled:
        injector = FaultInjector(
            config.faults,
            seed=derive_seed(seed, "faults"),
            metrics=coord.metrics,
        )
    machines = {"coord": coord}
    for node in nodes:
        machines[node.name] = node.machine
    network = NetworkModel(
        machines, seed,
        base_latency_s=config.net_latency_s,
        bytes_per_s=config.net_bytes_per_s,
        payload_factor=config.net_payload_factor,
        injector=injector,
    )
    specs = cluster_jobs(shard_map)
    mix = cluster_mix(specs, shard_map, config.clients)
    driver = make_driver(
        config.mode, mix,
        n_clients=config.clients,
        n_queries=config.queries,
        seed=seed,
        tenants=config.tenants,
        rate_qps=config.rate_qps,
        think_s=config.think_s,
    )
    backgrounds = {name: measure_background(machines[name])
                   for name in sorted(machines)}
    if injector is not None:
        # Arm the single-machine fault sites on every node only now,
        # after the load and the background measurement: faults hit the
        # serving window, not setup, and disk/page sites fire
        # cluster-wide through the same plan that drives the new
        # node/net sites.
        for node in nodes:
            node.machine.fault_injector = injector
            node.machine.disk.injector = injector
    breaker = None
    if config.breaker_threshold is not None:
        breaker = CircuitBreaker(
            config.breaker_threshold,
            window=config.breaker_window,
            cooloff_s=config.breaker_cooloff_s,
            metrics=coord.metrics,
        )
    coordinator = ClusterCoordinator(
        config, coord, nodes, network, shard_map, specs, driver, seed,
        injector=injector, breaker=breaker,
    )
    tracers = {name: Tracer(machines[name],
                            background=backgrounds[name],
                            name=f"cluster/{name}")
               for name in sorted(machines)}
    with ExitStack() as stack:
        for name in sorted(tracers):
            stack.enter_context(tracers[name])
        coordinator.run()
    traces = {name: tracers[name].finish() for name in sorted(tracers)}
    if out is not None:
        out.update(coordinator=coordinator, traces=traces,
                   network=network, shard_map=shard_map)
    return build_cluster_report(config, coordinator, traces, network,
                                injector=injector)
