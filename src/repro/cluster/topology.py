"""Cluster topology: nodes, shard placement, and the sharded loader.

A cluster is N data nodes (each a full :class:`~repro.sim.machine.
Machine` + :class:`~repro.db.engine.Database`) plus one coordinator
machine that runs no database — it routes, merges, and pays the
scatter-gather overhead in its own joules.

Shard ``s`` of every table lives on nodes ``(s + r) % N`` for
``r < replication`` (chained placement), so replication factor 1
degenerates to one owner per shard and factor N to full replication.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import Machine, intel_i7_4790
from repro.db import Database, engine_profile
from repro.db.operators import AggSpec
from repro.db.exprs import Col
from repro.db.sharding import partition_rows, shard_aggregate, shard_table_name
from repro.seeding import derive_seed
from repro.serve.request import JobTemplate
from repro.serve.workload import QueryMix
from repro.workloads.tpch import TpchData
from repro.workloads.tpch import schema as S

#: Tables the cluster shards and queries (scan-heavy fact tables; the
#: per-client job cycle below rotates over them).
CLUSTER_TABLES = (
    ("lineitem", "l_extendedprice"),
    ("orders", "o_totalprice"),
    ("partsupp", "ps_supplycost"),
)


@dataclass
class ClusterNode:
    """One data node: its machine, database, and runtime state."""

    name: str
    machine: Machine
    db: Database
    #: Sim time until which the node is rebooting after a crash.
    crashed_until: float = 0.0
    subreqs_served: int = 0
    crashes: int = 0
    slowdowns: int = 0


class ShardMap:
    """Shard count, replica placement, and per-shard row counts."""

    def __init__(self, n_shards: int, replication: int, n_nodes: int):
        self.n_shards = n_shards
        self.replication = replication
        self.n_nodes = n_nodes
        #: rows[table][shard] — filled by the loader (partial-work model
        #: and SJF-style costs need them).
        self.rows: dict[str, list[int]] = {}

    def replicas(self, shard: int) -> tuple[int, ...]:
        """Node indices holding ``shard``, in preference order."""
        return tuple((shard + r) % self.n_nodes
                     for r in range(self.replication))


def build_nodes(config, seed: int) -> tuple[Machine, list[ClusterNode]]:
    """Coordinator machine plus N data nodes, deterministically seeded.

    Node ``i``'s machine noise stream is derived from the path
    ``("cluster", "node{i}", "machine-noise")`` so adding or removing
    nodes never perturbs another node's machine.
    """
    coord = Machine(
        intel_i7_4790(scale=config.scale),
        seed=derive_seed(seed, "cluster", "coord", "machine-noise"),
        exec_mode=config.exec_mode,
    )
    nodes = []
    for i in range(config.nodes):
        name = f"node{i}"
        machine = Machine(
            intel_i7_4790(scale=config.scale),
            seed=derive_seed(seed, "cluster", name, "machine-noise"),
            exec_mode=config.exec_mode,
        )
        db = Database(machine, engine_profile(config.engine, config.setting),
                      name=name)
        nodes.append(ClusterNode(name=name, machine=machine, db=db))
    return coord, nodes


def load_sharded(nodes: list[ClusterNode], shard_map: ShardMap,
                 data: TpchData) -> None:
    """Hash-partition the cluster tables and load replicas.

    Each shard becomes its own catalog table ``{table}@s{shard}`` on
    every replica node (clustered on the original primary key); the
    engine stays shard-oblivious.  Node-major load order (node, table,
    shard) keeps each machine's charge sequence independent of the
    other nodes.
    """
    tables = data.tables()
    partitioned = {}
    for table, _column in CLUSTER_TABLES:
        parts = partition_rows(tables[table], shard_map.n_shards)
        partitioned[table] = parts
        shard_map.rows[table] = [len(rows) for rows in parts]
    for index, node in enumerate(nodes):
        for table, _column in CLUSTER_TABLES:
            for shard in range(shard_map.n_shards):
                if index not in shard_map.replicas(shard):
                    continue
                node.db.create_table(
                    shard_table_name(table, shard),
                    S.SCHEMAS[table],
                    partitioned[table][shard],
                    primary_key=S.PRIMARY_KEYS[table],
                )


@dataclass(frozen=True)
class ClusterJobSpec:
    """Scatter-gather shape of one cluster job: the sharded table, the
    mergeable aggregates, and the per-shard sub-plans (one per shard,
    built once so plan identity is stable across the run)."""

    table: str
    aggs: tuple[AggSpec, ...]
    shard_plans: tuple = field(default=())


def cluster_jobs(shard_map: ShardMap) -> dict[str, ClusterJobSpec]:
    """The cluster job catalog: one count+sum full-table aggregate per
    sharded table (exactly mergeable across shards)."""
    specs = {}
    for table, column in CLUSTER_TABLES:
        aggs = (AggSpec("n", "count"),
                AggSpec("total", "sum", Col(column)))
        plans = tuple(shard_aggregate(table, shard, aggs)
                      for shard in range(shard_map.n_shards))
        specs[f"agg_{table}"] = ClusterJobSpec(
            table=table, aggs=aggs, shard_plans=plans)
    return specs


def cluster_mix(specs: dict[str, ClusterJobSpec], shard_map: ShardMap,
                n_clients: int) -> QueryMix:
    """Per-client job cycles over the cluster job catalog.

    The driver layer treats jobs as opaque payloads, so the cluster
    reuses :class:`~repro.serve.request.JobTemplate` with ``make=None``
    (the coordinator scatter-gathers by job *name*; nothing ever calls
    ``make``).  Cycles are phase-shifted per client, same as the serve
    mixes.
    """
    jobs = tuple(
        JobTemplate(
            name=name,
            tables=(spec.table,),
            cost=float(sum(shard_map.rows.get(spec.table, ()))),
            make=None,
        )
        for name, spec in specs.items()
    )
    cycles = [jobs[i % len(jobs):] + jobs[: i % len(jobs)]
              for i in range(max(1, n_clients))]
    return QueryMix("cluster", cycles)
