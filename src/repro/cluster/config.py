"""Configuration of one simulated cluster run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.faults import FaultPlan


@dataclass
class ClusterConfig:
    """Everything that parameterises one scatter-gather cluster run.

    Workload shape mirrors :class:`~repro.serve.loop.ServeConfig` (the
    same drivers generate arrivals); the cluster adds topology (nodes,
    replication), the network model, and the coordinator's resilience
    knobs (sub-request timeout, bounded failover, hedging, partial
    results, circuit breaker).
    """

    # --- topology ---
    nodes: int = 4
    #: Replicas per shard (1 = no redundancy, no failover possible).
    replication: int = 2
    # --- workload (driver-compatible with repro.serve) ---
    mode: str = "closed"
    clients: int = 8
    queries: int = 80
    tenants: int = 2
    rate_qps: float = 200.0
    think_s: float = 0.0
    seed: int = 0
    engine: str = "postgresql"
    setting: str = "baseline"
    tier: str = "10MB"
    scale: int = 16
    exec_mode: str = "batched"
    # --- network ---
    #: Base per-link propagation latency (each link draws ±20% once).
    net_latency_s: float = 2e-4
    #: Link bandwidth (bytes per simulated second); ~1 Gbit/s default.
    net_bytes_per_s: float = 1.25e8
    #: Scales the bytes charged as NIC energy per message (0 = free NIC,
    #: used by the single-node-equivalence tests).
    net_payload_factor: float = 1.0
    # --- resilience ---
    faults: Optional[FaultPlan] = None
    #: Coordinator-side timeout per sub-request attempt.
    subreq_timeout_s: float = 0.05
    #: Max attempts per sub-request, first try included.
    failover_attempts: int = 3
    #: Delay before a failover re-dispatch after a timeout.
    failover_backoff_s: float = 0.002
    #: Hedge a sub-request once it outlives this quantile of observed
    #: sub-request latencies (None = no hedging).
    hedge_quantile: Optional[float] = 0.95
    #: Completed sub-requests observed before hedging arms (cold start).
    hedge_min_samples: int = 16
    #: Complete with partial results when a shard is unreachable
    #: (degraded_partial) instead of failing the whole request.
    allow_partial: bool = True
    #: Circuit breaker over sub-request outcomes (None = no breaker).
    breaker_threshold: Optional[float] = None
    breaker_window: int = 16
    breaker_cooloff_s: float = 0.1
    #: Tenants (by index) still served while the breaker is open.
    degrade_keep_tenants: int = 1

    def validate(self) -> "ClusterConfig":
        if self.nodes < 1:
            raise ConfigError(f"nodes must be >= 1, got {self.nodes}")
        if not 1 <= self.replication <= self.nodes:
            raise ConfigError(
                f"replication must be in [1, nodes={self.nodes}], "
                f"got {self.replication}"
            )
        if self.clients < 1:
            raise ConfigError(f"clients must be >= 1, got {self.clients}")
        if self.queries < 1:
            raise ConfigError(f"queries must be >= 1, got {self.queries}")
        if self.tenants < 1:
            raise ConfigError(f"tenants must be >= 1, got {self.tenants}")
        if self.net_latency_s < 0:
            raise ConfigError("net_latency_s must be >= 0")
        if self.net_bytes_per_s <= 0:
            raise ConfigError("net_bytes_per_s must be positive")
        if self.net_payload_factor < 0:
            raise ConfigError("net_payload_factor must be >= 0")
        if self.faults is not None:
            self.faults.validate()
        if self.subreq_timeout_s <= 0:
            raise ConfigError("subreq_timeout_s must be positive")
        if self.failover_attempts < 1:
            raise ConfigError(
                f"failover_attempts must be >= 1, got {self.failover_attempts}"
            )
        if self.failover_backoff_s < 0:
            raise ConfigError("failover_backoff_s must be >= 0")
        if self.hedge_quantile is not None and not (
            0.0 < self.hedge_quantile < 1.0
        ):
            raise ConfigError(
                f"hedge_quantile must be in (0, 1), got {self.hedge_quantile}"
            )
        if self.hedge_min_samples < 1:
            raise ConfigError("hedge_min_samples must be >= 1")
        if self.breaker_threshold is not None and not (
            0.0 < self.breaker_threshold <= 1.0
        ):
            raise ConfigError(
                f"breaker_threshold must be in (0, 1], "
                f"got {self.breaker_threshold}"
            )
        if self.breaker_window < 1:
            raise ConfigError("breaker_window must be >= 1")
        if self.breaker_cooloff_s <= 0:
            raise ConfigError("breaker_cooloff_s must be positive")
        if self.degrade_keep_tenants < 1:
            raise ConfigError("degrade_keep_tenants must be >= 1")
        return self
