"""Deterministic, seed-driven fault injection.

The paper's micro-accounting prices *successful* work; a production
serving system also burns joules on work that fails — retried reads,
corrupted pages repaired by a re-read, requests abandoned past their
deadline.  This module is the chaos source that makes those failures
reproducible: a :class:`FaultInjector` owns one private RNG stream per
injection *site* (derived via :func:`repro.seeding.derive_seed`), so

* the same root seed replays the exact same fault sequence, and
* a draw at one site never perturbs another site's stream (adding a
  new site, or firing one more often, leaves the others untouched).

Sites and the components that consult them:

========================  ====================================================
``disk.error``            :class:`~repro.sim.disk.DiskModel` — transient read
                          errors (:class:`~repro.errors.TransientDiskError`)
``disk.slow``             :class:`~repro.sim.disk.DiskModel` — latency spikes
``page.corrupt``          :class:`~repro.db.bufferpool.BufferPool` — page
                          arrives corrupted; detected by checksum, repaired
                          by a charged re-read
``core.stall``            :class:`~repro.sim.cores.CoreSet` — a quantum ends
                          in a core stall (charged as idle time)
``dvfs.stuck``            :class:`~repro.sim.dvfs.EistGovernor` — the
                          governor refuses to change P-state for N epochs
``request.error``         :class:`~repro.serve.loop.QueryServer` — a query
                          attempt aborts mid-quantum
``node.crash``            :class:`~repro.cluster.coordinator.ClusterCoordinator`
                          — a node dies mid-sub-query; partial work is lost
                          and the node restarts cold after a fixed outage
``node.slow``             coordinator — a node executes one sub-query at a
                          fraction of its speed (straggler)
``net.partition``         :class:`~repro.cluster.network.NetworkModel` — a
                          link goes down for a fixed episode; messages sent
                          while it is down are lost
``net.drop``              network — one message is silently dropped
========================  ====================================================

Everything is pay-as-you-go: a site whose probability is zero draws
nothing (its RNG is never even created), so a plan with all
probabilities at zero is bit-identical to running with no injector.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Optional

from repro.errors import FaultConfigError
from repro.obs.metrics import MetricsRegistry
from repro.seeding import derive_seed

#: Every injection site, in documentation order.
FAULT_SITES = (
    "disk.error",
    "disk.slow",
    "page.corrupt",
    "core.stall",
    "dvfs.stuck",
    "request.error",
    "node.crash",
    "node.slow",
    "net.partition",
    "net.drop",
)

_FAULT_SITE_SET = frozenset(FAULT_SITES)


@dataclass(frozen=True)
class FaultPlan:
    """Probabilities and shapes of every injectable fault.

    All ``*_p`` fields are per-event probabilities in ``[0, 1]`` (per
    disk read, per buffer-pool page fill, per quantum, per governor
    epoch).  A probability of zero disables the site entirely.
    """

    #: Transient disk read errors (the failed attempt's device time is
    #: still charged, as wasted idle).
    disk_error_p: float = 0.0
    #: IO-level retries the buffer pool attempts before giving up and
    #: surfacing the fault to the execution layer.
    disk_error_max_retries: int = 3
    #: Disk latency spikes: the access-latency term is multiplied.
    disk_slow_p: float = 0.0
    disk_slow_factor: float = 20.0
    #: Page corruption in transit (detected by the per-page checksum).
    page_corrupt_p: float = 0.0
    #: Repair re-reads attempted before declaring the page unreadable.
    page_repair_max: int = 3
    #: Core stalls: a quantum ends in a stall of ``core_stall_s``.
    core_stall_p: float = 0.0
    core_stall_s: float = 2e-3
    #: Stuck DVFS: the EIST governor freezes at its current P-state for
    #: ``dvfs_stuck_epochs`` epochs.
    dvfs_stuck_p: float = 0.0
    dvfs_stuck_epochs: int = 50
    #: Request-level execution faults (one draw per quantum).
    request_error_p: float = 0.0
    #: Node crashes (cluster runs): a node dies mid-sub-query, loses its
    #: partial work, and comes back cold after ``node_crash_restart_s``.
    node_crash_p: float = 0.0
    node_crash_restart_s: float = 0.05
    #: Node stragglers: one sub-query runs ``node_slow_factor`` times
    #: slower (the extra time is stall, charged as idle).
    node_slow_p: float = 0.0
    node_slow_factor: float = 8.0
    #: Network partitions: the link carrying the message goes down for
    #: ``net_partition_s`` of simulated time; messages in that window
    #: are lost without further draws (one episode, one draw).
    net_partition_p: float = 0.0
    net_partition_s: float = 0.02
    #: Silent single-message drops.
    net_drop_p: float = 0.0

    def __post_init__(self) -> None:
        # Reject garbage at construction: a plan that exists is valid.
        self.validate()

    def validate(self) -> "FaultPlan":
        for field in fields(self):
            value = getattr(self, field.name)
            if field.name.endswith("_p") and not 0.0 <= value <= 1.0:
                raise FaultConfigError(
                    f"{field.name} must be a probability in [0, 1], "
                    f"got {value}"
                )
        if self.disk_error_max_retries < 0:
            raise FaultConfigError("disk_error_max_retries must be >= 0")
        if self.disk_slow_factor < 1.0:
            raise FaultConfigError(
                f"disk_slow_factor must be >= 1, got {self.disk_slow_factor}"
            )
        if self.page_repair_max < 1:
            raise FaultConfigError("page_repair_max must be >= 1")
        if self.core_stall_s < 0:
            raise FaultConfigError("core_stall_s must be >= 0")
        if self.dvfs_stuck_epochs < 1:
            raise FaultConfigError("dvfs_stuck_epochs must be >= 1")
        if self.node_crash_restart_s < 0:
            raise FaultConfigError("node_crash_restart_s must be >= 0")
        if self.node_slow_factor < 1.0:
            raise FaultConfigError(
                f"node_slow_factor must be >= 1, got {self.node_slow_factor}"
            )
        if self.net_partition_s < 0:
            raise FaultConfigError("net_partition_s must be >= 0")
        return self

    @property
    def any_enabled(self) -> bool:
        return any(
            getattr(self, field.name) > 0.0
            for field in fields(self) if field.name.endswith("_p")
        )

    def as_dict(self) -> dict:
        """JSON-serialisable view, field order (stable for reports)."""
        return {field.name: getattr(self, field.name)
                for field in fields(self)}


class FaultInjector:
    """Seeded chaos source shared by every instrumented component.

    One injector serves a whole run; components hold a reference and
    ask it yes/no questions (``disk_error()``, ``core_stall()``, ...).
    Each site's decisions come from a private RNG stream, and every
    *fired* fault increments the ``faults.injected{site=...}`` counter
    family in the metrics registry (injection is a cold event; the
    counter cost is off the hot path by construction).
    """

    def __init__(self, plan: FaultPlan, seed: int,
                 metrics: Optional[MetricsRegistry] = None):
        self.plan = plan.validate()
        self.seed = seed
        self.metrics = metrics
        self._rngs: dict[str, random.Random] = {}
        #: Fired-fault counts per site (plain ints; the report reads them).
        self.injected: dict[str, int] = {}

    # ------------------------------------------------------------ core draw

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            rng = random.Random(derive_seed(self.seed, "faults", site))
            self._rngs[site] = rng
        return rng

    def fire(self, site: str, probability: float) -> bool:
        """One seeded decision at ``site``; records the fault if it fires.

        Zero-probability sites return False without drawing, so an
        all-zero plan consumes no randomness at all.
        """
        if site not in _FAULT_SITE_SET:
            raise FaultConfigError(
                f"unknown fault site {site!r}; known sites: "
                + ", ".join(FAULT_SITES)
            )
        if probability <= 0.0:
            return False
        if self._rng(site).random() >= probability:
            return False
        self.injected[site] = self.injected.get(site, 0) + 1
        if self.metrics is not None:
            self.metrics.counter(
                "faults.injected", labels={"site": site}
            ).inc()
        return True

    # ------------------------------------------------------------ sites

    def disk_error(self) -> bool:
        return self.fire("disk.error", self.plan.disk_error_p)

    def disk_slow(self) -> bool:
        return self.fire("disk.slow", self.plan.disk_slow_p)

    def page_corrupt(self) -> bool:
        return self.fire("page.corrupt", self.plan.page_corrupt_p)

    def core_stall(self) -> bool:
        return self.fire("core.stall", self.plan.core_stall_p)

    def dvfs_stuck(self) -> bool:
        return self.fire("dvfs.stuck", self.plan.dvfs_stuck_p)

    def request_error(self) -> bool:
        return self.fire("request.error", self.plan.request_error_p)

    def node_crash(self) -> bool:
        return self.fire("node.crash", self.plan.node_crash_p)

    def node_slow(self) -> bool:
        return self.fire("node.slow", self.plan.node_slow_p)

    def net_partition(self) -> bool:
        return self.fire("net.partition", self.plan.net_partition_p)

    def net_drop(self) -> bool:
        return self.fire("net.drop", self.plan.net_drop_p)

    # ------------------------------------------------------------ reporting

    def counts(self) -> dict:
        """Fired-fault counts per site, sorted (report-stable)."""
        return dict(sorted(self.injected.items()))
