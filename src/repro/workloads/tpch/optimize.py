"""Optimizer-vs-hand-built measured harness over the 22 TPC-H queries.

For every query × engine profile, measures the simulated active energy
of the hand-built plan and of the optimizer's chosen plan (each run
warmed first, priced with the machine's calibrated ``dE_m``), checks
the two produce identical results, and reports per-query ratios plus a
win/tie/regression summary.  Measurement noise is disabled: the
comparison is between two deterministic executions on one machine, and
the paper's multiplicative noise draw would swamp sub-percent plan
differences.

The energy gate inside the optimizer only keeps rewrites it *predicts*
are no worse; this harness is the ground truth that the prediction
holds for measured joules.  ``repro bench`` embeds a quick subset as a
CI regression gate; ``repro optimize --compare`` runs it standalone.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.db.optimizer import OptimizationResult, Optimizer
from repro.db.planner import Limit, Logical, Project, Sort
from repro.micro.measurement import run_measured
from repro.workloads.tpch.queries import QUERIES

#: Artifact identity (``repro.obs.diff`` keys on these).
ARTIFACT_KIND = "optimizer"
ARTIFACT_SCHEMA_VERSION = 1

ENGINES = ("postgresql", "sqlite", "mysql")

#: Quick-mode subset: the cheapest queries that still cover every pass
#: family (scan-heavy Q1/Q6, join-reorder Q5/Q10, top-N Q3/Q18).
QUICK_QUERIES = (1, 3, 5, 6, 10, 18)

#: Full runs use a tier big enough that top-N inputs overflow their
#: limits (at 10MB most sorts see fewer rows than their LIMIT, so a
#: bounded sort cannot show a measured win).
FULL_TIER = "500MB"
QUICK_TIER = "10MB"

#: Even with measurement noise disabled, repeated runs of an identical
#: workload drift by up to ~1e-4 relative (cache/pager state cycles
#: between runs).  Outcomes are classified against a band an order of
#: magnitude wider, so a tie never reads as a win or a regression.
WIN_EPSILON = 1e-3
REGRESSION_EPSILON = 1e-3


# ---------------------------------------------------------- result equality

def _approx_value_eq(a, b) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        try:
            return math.isclose(a, b, rel_tol=1e-6, abs_tol=1e-9)
        except TypeError:
            return a == b
    return a == b


def _row_sort_key(row) -> tuple:
    # Collapse float dust before ordering so both sides sort identically.
    return tuple(
        f"{v:.9g}" if isinstance(v, float) else repr(v) for v in row
    )


def rows_equal(expected: Sequence, actual: Sequence,
               ordered: bool) -> bool:
    """Row-set equality with float tolerance; ``ordered`` pins order."""
    if len(expected) != len(actual):
        return False
    left, right = list(expected), list(actual)
    if not ordered:
        left = sorted(left, key=_row_sort_key)
        right = sorted(right, key=_row_sort_key)
    for row_a, row_b in zip(left, right):
        if len(row_a) != len(row_b):
            return False
        if not all(_approx_value_eq(a, b) for a, b in zip(row_a, row_b)):
            return False
    return True


def plan_fixes_order(plan: Logical) -> bool:
    """Whether the plan's root pins its output order (Sort at the top,
    possibly under Limit/Project) — then equality is order-sensitive."""
    node = plan
    while isinstance(node, (Limit, Project)):
        node = node.child
    return isinstance(node, Sort)


# ------------------------------------------------------------- measurement

class _RecordingOptimizer:
    """Wraps an :class:`Optimizer` as an engine hook, keeping the audit
    trail of every plan it optimized (multi-pass queries plan several
    statements per run)."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.results: list[OptimizationResult] = []

    def optimize(self, plan: Logical) -> OptimizationResult:
        result = self.optimizer.optimize(plan)
        self.results.append(result)
        return result


def _measure(lab, fn) -> float:
    """Deterministic active energy of one warmed workload run."""
    cal = lab.calibration()
    machine = lab.machine
    machine.disable_eist()
    machine.set_pstate(cal.pstate)
    machine.set_prefetcher(True)
    machine.set_cstates(False)
    fn()  # warm-up: steady-state caches, pool, and temp arena
    measurement = run_measured(machine, fn, cal.background,
                               apply_noise=False)
    return measurement.active_energy_j


def _outcome(handbuilt_j: float, optimized_j: float,
             kept: Sequence[str] = ()) -> str:
    if optimized_j < handbuilt_j * (1.0 - WIN_EPSILON):
        return "win" if kept else "tie"
    if optimized_j > handbuilt_j * (1.0 + REGRESSION_EPSILON):
        # With no rewrite kept, both runs execute identical plans: any
        # delta is run-to-run jitter, not an optimizer decision.
        return "regression" if kept else "tie"
    return "tie"


def compare_query(lab, engine: str, number: int,
                  optimizer: Optimizer) -> dict:
    """Measure hand-built vs optimized energy for one query."""
    db = lab.database(engine)
    query = QUERIES[number]
    recorder = _RecordingOptimizer(optimizer)

    captured: dict[str, list] = {}

    if query.plan is not None:
        result = optimizer.optimize(query.plan)
        recorder.results.append(result)
        ordered = plan_fixes_order(query.plan)

        def run_hand():
            captured["hand"] = db.execute(query.plan)

        def run_opt():
            captured["opt"] = db.execute(result.plan)
    else:
        # Multi-pass query: the engine hook optimizes each statement it
        # plans; the run's final output order is fixed by the query.
        ordered = True

        def run_hand():
            db.optimizer = None
            try:
                captured["hand"] = query.run(db)
            finally:
                db.optimizer = None

        def run_opt():
            db.optimizer = recorder
            try:
                captured["opt"] = query.run(db)
            finally:
                db.optimizer = None

    handbuilt_j = _measure(lab, run_hand)
    optimized_j = _measure(lab, run_opt)

    kept: list[str] = []
    for res in recorder.results:
        for name in res.kept_passes:
            if name not in kept:
                kept.append(name)
    return {
        "handbuilt_j": handbuilt_j,
        "optimized_j": optimized_j,
        "ratio": optimized_j / handbuilt_j if handbuilt_j > 0 else 1.0,
        "rows_match": rows_equal(captured["hand"], captured["opt"], ordered),
        "kept_passes": kept,
        "outcome": _outcome(handbuilt_j, optimized_j, kept),
    }


def run_optimizer_bench(quick: bool = False,
                        tier: Optional[str] = None,
                        engines: Sequence[str] = ENGINES,
                        queries: Optional[Sequence[int]] = None) -> dict:
    """The full harness: every query × engine, one artifact document."""
    from repro.analysis.lab import Lab, LabConfig

    if tier is None:
        tier = QUICK_TIER if quick else FULL_TIER
    if queries is None:
        queries = QUICK_QUERIES if quick else tuple(sorted(QUERIES))

    lab = Lab(LabConfig(tier=tier))
    doc: dict = {
        "kind": ARTIFACT_KIND,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "tier": tier,
        "quick": quick,
        "engines": {},
    }
    wins = ties = regressions = mismatches = 0
    topn_wins = join_wins = 0
    for engine in engines:
        db = lab.database(engine)
        delta_e = lab.calibration().delta_e
        optimizer = Optimizer(db.catalog, db.profile, delta_e)
        per_engine: dict = {}
        for number in queries:
            entry = compare_query(lab, engine, number, optimizer)
            per_engine[f"Q{number}"] = entry
            if not entry["rows_match"]:
                mismatches += 1
            if entry["outcome"] == "win":
                wins += 1
                if "limit-pushdown" in entry["kept_passes"]:
                    topn_wins += 1
                if "join-order" in entry["kept_passes"]:
                    join_wins += 1
            elif entry["outcome"] == "regression":
                regressions += 1
            else:
                ties += 1
        doc["engines"][engine] = per_engine
    doc["summary"] = {
        "queries": len(queries) * len(engines),
        "wins": wins,
        "ties": ties,
        "regressions": regressions,
        "result_mismatches": mismatches,
        "topn_wins": topn_wins,
        "join_reorder_wins": join_wins,
    }
    return doc
