"""Deterministic TPC-H data generator at simulator-friendly scales.

The paper benchmarks 100 MB / 500 MB / 1 GB databases (plus a 10 MB one
for the ARM proof-of-concept).  Those byte sizes map here to row-count
tiers scaled ~1:400, with the machine's caches scaled alongside
(DESIGN.md §2), preserving the data:cache ratio that the paper's
hit-rate regimes depend on.

Value distributions follow the dbgen spec in shape: uniform order dates
over 1992–1998, 1–7 lineitems per order, ship = order + 1..121 days,
the standard categorical vocabularies (segments, priorities, ship
modes, brands, containers, return flags), and comment strings of
spec-like width.  Everything derives from one seed.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass
from datetime import date

from repro.errors import ConfigError
from repro.workloads.tpch import schema as S

logger = logging.getLogger(__name__)

SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW")
SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
SHIP_INSTRUCT = ("DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN")
CONTAINERS = ("SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX",
              "MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG",
              "JUMBO BOX", "JUMBO CASE", "JUMBO PKG", "JUMBO PACK", "WRAP BAG",
              "WRAP BOX")
TYPE_SYLL_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
TYPE_SYLL_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
TYPE_SYLL_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
NAME_WORDS = ("almond", "antique", "aquamarine", "azure", "beige", "bisque",
              "black", "blanched", "blue", "blush", "brown", "burlywood",
              "chartreuse", "chiffon", "chocolate", "coral", "cornflower",
              "cream", "cyan", "dark", "deep", "dim", "dodger", "drab",
              "firebrick", "floral", "forest", "frosted", "gainsboro",
              "ghost", "goldenrod", "green", "grey", "honeydew", "hot",
              "hotpink", "indian", "ivory", "khaki", "lace", "lavender")
REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)

_START = date(1992, 1, 1).toordinal()
_END = date(1998, 8, 2).toordinal()


@dataclass(frozen=True)
class ScaleTier:
    """Row counts of one database size tier."""

    name: str
    customers: int
    orders: int
    parts: int
    suppliers: int

    @property
    def partsupps(self) -> int:
        return self.parts * 4  # spec: 4 suppliers per part

    def __post_init__(self) -> None:
        if min(self.customers, self.orders, self.parts, self.suppliers) < 4:
            raise ConfigError(f"tier {self.name!r} too small to be meaningful")


#: The paper's database sizes mapped to tiers (≈1:400 row scale).
TIERS = {
    "10MB": ScaleTier("10MB", customers=16, orders=60, parts=20, suppliers=10),
    "100MB": ScaleTier("100MB", customers=90, orders=550, parts=100, suppliers=25),
    "500MB": ScaleTier("500MB", customers=450, orders=2750, parts=500, suppliers=50),
    "1GB": ScaleTier("1GB", customers=900, orders=5500, parts=1000, suppliers=100),
}

BASELINE_TIER = "100MB"


def tier(name: str) -> ScaleTier:
    try:
        return TIERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown tier {name!r}; known: {', '.join(TIERS)}"
        ) from None


def _comment(rng: random.Random, width: int) -> str:
    words = []
    length = 0
    while length < width - 8:
        word = rng.choice(NAME_WORDS)
        words.append(word)
        length += len(word) + 1
    return " ".join(words)[: width - 1]


def _phone(rng: random.Random, nationkey: int) -> str:
    return (f"{10 + nationkey}-{rng.randrange(100, 999)}-"
            f"{rng.randrange(100, 999)}-{rng.randrange(1000, 9999)}")


class TpchData:
    """All eight generated tables as lists of row tuples."""

    def __init__(self, tier_name: str = BASELINE_TIER, seed: int = 20200330):
        spec = tier(tier_name)
        rng = random.Random(seed)
        self.tier = spec
        self.seed = seed

        self.region = [
            (i, REGIONS[i], _comment(rng, 40)) for i in range(len(REGIONS))
        ]
        self.nation = [
            (i, name, regionkey, _comment(rng, 40))
            for i, (name, regionkey) in enumerate(NATIONS)
        ]
        self.supplier = [
            (
                k,
                f"Supplier#{k:09d}",
                _comment(rng, 32),
                # spread suppliers across nations so nation-scoped joins
                # (Q5, Q11, Q20, Q21) have matches at every tier
                (k - 1) % len(NATIONS),
                _phone(rng, rng.randrange(len(NATIONS))),
                round(rng.uniform(-999.99, 9999.99), 2),
                _comment(rng, 56),
            )
            for k in range(1, spec.suppliers + 1)
        ]
        self.customer = [
            (
                k,
                f"Customer#{k:09d}",
                _comment(rng, 32),
                rng.randrange(len(NATIONS)),
                _phone(rng, rng.randrange(len(NATIONS))),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(SEGMENTS),
                _comment(rng, 56),
            )
            for k in range(1, spec.customers + 1)
        ]
        self.part = [
            (
                k,
                " ".join(rng.sample(NAME_WORDS, 4)),
                f"Manufacturer#{1 + k % 5}",
                f"Brand#{1 + k % 5}{1 + (k // 5) % 5}",
                (f"{rng.choice(TYPE_SYLL_1)} {rng.choice(TYPE_SYLL_2)} "
                 f"{rng.choice(TYPE_SYLL_3)}"),
                rng.randrange(1, 51),
                rng.choice(CONTAINERS),
                round(900 + (k % 1000) + 0.01 * (k % 100), 2),
                _comment(rng, 16),
            )
            for k in range(1, spec.parts + 1)
        ]
        self.partsupp = []
        for k in range(1, spec.parts + 1):
            for j in range(4):
                suppkey = 1 + (k + j * (spec.suppliers // 4 + 1)) % spec.suppliers
                self.partsupp.append(
                    (
                        S.ps_key(k, suppkey),
                        k,
                        suppkey,
                        rng.randrange(1, 10000),
                        round(rng.uniform(1.0, 1000.0), 2),
                        _comment(rng, 40),
                    )
                )
        self.orders = []
        self.lineitem = []
        # dbgen leaves a third of customers without orders (Q13/Q22 rely
        # on that population existing).
        ordering_customers = max(1, spec.customers * 2 // 3)
        for okey in range(1, spec.orders + 1):
            custkey = rng.randrange(1, ordering_customers + 1)
            orderdate = rng.randrange(_START, _END - 151)
            n_lines = rng.randrange(1, 8)
            total = 0.0
            all_f = True
            any_f = False
            for line_no in range(1, n_lines + 1):
                partkey = rng.randrange(1, spec.parts + 1)
                # pick one of the part's four suppliers
                j = rng.randrange(4)
                suppkey = 1 + (partkey + j * (spec.suppliers // 4 + 1)) % spec.suppliers
                quantity = float(rng.randrange(1, 51))
                extended = round(quantity * (900 + partkey % 1000), 2)
                discount = round(rng.randrange(0, 11) / 100.0, 2)
                tax = round(rng.randrange(0, 9) / 100.0, 2)
                shipdate = orderdate + rng.randrange(1, 122)
                commitdate = orderdate + rng.randrange(30, 91)
                receiptdate = shipdate + rng.randrange(1, 31)
                today = date(1995, 6, 17).toordinal()
                if receiptdate <= today:
                    returnflag = rng.choice(("R", "A"))
                    linestatus = "F"
                    any_f = True
                else:
                    returnflag = "N"
                    linestatus = "O"
                    all_f = False
                self.lineitem.append(
                    (
                        S.l_key(okey, line_no), okey, partkey, suppkey, line_no,
                        quantity, extended, discount, tax,
                        returnflag, linestatus,
                        shipdate, commitdate, receiptdate,
                        rng.choice(SHIP_INSTRUCT), rng.choice(SHIP_MODES),
                        _comment(rng, 24),
                    )
                )
                total += extended * (1 + tax) * (1 - discount)
            status = "F" if all_f else ("O" if not any_f else "P")
            self.orders.append(
                (
                    okey, custkey, status, round(total, 2), orderdate,
                    rng.choice(PRIORITIES), f"Clerk#{rng.randrange(1, 1000):09d}",
                    0, _comment(rng, 40),
                )
            )

    def tables(self) -> dict[str, list]:
        return {
            "region": self.region,
            "nation": self.nation,
            "supplier": self.supplier,
            "customer": self.customer,
            "part": self.part,
            "partsupp": self.partsupp,
            "orders": self.orders,
            "lineitem": self.lineitem,
        }

    @property
    def n_rows_total(self) -> int:
        return sum(len(rows) for rows in self.tables().values())


def load_into(database, data: TpchData) -> None:
    """Create and populate all eight tables in ``database``."""
    for name, rows in data.tables().items():
        logger.info("loading %s: %d rows", name, len(rows))
        database.create_table(
            name,
            S.SCHEMAS[name],
            rows,
            primary_key=S.PRIMARY_KEYS[name],
            indexes=S.SECONDARY_INDEXES.get(name, ()),
        )
