"""SQL-text renditions of TPC-H queries for the SQL front-end.

The 22 reference queries live as logical-plan builders in
:mod:`repro.workloads.tpch.queries` (several need rewrites the SQL
subset cannot express).  The queries below are the subset whose
reference semantics fit the SQL front-end directly; each must produce
*exactly* the same rows as its plan-built twin — the strongest
end-to-end check the SQL stack has (``tests/workloads/test_sql_tpch.py``).

Dates are inlined with the ``DATE 'YYYY-MM-DD'`` literal; parameters
match the plan builders' values.
"""

from __future__ import annotations

#: query number -> SQL text semantically identical to the plan builder.
SQL_QUERIES = {
    1: """
        SELECT l_returnflag, l_linestatus,
               SUM(l_quantity) AS sum_qty,
               SUM(l_extendedprice) AS sum_base_price,
               SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
               SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
               AVG(l_quantity) AS avg_qty,
               AVG(l_extendedprice) AS avg_price,
               AVG(l_discount) AS avg_disc,
               COUNT(*) AS count_order
        FROM lineitem
        WHERE l_shipdate <= DATE '1998-09-02'
        GROUP BY l_returnflag, l_linestatus
        ORDER BY l_returnflag, l_linestatus
    """,
    3: """
        SELECT l_orderkey, o_orderdate, o_shippriority,
               SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM lineitem, orders, customer
        WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey
          AND c_mktsegment = 'BUILDING'
          AND o_orderdate < DATE '1995-03-15'
          AND l_shipdate > DATE '1995-03-15'
        GROUP BY l_orderkey, o_orderdate, o_shippriority
        ORDER BY revenue DESC, o_orderdate
        LIMIT 10
    """,
    5: None,   # needs the composite supplier/customer nation condition
    6: """
        SELECT SUM(l_extendedprice * l_discount) AS revenue
        FROM lineitem
        WHERE l_shipdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'
          AND l_discount BETWEEN 0.05 AND 0.07
          AND l_quantity < 24
    """,
    10: """
        SELECT c_custkey, c_name, c_acctbal, c_phone, n_name, c_address,
               c_comment,
               SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM lineitem, orders, customer, nation
        WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey
          AND c_nationkey = n_nationkey
          AND l_returnflag = 'R'
          AND o_orderdate BETWEEN DATE '1993-10-01' AND DATE '1993-12-31'
        GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address,
                 c_comment
        ORDER BY revenue DESC
        LIMIT 20
    """,
    12: """
        SELECT l_shipmode,
               SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH')
                        THEN 1 ELSE 0 END) AS high_line_count,
               SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH')
                        THEN 0 ELSE 1 END) AS low_line_count
        FROM lineitem, orders
        WHERE l_orderkey = o_orderkey
          AND l_shipmode IN ('MAIL', 'SHIP')
          AND l_commitdate < l_receiptdate
          AND l_shipdate < l_commitdate
          AND l_receiptdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'
        GROUP BY l_shipmode
        ORDER BY l_shipmode
    """,
    14: """
        SELECT 100.0 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                                THEN l_extendedprice * (1 - l_discount)
                                ELSE 0 END)
               / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
        FROM lineitem, part
        WHERE l_partkey = p_partkey
          AND l_shipdate BETWEEN DATE '1995-09-01' AND DATE '1995-09-30'
    """,
    19: """
        SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM lineitem, part
        WHERE l_partkey = p_partkey
          AND l_shipmode IN ('AIR', 'REG AIR')
          AND l_shipinstruct = 'DELIVER IN PERSON'
          AND ((p_brand = 'Brand#12'
                AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
                AND l_quantity BETWEEN 1 AND 11
                AND p_size BETWEEN 1 AND 5)
            OR (p_brand = 'Brand#23'
                AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
                AND l_quantity BETWEEN 10 AND 20
                AND p_size BETWEEN 1 AND 10)
            OR (p_brand = 'Brand#34'
                AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
                AND l_quantity BETWEEN 20 AND 30
                AND p_size BETWEEN 1 AND 15))
    """,
}

#: The numbers with a usable SQL text.
SQL_QUERY_NUMBERS = tuple(sorted(n for n, q in SQL_QUERIES.items()
                                 if q is not None))


def sql_text(number: int) -> str:
    """The SQL text of query ``number`` (KeyError/ValueError otherwise)."""
    text = SQL_QUERIES.get(number)
    if text is None:
        raise ValueError(
            f"Q{number} has no SQL-subset rendition; use the plan builder"
        )
    return " ".join(text.split())
