"""TPC-H schema, scaled down and adapted to the mini engine.

Differences from the reference schema, each documented because the
engine's storage model requires them:

* composite primary keys (partsupp, lineitem) get a synthetic scalar
  first column (``ps_key``, ``l_key``) because the B-tree keys scalars;
* dates are integer proleptic ordinals (``datetime.date.toordinal``);
* string widths are close to the spec but trimmed where a column's only
  use is equality/prefix matching.
"""

from __future__ import annotations

from datetime import date

from repro.db.types import Column, DATE, FLOAT, INT, STR, Schema


def d(year: int, month: int, day: int) -> int:
    """A TPC-H date literal as stored in the database."""
    return date(year, month, day).toordinal()


REGION = Schema([
    Column("r_regionkey", INT),
    Column("r_name", STR, 16),
    Column("r_comment", STR, 40),
])

NATION = Schema([
    Column("n_nationkey", INT),
    Column("n_name", STR, 16),
    Column("n_regionkey", INT),
    Column("n_comment", STR, 40),
])

SUPPLIER = Schema([
    Column("s_suppkey", INT),
    Column("s_name", STR, 24),
    Column("s_address", STR, 32),
    Column("s_nationkey", INT),
    Column("s_phone", STR, 16),
    Column("s_acctbal", FLOAT),
    Column("s_comment", STR, 56),
])

CUSTOMER = Schema([
    Column("c_custkey", INT),
    Column("c_name", STR, 24),
    Column("c_address", STR, 32),
    Column("c_nationkey", INT),
    Column("c_phone", STR, 16),
    Column("c_acctbal", FLOAT),
    Column("c_mktsegment", STR, 16),
    Column("c_comment", STR, 56),
])

PART = Schema([
    Column("p_partkey", INT),
    Column("p_name", STR, 40),
    Column("p_mfgr", STR, 24),
    Column("p_brand", STR, 16),
    Column("p_type", STR, 24),
    Column("p_size", INT),
    Column("p_container", STR, 16),
    Column("p_retailprice", FLOAT),
    Column("p_comment", STR, 16),
])

PARTSUPP = Schema([
    Column("ps_key", INT),           # synthetic scalar PK
    Column("ps_partkey", INT),
    Column("ps_suppkey", INT),
    Column("ps_availqty", INT),
    Column("ps_supplycost", FLOAT),
    Column("ps_comment", STR, 40),
])

ORDERS = Schema([
    Column("o_orderkey", INT),
    Column("o_custkey", INT),
    Column("o_orderstatus", STR, 8),
    Column("o_totalprice", FLOAT),
    Column("o_orderdate", DATE),
    Column("o_orderpriority", STR, 16),
    Column("o_clerk", STR, 16),
    Column("o_shippriority", INT),
    Column("o_comment", STR, 40),
])

LINEITEM = Schema([
    Column("l_key", INT),            # synthetic scalar PK
    Column("l_orderkey", INT),
    Column("l_partkey", INT),
    Column("l_suppkey", INT),
    Column("l_linenumber", INT),
    Column("l_quantity", FLOAT),
    Column("l_extendedprice", FLOAT),
    Column("l_discount", FLOAT),
    Column("l_tax", FLOAT),
    Column("l_returnflag", STR, 8),
    Column("l_linestatus", STR, 8),
    Column("l_shipdate", DATE),
    Column("l_commitdate", DATE),
    Column("l_receiptdate", DATE),
    Column("l_shipinstruct", STR, 24),
    Column("l_shipmode", STR, 16),
    Column("l_comment", STR, 24),
])

SCHEMAS = {
    "region": REGION,
    "nation": NATION,
    "supplier": SUPPLIER,
    "customer": CUSTOMER,
    "part": PART,
    "partsupp": PARTSUPP,
    "orders": ORDERS,
    "lineitem": LINEITEM,
}

PRIMARY_KEYS = {
    "region": "r_regionkey",
    "nation": "n_nationkey",
    "supplier": "s_suppkey",
    "customer": "c_custkey",
    "part": "p_partkey",
    "partsupp": "ps_key",
    "orders": "o_orderkey",
    "lineitem": "l_key",
}

#: Secondary indexes the engines build (the FK columns the 22 queries
#: join and range over).
SECONDARY_INDEXES = {
    "customer": ["c_nationkey"],
    "orders": ["o_custkey", "o_orderdate"],
    "lineitem": ["l_orderkey", "l_partkey", "l_shipdate"],
    "partsupp": ["ps_partkey", "ps_suppkey"],
    "supplier": ["s_nationkey"],
    "nation": ["n_regionkey"],
}

#: Encoding of the composite partsupp / lineitem keys.
PS_KEY_FACTOR = 1 << 20
L_KEY_FACTOR = 8


def ps_key(partkey: int, suppkey: int) -> int:
    return partkey * PS_KEY_FACTOR + suppkey


def l_key(orderkey: int, linenumber: int) -> int:
    return orderkey * L_KEY_FACTOR + linenumber
