"""TPC-H workload: schema, deterministic generator, and the 22 queries."""

from repro.workloads.tpch.datagen import (
    BASELINE_TIER,
    TIERS,
    ScaleTier,
    TpchData,
    load_into,
    tier,
)
from repro.workloads.tpch.optimize import run_optimizer_bench
from repro.workloads.tpch.queries import (
    ALL_QUERY_NUMBERS,
    QUERIES,
    TpchQuery,
    run_query,
)
from repro.workloads.tpch.schema import (
    PRIMARY_KEYS,
    SCHEMAS,
    SECONDARY_INDEXES,
    d,
)

__all__ = [
    "BASELINE_TIER", "TIERS", "ScaleTier", "TpchData", "load_into", "tier",
    "ALL_QUERY_NUMBERS", "QUERIES", "TpchQuery", "run_query",
    "run_optimizer_bench",
    "PRIMARY_KEYS", "SCHEMAS", "SECONDARY_INDEXES", "d",
]
