"""The 22 TPC-H queries as logical plans for the mini engine.

Every query keeps the reference query's *operator structure* — the scan
set, join graph, aggregation and ordering — because that is what shapes
the micro-op energy profile the paper measures (§3.3).  Where the mini
engine lacks a SQL feature, the standard rewrite is applied and noted:

* scalar subqueries (Q11, Q15, Q22) run as an explicit first pass whose
  result parameterises the main plan — exactly what the engine's
  executor would do internally;
* correlated aggregates (Q2, Q17, Q18, Q20) become joins against an
  aggregate subplan on the correlation key;
* Q21's EXISTS/NOT EXISTS pair over sibling lineitems is approximated
  with semi/anti joins on the order key (the different-supplier
  condition is dropped); the row counts differ slightly but the access
  pattern — three passes over lineitem with index probes — is intact.

Parameters follow the spec's validation values; two magnitude-sensitive
thresholds (Q11's fraction, Q18's quantity) are rescaled to the tiers'
row counts so the queries stay selective-but-nonempty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.db.engine import Database
from repro.db.exprs import (
    And,
    Between,
    CaseWhen,
    Col,
    Const,
    ExtractYear,
    InList,
    Not,
    Or,
    StrContains,
    StrPrefix,
    StrSlice,
    StrSuffix,
    TupleOf,
)
from repro.db.operators import AggSpec
from repro.db.planner import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    Logical,
    Project,
    Scan,
    Sort,
)
from repro.db.types import Row
from repro.workloads.tpch.schema import d


@dataclass(frozen=True)
class TpchQuery:
    number: int
    title: str
    run: Callable[[Database], list]
    #: The single logical plan, when the query is expressible as one
    #: (None for the multi-pass rewrites Q2/Q11/Q15/Q22).  The serving
    #: layer schedules and costs plan-backed queries directly.
    plan: "Logical | None" = None


def _revenue():
    return Col("l_extendedprice") * (Const(1) - Col("l_discount"))


def _agg(name, kind, expr=None):
    return AggSpec(name, kind, expr)


# --------------------------------------------------------------------- Q1-Q22

def _q1_plan() -> Logical:
    """Pricing summary report."""
    return Sort(
        Aggregate(
            Scan("lineitem", Col("l_shipdate") <= Const(d(1998, 12, 1) - 90)),
            (("l_returnflag", Col("l_returnflag")),
             ("l_linestatus", Col("l_linestatus"))),
            (
                _agg("sum_qty", "sum", Col("l_quantity")),
                _agg("sum_base_price", "sum", Col("l_extendedprice")),
                _agg("sum_disc_price", "sum", _revenue()),
                _agg("sum_charge", "sum",
                     _revenue() * (Const(1) + Col("l_tax"))),
                _agg("avg_qty", "avg", Col("l_quantity")),
                _agg("avg_price", "avg", Col("l_extendedprice")),
                _agg("avg_disc", "avg", Col("l_discount")),
                _agg("count_order", "count"),
            ),
        ),
        ((Col("l_returnflag"), False), (Col("l_linestatus"), False)),
    )


def _q2(db: Database) -> list[Row]:
    """Minimum-cost supplier: min(ps_supplycost) per part in EUROPE,
    then the supplier attaining it."""
    europe_supply = Join(
        Join(
            Join(
                Scan("partsupp"),
                Scan("supplier"),
                Col("ps_suppkey"), Col("s_suppkey"),
            ),
            Scan("nation"),
            Col("s_nationkey"), Col("n_nationkey"),
        ),
        Scan("region", Col("r_name").eq("EUROPE")),
        Col("n_regionkey"), Col("r_regionkey"),
    )
    min_cost = Aggregate(
        europe_supply,
        (("mc_partkey", Col("ps_partkey")),),
        (_agg("min_cost", "min", Col("ps_supplycost")),),
    )
    # The spec's p_size = 15 point predicate is widened to a band: at
    # the scaled-down part counts an equality keeps the join empty.
    parts = Scan(
        "part",
        And(Between(Col("p_size"), 10, 25), StrSuffix(Col("p_type"), "BRASS")),
    )
    joined = Join(
        Join(europe_supply, parts, Col("ps_partkey"), Col("p_partkey")),
        min_cost,
        TupleOf(Col("ps_partkey"), Col("ps_supplycost")),
        TupleOf(Col("mc_partkey"), Col("min_cost")),
    )
    plan = Limit(
        Sort(
            Project(
                joined,
                (("s_acctbal", Col("s_acctbal")), ("s_name", Col("s_name")),
                 ("n_name", Col("n_name")), ("p_partkey", Col("p_partkey")),
                 ("p_mfgr", Col("p_mfgr")), ("s_address", Col("s_address")),
                 ("s_phone", Col("s_phone")), ("s_comment", Col("s_comment"))),
            ),
            ((Col("s_acctbal"), True), (Col("n_name"), False),
             (Col("s_name"), False), (Col("p_partkey"), False)),
        ),
        100,
    )
    return db.execute(plan)


def _q3_plan() -> Logical:
    """Shipping priority."""
    cutoff = d(1995, 3, 15)
    return Limit(
        Sort(
            Aggregate(
                Join(
                    Join(
                        Scan("lineitem", Col("l_shipdate") > Const(cutoff)),
                        Scan("orders", Col("o_orderdate") < Const(cutoff)),
                        Col("l_orderkey"), Col("o_orderkey"),
                    ),
                    Scan("customer", Col("c_mktsegment").eq("BUILDING")),
                    Col("o_custkey"), Col("c_custkey"),
                ),
                (("l_orderkey", Col("l_orderkey")),
                 ("o_orderdate", Col("o_orderdate")),
                 ("o_shippriority", Col("o_shippriority"))),
                (_agg("revenue", "sum", _revenue()),),
            ),
            ((Col("revenue"), True), (Col("o_orderdate"), False)),
        ),
        10,
    )


def _q4_plan() -> Logical:
    """Order priority checking (EXISTS -> semi join)."""
    return Sort(
        Aggregate(
            Join(
                Scan("orders",
                     Between(Col("o_orderdate"), d(1993, 7, 1),
                             d(1993, 10, 1) - 1)),
                Scan("lineitem", Col("l_commitdate") < Col("l_receiptdate")),
                Col("o_orderkey"), Col("l_orderkey"),
                kind="semi",
            ),
            (("o_orderpriority", Col("o_orderpriority")),),
            (_agg("order_count", "count"),),
        ),
        ((Col("o_orderpriority"), False),),
    )


def _q5_plan() -> Logical:
    """Local supplier volume (ASIA, 1994)."""
    return Sort(
        Aggregate(
            Join(
                # customer-order-lineitem chain ...
                Join(
                    Join(
                        Join(
                            Scan("orders",
                                 Between(Col("o_orderdate"), d(1994, 1, 1),
                                         d(1994, 12, 31))),
                            Scan("customer"),
                            Col("o_custkey"), Col("c_custkey"),
                        ),
                        Scan("lineitem"),
                        Col("o_orderkey"), Col("l_orderkey"),
                    ),
                    # ... meets the supplier in the customer's nation
                    Scan("supplier"),
                    TupleOf(Col("l_suppkey"), Col("c_nationkey")),
                    TupleOf(Col("s_suppkey"), Col("s_nationkey")),
                ),
                Join(
                    Scan("nation"),
                    Scan("region", Col("r_name").eq("ASIA")),
                    Col("n_regionkey"), Col("r_regionkey"),
                ),
                Col("s_nationkey"), Col("n_nationkey"),
            ),
            (("n_name", Col("n_name")),),
            (_agg("revenue", "sum", _revenue()),),
        ),
        ((Col("revenue"), True),),
    )


def _q6_plan() -> Logical:
    """Forecasting revenue change (pure scan + scalar aggregate)."""
    return Aggregate(
        Scan(
            "lineitem",
            And(
                Between(Col("l_shipdate"), d(1994, 1, 1), d(1994, 12, 31)),
                Between(Col("l_discount"), 0.05, 0.07),
                Col("l_quantity") < Const(24),
            ),
        ),
        (),
        (_agg("revenue", "sum", Col("l_extendedprice") * Col("l_discount")),),
    )


def _q7_plan() -> Logical:
    """Volume shipping between FRANCE and GERMANY."""
    pair = Or(
        And(Col("supp_nation").eq("FRANCE"), Col("cust_nation").eq("GERMANY")),
        And(Col("supp_nation").eq("GERMANY"), Col("cust_nation").eq("FRANCE")),
    )
    chain = Join(
        Join(
            Join(
                Join(
                    Scan("lineitem",
                         Between(Col("l_shipdate"), d(1995, 1, 1),
                                 d(1996, 12, 31))),
                    Scan("orders"),
                    Col("l_orderkey"), Col("o_orderkey"),
                ),
                Scan("customer"),
                Col("o_custkey"), Col("c_custkey"),
            ),
            Scan("supplier"),
            Col("l_suppkey"), Col("s_suppkey"),
        ),
        Scan("nation"),
        Col("s_nationkey"), Col("n_nationkey"),
    )
    named = Project(
        Join(chain, Scan("nation"), Col("c_nationkey"), Col("n_nationkey")),
        (("supp_nation", Col("n_name")), ("cust_nation", Col("n_name_r")),
         ("l_year", ExtractYear(Col("l_shipdate"))),
         ("volume", _revenue())),
    )
    return Sort(
        Aggregate(
            Filter(named, pair),
            (("supp_nation", Col("supp_nation")),
             ("cust_nation", Col("cust_nation")),
             ("l_year", Col("l_year"))),
            (_agg("revenue", "sum", Col("volume")),),
        ),
        ((Col("supp_nation"), False), (Col("cust_nation"), False),
         (Col("l_year"), False)),
    )


def _q8_plan() -> Logical:
    """National market share of BRAZIL in AMERICA for ECONOMY ANODIZED
    STEEL parts."""
    chain = Join(
        Join(
            Join(
                Join(
                    Join(
                        Join(
                            Scan("lineitem"),
                            Scan("part",
                                 Col("p_type").eq("ECONOMY ANODIZED STEEL")),
                            Col("l_partkey"), Col("p_partkey"),
                        ),
                        Scan("orders",
                             Between(Col("o_orderdate"), d(1995, 1, 1),
                                     d(1996, 12, 31))),
                        Col("l_orderkey"), Col("o_orderkey"),
                    ),
                    Scan("customer"),
                    Col("o_custkey"), Col("c_custkey"),
                ),
                Join(
                    Scan("nation"),
                    Scan("region", Col("r_name").eq("AMERICA")),
                    Col("n_regionkey"), Col("r_regionkey"),
                ),
                Col("c_nationkey"), Col("n_nationkey"),
            ),
            Scan("supplier"),
            Col("l_suppkey"), Col("s_suppkey"),
        ),
        Scan("nation"),
        Col("s_nationkey"), Col("n_nationkey"),
    )
    named = Project(
        chain,
        (("o_year", ExtractYear(Col("o_orderdate"))),
         ("volume", _revenue()),
         ("nation", Col("n_name_r"))),
    )
    return Sort(
        Project(
            Aggregate(
                named,
                (("o_year", Col("o_year")),),
                (
                    _agg("brazil_volume", "sum",
                         CaseWhen(Col("nation").eq("BRAZIL"),
                                  Col("volume"), Const(0.0))),
                    _agg("total_volume", "sum", Col("volume")),
                ),
            ),
            (("o_year", Col("o_year")),
             ("mkt_share", Col("brazil_volume") / Col("total_volume"))),
        ),
        ((Col("o_year"), False),),
    )


def _q9_plan() -> Logical:
    """Product type profit measure ('green' parts)."""
    chain = Join(
        Join(
            Join(
                Join(
                    Join(
                        Scan("lineitem"),
                        Scan("part", StrContains(Col("p_name"), "green", 40)),
                        Col("l_partkey"), Col("p_partkey"),
                    ),
                    Scan("supplier"),
                    Col("l_suppkey"), Col("s_suppkey"),
                ),
                Scan("partsupp"),
                TupleOf(Col("l_partkey"), Col("l_suppkey")),
                TupleOf(Col("ps_partkey"), Col("ps_suppkey")),
            ),
            Scan("orders"),
            Col("l_orderkey"), Col("o_orderkey"),
        ),
        Scan("nation"),
        Col("s_nationkey"), Col("n_nationkey"),
    )
    named = Project(
        chain,
        (("nation", Col("n_name")),
         ("o_year", ExtractYear(Col("o_orderdate"))),
         ("amount",
          _revenue() - Col("ps_supplycost") * Col("l_quantity"))),
    )
    return Sort(
        Aggregate(
            named,
            (("nation", Col("nation")), ("o_year", Col("o_year"))),
            (_agg("sum_profit", "sum", Col("amount")),),
        ),
        ((Col("nation"), False), (Col("o_year"), True)),
    )


def _q10_plan() -> Logical:
    """Returned item reporting (top 20 customers)."""
    return Limit(
        Sort(
            Aggregate(
                Join(
                    Join(
                        Join(
                            Scan("lineitem", Col("l_returnflag").eq("R")),
                            Scan("orders",
                                 Between(Col("o_orderdate"), d(1993, 10, 1),
                                         d(1994, 1, 1) - 1)),
                            Col("l_orderkey"), Col("o_orderkey"),
                        ),
                        Scan("customer"),
                        Col("o_custkey"), Col("c_custkey"),
                    ),
                    Scan("nation"),
                    Col("c_nationkey"), Col("n_nationkey"),
                ),
                (("c_custkey", Col("c_custkey")), ("c_name", Col("c_name")),
                 ("c_acctbal", Col("c_acctbal")), ("c_phone", Col("c_phone")),
                 ("n_name", Col("n_name")), ("c_address", Col("c_address")),
                 ("c_comment", Col("c_comment"))),
                (_agg("revenue", "sum", _revenue()),),
            ),
            ((Col("revenue"), True),),
        ),
        20,
    )


def _q11(db: Database) -> list[Row]:
    """Important stock identification (GERMANY).

    Pass 1 computes the total stock value (the scalar subquery); pass 2
    groups by part and keeps groups above ``fraction * total``."""
    base = Join(
        Join(
            Scan("partsupp"),
            Scan("supplier"),
            Col("ps_suppkey"), Col("s_suppkey"),
        ),
        Scan("nation", Col("n_name").eq("GERMANY")),
        Col("s_nationkey"), Col("n_nationkey"),
    )
    value = Col("ps_supplycost") * Col("ps_availqty")
    total_rows = db.execute(
        Aggregate(base, (), (_agg("total", "sum", value),))
    )
    total = total_rows[0][0] or 0.0
    # The spec's 0.0001 fraction, rescaled to the tier's row counts.
    threshold = total * 0.01
    return db.execute(
        Sort(
            Aggregate(
                base,
                (("ps_partkey", Col("ps_partkey")),),
                (_agg("value", "sum", value),),
                having=Col("value") > Const(threshold),
            ),
            ((Col("value"), True),),
        )
    )


def _q12_plan() -> Logical:
    """Shipping modes and order priority."""
    high = InList(Col("o_orderpriority"), ("1-URGENT", "2-HIGH"))
    return Sort(
        Aggregate(
            Join(
                Scan(
                    "lineitem",
                    And(
                        InList(Col("l_shipmode"), ("MAIL", "SHIP")),
                        Col("l_commitdate") < Col("l_receiptdate"),
                        Col("l_shipdate") < Col("l_commitdate"),
                        Between(Col("l_receiptdate"), d(1994, 1, 1),
                                d(1994, 12, 31)),
                    ),
                ),
                Scan("orders"),
                Col("l_orderkey"), Col("o_orderkey"),
            ),
            (("l_shipmode", Col("l_shipmode")),),
            (
                _agg("high_line_count", "sum",
                     CaseWhen(high, Const(1), Const(0))),
                _agg("low_line_count", "sum",
                     CaseWhen(Not(high), Const(1), Const(0))),
            ),
        ),
        ((Col("l_shipmode"), False),),
    )


def _q13_plan() -> Logical:
    """Customer distribution (left join, two-level aggregation)."""
    per_customer = Aggregate(
        Join(
            Scan("customer"),
            Scan("orders",
                 Not(StrContains(Col("o_comment"), "special", 40))),
            Col("c_custkey"), Col("o_custkey"),
            kind="left",
        ),
        (("c_custkey", Col("c_custkey")),),
        (_agg("c_count", "count", Col("o_orderkey")),),
    )
    return Sort(
        Aggregate(
            per_customer,
            (("c_count", Col("c_count")),),
            (_agg("custdist", "count"),),
        ),
        ((Col("custdist"), True), (Col("c_count"), True)),
    )


def _q14_plan() -> Logical:
    """Promotion effect (single join month)."""
    return Project(
        Aggregate(
            Join(
                Scan("lineitem",
                     Between(Col("l_shipdate"), d(1995, 9, 1),
                             d(1995, 9, 30))),
                Scan("part"),
                Col("l_partkey"), Col("p_partkey"),
            ),
            (),
            (
                _agg("promo", "sum",
                     CaseWhen(StrPrefix(Col("p_type"), "PROMO"),
                              _revenue(), Const(0.0))),
                _agg("total", "sum", _revenue()),
            ),
        ),
        (("promo_revenue",
          Const(100.0) * Col("promo") / Col("total")),),
    )


def _q15(db: Database) -> list[Row]:
    """Top supplier: revenue view, its max, then the argmax supplier."""
    revenue_view = Aggregate(
        Scan("lineitem",
             Between(Col("l_shipdate"), d(1996, 1, 1), d(1996, 3, 31))),
        (("supplier_no", Col("l_suppkey")),),
        (_agg("total_revenue", "sum", _revenue()),),
    )
    rows = db.execute(revenue_view)
    max_revenue = max((r[1] for r in rows), default=0.0)
    return db.execute(
        Sort(
            Project(
                Join(
                    Filter(revenue_view,
                           Col("total_revenue") >= Const(max_revenue)),
                    Scan("supplier"),
                    Col("supplier_no"), Col("s_suppkey"),
                ),
                (("s_suppkey", Col("s_suppkey")), ("s_name", Col("s_name")),
                 ("s_address", Col("s_address")), ("s_phone", Col("s_phone")),
                 ("total_revenue", Col("total_revenue"))),
            ),
            ((Col("s_suppkey"), False),),
        )
    )


def _q16_plan() -> Logical:
    """Parts/supplier relationship (NOT IN -> anti join)."""
    complainers = Scan(
        "supplier", StrContains(Col("s_comment"), "Customer", 56)
    )
    return Sort(
        Aggregate(
            Join(
                Join(
                    Join(
                        Scan("partsupp"),
                        Scan(
                            "part",
                            And(
                                Not(Col("p_brand").eq("Brand#45")),
                                Not(StrPrefix(Col("p_type"), "MEDIUM POLISHED")),
                                InList(Col("p_size"),
                                       (49, 14, 23, 45, 19, 3, 36, 9)),
                            ),
                        ),
                        Col("ps_partkey"), Col("p_partkey"),
                    ),
                    complainers,
                    Col("ps_suppkey"), Col("s_suppkey"),
                    kind="anti",
                ),
                Scan("part"),
                Col("ps_partkey"), Col("p_partkey"),
            ),
            (("p_brand", Col("p_brand")), ("p_type", Col("p_type")),
             ("p_size", Col("p_size"))),
            (_agg("supplier_cnt", "count_distinct", Col("ps_suppkey")),),
        ),
        ((Col("supplier_cnt"), True), (Col("p_brand"), False),
         (Col("p_type"), False), (Col("p_size"), False)),
    )


def _q17_plan() -> Logical:
    """Small-quantity-order revenue (correlated avg -> aggregate join)."""
    avg_qty = Aggregate(
        Scan("lineitem"),
        (("aq_partkey", Col("l_partkey")),),
        (_agg("aq_avg", "avg", Col("l_quantity")),),
    )
    return Project(
        Aggregate(
            Filter(
                Join(
                    Join(
                        Scan("lineitem"),
                        Scan("part",
                             And(Col("p_brand").eq("Brand#23"),
                                 Col("p_container").eq("MED BOX"))),
                        Col("l_partkey"), Col("p_partkey"),
                    ),
                    avg_qty,
                    Col("l_partkey"), Col("aq_partkey"),
                ),
                Col("l_quantity") < Const(0.2) * Col("aq_avg"),
            ),
            (),
            (_agg("total_price", "sum", Col("l_extendedprice")),),
        ),
        (("avg_yearly", Col("total_price") / Const(7.0)),),
    )


def _q18_plan() -> Logical:
    """Large volume customers (quantity threshold rescaled to tier)."""
    big_orders = Aggregate(
        Scan("lineitem"),
        (("bo_orderkey", Col("l_orderkey")),),
        (_agg("bo_qty", "sum", Col("l_quantity")),),
        having=Col("bo_qty") > Const(250.0),
    )
    return Limit(
        Sort(
            Aggregate(
                Join(
                    Join(
                        Join(
                            Scan("lineitem"),
                            big_orders,
                            Col("l_orderkey"), Col("bo_orderkey"),
                        ),
                        Scan("orders"),
                        Col("l_orderkey"), Col("o_orderkey"),
                    ),
                    Scan("customer"),
                    Col("o_custkey"), Col("c_custkey"),
                ),
                (("c_name", Col("c_name")), ("c_custkey", Col("c_custkey")),
                 ("o_orderkey", Col("o_orderkey")),
                 ("o_orderdate", Col("o_orderdate")),
                 ("o_totalprice", Col("o_totalprice"))),
                (_agg("sum_qty", "sum", Col("l_quantity")),),
            ),
            ((Col("o_totalprice"), True), (Col("o_orderdate"), False)),
        ),
        100,
    )


def _q19_plan() -> Logical:
    """Discounted revenue (three OR-branches of brand/container/qty)."""
    def branch(brand, containers, qty_lo, qty_hi, size_hi):
        return And(
            Col("p_brand").eq(brand),
            InList(Col("p_container"), containers),
            Between(Col("l_quantity"), qty_lo, qty_hi),
            Between(Col("p_size"), 1, size_hi),
            InList(Col("l_shipmode"), ("AIR", "REG AIR")),
            Col("l_shipinstruct").eq("DELIVER IN PERSON"),
        )

    return Aggregate(
        Filter(
            Join(
                Scan("lineitem"),
                Scan("part"),
                Col("l_partkey"), Col("p_partkey"),
            ),
            Or(
                branch("Brand#12",
                       ("SM CASE", "SM BOX", "SM PACK", "SM PKG"), 1, 11, 5),
                branch("Brand#23",
                       ("MED BAG", "MED BOX", "MED PKG", "MED PACK"), 10, 20, 10),
                branch("Brand#34",
                       ("LG CASE", "LG BOX", "LG PACK", "LG PKG"), 20, 30, 15),
            ),
        ),
        (),
        (_agg("revenue", "sum", _revenue()),),
    )


def _q20_plan() -> Logical:
    """Potential part promotion (forest-green parts, 1994)."""
    shipped = Aggregate(
        Scan("lineitem",
             Between(Col("l_shipdate"), d(1994, 1, 1), d(1994, 12, 31))),
        (("sh_partkey", Col("l_partkey")), ("sh_suppkey", Col("l_suppkey"))),
        (_agg("sh_qty", "sum", Col("l_quantity")),),
    )
    candidate_ps = Filter(
        Join(
            Join(
                Scan("partsupp"),
                Scan("part", StrPrefix(Col("p_name"), "f")),
                Col("ps_partkey"), Col("p_partkey"),
                kind="semi",
            ),
            shipped,
            TupleOf(Col("ps_partkey"), Col("ps_suppkey")),
            TupleOf(Col("sh_partkey"), Col("sh_suppkey")),
        ),
        Col("ps_availqty") > Const(0.5) * Col("sh_qty"),
    )
    return Sort(
        Distinct(
            Project(
                Join(
                    Join(
                        Scan("supplier"),
                        candidate_ps,
                        Col("s_suppkey"), Col("ps_suppkey"),
                        kind="semi",
                    ),
                    Scan("nation", Col("n_name").eq("CANADA")),
                    Col("s_nationkey"), Col("n_nationkey"),
                ),
                (("s_name", Col("s_name")), ("s_address", Col("s_address"))),
            )
        ),
        ((Col("s_name"), False),),
    )


def _q21_plan() -> Logical:
    """Suppliers who kept orders waiting (semi/anti approximation)."""
    late = Scan("lineitem", Col("l_receiptdate") > Col("l_commitdate"))
    chain = Join(
        Join(
            Join(
                late,
                Scan("orders", Col("o_orderstatus").eq("F")),
                Col("l_orderkey"), Col("o_orderkey"),
            ),
            Scan("supplier"),
            Col("l_suppkey"), Col("s_suppkey"),
        ),
        Scan("nation", Col("n_name").eq("SAUDI ARABIA")),
        Col("s_nationkey"), Col("n_nationkey"),
    )
    # EXISTS(other line, any supplier): semi join on the order key;
    # NOT EXISTS(other *late* line): anti join against a fresh late scan.
    # The "different supplier" condition is dropped (see module docstring).
    with_sibling = Join(
        chain,
        Scan("lineitem"),
        Col("l_orderkey"), Col("l_orderkey"),
        kind="semi",
    )
    return Limit(
        Sort(
            Aggregate(
                with_sibling,
                (("s_name", Col("s_name")),),
                (_agg("numwait", "count"),),
            ),
            ((Col("numwait"), True), (Col("s_name"), False)),
        ),
        100,
    )


def _q22(db: Database) -> list[Row]:
    """Global sales opportunity (phone prefixes, scalar avg pass)."""
    codes = ("13", "31", "23", "29", "30", "18", "17")
    prefix = StrSlice(Col("c_phone"), 0, 2)
    positive = And(
        Col("c_acctbal") > Const(0.0),
        InList(prefix, codes),
    )
    avg_rows = db.execute(
        Aggregate(
            Scan("customer", positive),
            (),
            (_agg("avg_bal", "avg", Col("c_acctbal")),),
        )
    )
    avg_bal = avg_rows[0][0] or 0.0
    return db.execute(
        Sort(
            Aggregate(
                Join(
                    Scan(
                        "customer",
                        And(InList(prefix, codes),
                            Col("c_acctbal") > Const(avg_bal)),
                    ),
                    Scan("orders"),
                    Col("c_custkey"), Col("o_custkey"),
                    kind="anti",
                ),
                (("cntrycode", prefix),),
                (_agg("numcust", "count"),
                 _agg("totacctbal", "sum", Col("c_acctbal"))),
            ),
            ((Col("cntrycode"), False),),
        )
    )


def _plan_query(number: int, title: str, plan: Logical) -> TpchQuery:
    return TpchQuery(number, title, lambda db: db.execute(plan), plan=plan)


QUERIES: dict[int, TpchQuery] = {
    1: _plan_query(1, "Pricing summary report", _q1_plan()),
    2: TpchQuery(2, "Minimum cost supplier", _q2),
    3: _plan_query(3, "Shipping priority", _q3_plan()),
    4: _plan_query(4, "Order priority checking", _q4_plan()),
    5: _plan_query(5, "Local supplier volume", _q5_plan()),
    6: _plan_query(6, "Forecasting revenue change", _q6_plan()),
    7: _plan_query(7, "Volume shipping", _q7_plan()),
    8: _plan_query(8, "National market share", _q8_plan()),
    9: _plan_query(9, "Product type profit", _q9_plan()),
    10: _plan_query(10, "Returned item reporting", _q10_plan()),
    11: TpchQuery(11, "Important stock identification", _q11),
    12: _plan_query(12, "Shipping modes and priority", _q12_plan()),
    13: _plan_query(13, "Customer distribution", _q13_plan()),
    14: _plan_query(14, "Promotion effect", _q14_plan()),
    15: TpchQuery(15, "Top supplier", _q15),
    16: _plan_query(16, "Parts/supplier relationship", _q16_plan()),
    17: _plan_query(17, "Small-quantity-order revenue", _q17_plan()),
    18: _plan_query(18, "Large volume customers", _q18_plan()),
    19: _plan_query(19, "Discounted revenue", _q19_plan()),
    20: _plan_query(20, "Potential part promotion", _q20_plan()),
    21: _plan_query(21, "Suppliers who kept orders waiting", _q21_plan()),
    22: TpchQuery(22, "Global sales opportunity", _q22),
}

ALL_QUERY_NUMBERS = tuple(sorted(QUERIES))


def run_query(db: Database, number: int) -> list[Row]:
    """Execute TPC-H query ``number`` on ``db`` and return its rows."""
    return QUERIES[number].run(db)
