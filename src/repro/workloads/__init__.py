"""Workloads: TPC-H, the 7 basic query operations, CPU2006-like kernels."""

from repro.workloads.basic_ops import (
    BASIC_OPERATIONS,
    basic_operation_plan,
    run_basic_operation,
)
from repro.workloads.cpu2006 import CPU2006_WORKLOADS, KERNELS, run_kernel

__all__ = [
    "BASIC_OPERATIONS",
    "basic_operation_plan",
    "run_basic_operation",
    "CPU2006_WORKLOADS",
    "KERNELS",
    "run_kernel",
]
