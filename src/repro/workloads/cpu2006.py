"""Synthetic CPU2006-like kernels (Figure 10's contrast workloads).

The paper compares the query workloads against nine SPEC CPU2006
programs and finds a *different* energy pattern: diverse breakdowns,
mostly low L1D share, and extremes (mcf, libquantum) at ~5.6%
E_L1D+E_Reg2L1D.  SPEC sources and inputs are not redistributable, so
each kernel here is a small synthetic program reproducing the
micro-behaviour that the literature attributes to its namesake:

=============  ==========================================================
bzip2          block compression: sequential reads of a large buffer,
               heavy ALU/branch, store-back of compressed output
perlbench      interpreter: branchy dispatch, small hash lookups,
               dominated by "other" instructions
gcc            pointer-heavy AST walks over a medium heap
mcf            network simplex: dependent pointer chasing across a
               DRAM-resident graph (memory-bound extreme)
gobmk          game-tree search: compares/branches over a small board
sjeng          chess: transposition-table lookups (random keyed loads)
libquantum     streaming sweeps over a register array far larger than L3
h264ref        motion estimation: blocked reuse + multiply-heavy compute
astar          grid pathfinding: dependent neighbour loads, branchy
=============  ==========================================================

Each kernel takes the machine plus an op budget; region sizes scale
with the machine's cache geometry like the micro-benchmarks do.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.micro.framework import shuffled_chain_order
from repro.sim.address_space import LINE_SIZE
from repro.sim.machine import Machine

#: Figure 10's workload order (the paper spells sjeng "Jseng").
CPU2006_WORKLOADS = (
    "bzip2",
    "perlbench",
    "gcc",
    "mcf",
    "gobmk",
    "sjeng",
    "libquantum",
    "h264ref",
    "astar",
)


def _lines_for(machine: Machine, multiple_of_l3: float) -> int:
    cfg = machine.config
    largest = max(
        cfg.l1d.size,
        cfg.l2.size if cfg.l2 is not None else 0,
        cfg.l3.size if cfg.l3 is not None else 0,
    )
    return max(32, int(largest * multiple_of_l3) // LINE_SIZE)


def bzip2(machine: Machine, ops: int = 120_000) -> None:
    """Sequential block reads + ALU-heavy match loop + output stores."""
    region = machine.address_space.alloc_lines(
        _lines_for(machine, 0.5), "bzip2/in"
    )
    out = machine.address_space.alloc_lines(64, "bzip2/out")
    n = region.n_lines
    i = 0
    budget = ops
    while budget > 0:
        machine.load(region.line(i % n))
        machine.add(3)
        machine.cmp(2)
        machine.branch(2)
        machine.store(out.line(i % out.n_lines))
        i += 1
        budget -= 9


def perlbench(machine: Machine, ops: int = 120_000) -> None:
    """Interpreter dispatch: tiny hot data, huge "other"/branch mix."""
    table = machine.address_space.alloc_lines(64, "perl/optable")
    rng = random.Random(7)
    budget = ops
    while budget > 0:
        machine.load(table.line(rng.randrange(table.n_lines)), dependent=True)
        machine.branch(3)
        machine.other(6)
        machine.add(2)
        machine.store(table.line(0))
        budget -= 13


def gcc(machine: Machine, ops: int = 120_000) -> None:
    """AST walks: dependent loads over a medium heap, branchy."""
    region = machine.address_space.alloc_lines(
        _lines_for(machine, 0.25), "gcc/heap"
    )
    order = shuffled_chain_order(region.n_lines, seed=11)
    addrs = [region.line(i) for i in order]
    budget = ops
    i = 0
    while budget > 0:
        machine.load(addrs[i % len(addrs)], dependent=True)
        machine.branch(2)
        machine.other(2)
        machine.cmp(1)
        budget -= 6
        i += 1


def mcf(machine: Machine, ops: int = 120_000) -> None:
    """Network simplex: pure pointer chasing over a DRAM-sized graph."""
    region = machine.address_space.alloc_lines(
        _lines_for(machine, 6.0), "mcf/graph"
    )
    order = shuffled_chain_order(region.n_lines, seed=13)
    addrs = [region.line(i) for i in order]
    budget = ops
    i = 0
    while budget > 0:
        machine.load(addrs[i % len(addrs)], dependent=True)
        machine.add(1)
        budget -= 2
        i += 1


def gobmk(machine: Machine, ops: int = 120_000) -> None:
    """Go engine: small board state, compare/branch saturated."""
    board = machine.address_space.alloc_lines(32, "gobmk/board")
    budget = ops
    i = 0
    while budget > 0:
        machine.load(board.line(i % board.n_lines))
        machine.load(board.line((i * 7 + 3) % board.n_lines))
        machine.load(board.line((i * 13 + 5) % board.n_lines))
        machine.store(board.line(i % board.n_lines))
        machine.cmp(3)
        machine.branch(3)
        machine.other(1)
        budget -= 11
        i += 1


def sjeng(machine: Machine, ops: int = 120_000) -> None:
    """Chess: transposition-table probes over a large hash region."""
    table = machine.address_space.alloc_lines(
        _lines_for(machine, 1.5), "sjeng/tt"
    )
    rng = random.Random(17)
    budget = ops
    while budget > 0:
        machine.load(table.line(rng.randrange(table.n_lines)), dependent=True)
        machine.mul(1)
        machine.add(2)
        machine.cmp(1)
        machine.branch(1)
        budget -= 6


def libquantum(machine: Machine, ops: int = 120_000) -> None:
    """Quantum register simulation: long streaming sweeps, thin compute."""
    region = machine.address_space.alloc_lines(
        _lines_for(machine, 4.0), "libquantum/reg"
    )
    n = region.n_lines
    budget = ops
    i = 0
    while budget > 0:
        machine.load(region.line(i % n))
        machine.add(1)
        budget -= 2
        i += 1


def h264ref(machine: Machine, ops: int = 120_000) -> None:
    """Motion estimation: 4-line macroblocks reused heavily, mul-bound."""
    # Reference macroblocks are reused across candidate positions, so
    # the active frame window is small and cache-resident.
    frame = machine.address_space.alloc_lines(
        _lines_for(machine, 0.02), "h264/frame"
    )
    budget = ops
    block = 0
    while budget > 0:
        base = (block * 4) % max(1, frame.n_lines - 4)
        for line in range(4):
            machine.load(frame.line(base + line))
            machine.load(frame.line((base + line + 8) % frame.n_lines))
            machine.mul(1)
            machine.add(1)
        machine.store(frame.line(base))
        machine.store(frame.line((base + 1) % frame.n_lines))
        machine.branch(1)
        budget -= 19
        block += 1


def astar(machine: Machine, ops: int = 120_000) -> None:
    """Pathfinding: dependent neighbour loads over a grid, branchy."""
    grid = machine.address_space.alloc_lines(
        _lines_for(machine, 0.75), "astar/grid"
    )
    rng = random.Random(23)
    pos = 0
    budget = ops
    while budget > 0:
        machine.load(grid.line(pos), dependent=True)
        machine.cmp(2)
        machine.branch(2)
        machine.add(1)
        pos = (pos + rng.choice((-65, -1, 1, 65))) % grid.n_lines
        budget -= 6


KERNELS: dict[str, Callable[[Machine, int], None]] = {
    "bzip2": bzip2,
    "perlbench": perlbench,
    "gcc": gcc,
    "mcf": mcf,
    "gobmk": gobmk,
    "sjeng": sjeng,
    "libquantum": libquantum,
    "h264ref": h264ref,
    "astar": astar,
}


def run_kernel(machine: Machine, name: str, ops: int = 120_000) -> None:
    KERNELS[name](machine, ops)
