"""An LSM-tree key-value store — the paper's §7 future work.

The paper closes with: *"In future, we will try to profile the energy
cost of other typical database systems, such as NoSQL systems to
identify their energy distribution feature on CPU."*  This module
builds that follow-up: a from-scratch log-structured merge store
(memtable + levelled SSTables + bloom filters) instrumented on the
simulated machine, plus YCSB-style workload mixes, so the §3
methodology can be pointed at a NoSQL engine unchanged
(see :func:`repro.analysis.experiments.ext_nosql`).

Model notes:

* the **memtable** is a B-tree in ordinary memory — hot while small;
* **SSTables** are immutable sorted runs; a point lookup is a bloom
  probe (hashing + one or two bit-array loads) followed, on a maybe,
  by a dependent binary search over the run;
* **compaction** merges runs sequentially (streaming reads + writes),
  the LSM's background bandwidth cost;
* per-operation engine overhead is far leaner than a SQL executor's
  (~a hundred instructions, not thousands) — KV stores have no
  interpreter, planner, or tuple slots.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.db.btree import BTree
from repro.errors import ConfigError
from repro.sim.address_space import LINE_SIZE
from repro.sim.machine import Machine

#: Bytes per stored entry (16B key/metadata + value payload).
ENTRY_KEY_BYTES = 16


class BloomFilter:
    """A blocked bloom filter over one cache-line-aligned bit region."""

    def __init__(self, machine: Machine, n_keys: int, bits_per_key: int = 10,
                 n_hashes: int = 2, label: str = "bloom"):
        self.machine = machine
        size = max(LINE_SIZE, n_keys * bits_per_key // 8)
        self.region = machine.address_space.alloc(size, label=label)
        self.n_hashes = n_hashes
        self._bits: set[int] = set()
        self._n_slots = size * 8

    def _positions(self, key: int) -> list[int]:
        positions = []
        h = key
        for i in range(self.n_hashes):
            h = (h * 0x9E3779B1 + i * 0x85EBCA77) & 0xFFFFFFFF
            positions.append(h % self._n_slots)
        return positions

    def add(self, key: int) -> None:
        machine = self.machine
        for position in self._positions(key):
            machine.mul(1)
            machine.add(1)
            machine.store(self.region.base + (position // 8 // LINE_SIZE) * LINE_SIZE)
            self._bits.add(position)

    def maybe_contains(self, key: int) -> bool:
        machine = self.machine
        for position in self._positions(key):
            machine.mul(1)
            machine.add(1)
            machine.load(self.region.base
                         + (position // 8 // LINE_SIZE) * LINE_SIZE,
                         dependent=True)
            machine.cmp(1)
            if position not in self._bits:
                return False
        return True


class SSTable:
    """An immutable sorted run of (key, value-width) entries."""

    def __init__(self, machine: Machine, entries: list, value_bytes: int,
                 label: str = "sstable"):
        if any(entries[i][0] >= entries[i + 1][0]
               for i in range(len(entries) - 1)):
            raise ConfigError("SSTable entries must be strictly key-sorted")
        self.machine = machine
        self.entries = entries
        self.entry_bytes = ENTRY_KEY_BYTES + value_bytes
        self.value_bytes = value_bytes
        self.region = machine.address_space.alloc(
            max(1, len(entries)) * self.entry_bytes, label=label
        )
        self.bloom = BloomFilter(machine, max(1, len(entries)),
                                 label=f"{label}/bloom")
        for key, _ in entries:
            self.bloom.add(key)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def min_key(self):
        return self.entries[0][0] if self.entries else None

    @property
    def max_key(self):
        return self.entries[-1][0] if self.entries else None

    def _entry_addr(self, index: int) -> int:
        return self.region.base + index * self.entry_bytes

    def get(self, key: int):
        """Bloom-guarded binary search; None when absent."""
        if not self.entries or not self.bloom.maybe_contains(key):
            return None
        machine = self.machine
        lo, hi = 0, len(self.entries) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            machine.load(self._entry_addr(mid), dependent=True)
            machine.cmp(1)
            machine.branch(1)
            entry_key, value = self.entries[mid]
            if entry_key == key:
                machine.load_bytes(self._entry_addr(mid) + ENTRY_KEY_BYTES,
                                   self.value_bytes)
                return value
            if entry_key < key:
                lo = mid + 1
            else:
                hi = mid - 1
        return None

    def scan(self, lo: int, hi: int) -> Iterator[tuple]:
        """Sequential range read (prefetcher-friendly)."""
        machine = self.machine
        import bisect

        start = bisect.bisect_left([k for k, _ in self.entries], lo)
        for index in range(start, len(self.entries)):
            key, value = self.entries[index]
            machine.load(self._entry_addr(index))
            machine.cmp(1)
            if key > hi:
                return
            machine.load_bytes(self._entry_addr(index) + ENTRY_KEY_BYTES,
                               self.value_bytes)
            yield key, value

    def stream_all(self) -> Iterator[tuple]:
        """Full sequential read (compaction input)."""
        machine = self.machine
        for index, (key, value) in enumerate(self.entries):
            machine.load(self._entry_addr(index))
            yield key, value


@dataclass
class LsmStats:
    flushes: int = 0
    compactions: int = 0
    sstables_written: int = 0
    entries_compacted: int = 0


class LsmStore:
    """Memtable + levelled SSTables with size-tiered L0 compaction."""

    def __init__(self, machine: Machine, value_bytes: int = 64,
                 memtable_entries: int = 512, l0_fanout: int = 4,
                 name: str = "kv"):
        self.machine = machine
        self.value_bytes = value_bytes
        self.memtable_limit = memtable_entries
        self.l0_fanout = l0_fanout
        self.name = name
        self._memtable = self._new_memtable()
        #: newest-first list of L0 runs, then one big L1 run at the end.
        self.sstables: list[SSTable] = []
        self.stats = LsmStats()
        #: per-op hot engine state (command parsing, iterators, arena).
        self._state = machine.address_space.alloc(1024, f"{name}/state")

    def _new_memtable(self) -> BTree:
        return BTree(self.machine, f"{self.name}/memtable",
                     payload_bytes=self.value_bytes, node_bytes=512)

    def _op_overhead(self) -> None:
        machine = self.machine
        machine.hot_loads(self._state.base, 60)
        machine.hot_stores(self._state.base, 30)
        machine.other(20)
        machine.branch(6)

    # ------------------------------------------------------------ writes

    def put(self, key: int, value) -> None:
        self._op_overhead()
        # In-place update when the key is already in the memtable —
        # otherwise a flush would deduplicate in favour of the older
        # entry (a bug hypothesis found; see tests/workloads).
        if not self._memtable.update_payload(key, value):
            self._memtable.insert(key, value)
        if self._memtable.n_entries >= self.memtable_limit:
            self.flush()

    def flush(self) -> None:
        """Freeze the memtable into a new L0 SSTable."""
        if self._memtable.n_entries == 0:
            return
        entries = self._dedup_newest(
            [(k, v) for k, v, _ in self._memtable.scan_all()]
        )
        table = SSTable(self.machine, entries, self.value_bytes,
                        label=f"{self.name}/L0.{self.stats.sstables_written}")
        # Writing the run: sequential stores of every entry.
        self.machine.store_bytes(table.region.base,
                                 len(entries) * table.entry_bytes)
        self.sstables.insert(0, table)
        self.stats.flushes += 1
        self.stats.sstables_written += 1
        self._memtable = self._new_memtable()
        if len(self.sstables) > self.l0_fanout:
            self.compact()

    @staticmethod
    def _dedup_newest(pairs: list) -> list:
        out = {}
        for key, value in pairs:
            out.setdefault(key, value)
        return sorted(out.items())

    def compact(self) -> None:
        """Merge every run into one (size-tiered full compaction)."""
        merged: dict = {}
        n_in = 0
        for table in self.sstables:  # newest first: first write wins
            for key, value in table.stream_all():
                merged.setdefault(key, value)
                n_in += 1
        entries = sorted(merged.items())
        table = SSTable(self.machine, entries, self.value_bytes,
                        label=f"{self.name}/L1.{self.stats.compactions}")
        self.machine.store_bytes(table.region.base,
                                 len(entries) * table.entry_bytes)
        self.sstables = [table]
        self.stats.compactions += 1
        self.stats.sstables_written += 1
        self.stats.entries_compacted += n_in

    # ------------------------------------------------------------- reads

    def get(self, key: int):
        self._op_overhead()
        hit = self._memtable.search(key)
        if hit is not None:
            return hit[0]
        for table in self.sstables:  # newest first
            value = table.get(key)
            if value is not None:
                return value
        return None

    def scan(self, lo: int, hi: int, limit: Optional[int] = None) -> list:
        """Merged range scan over the memtable and every run."""
        self._op_overhead()
        out: dict = {}
        for key, value, _ in self._memtable.range_scan(lo, hi):
            out.setdefault(key, value)
        for table in self.sstables:
            for key, value in table.scan(lo, hi):
                out.setdefault(key, value)
        items = sorted(out.items())
        if limit is not None:
            items = items[:limit]
        return items

    @property
    def n_entries_resident(self) -> int:
        return self._memtable.n_entries + sum(len(t) for t in self.sstables)


# ------------------------------------------------------------ YCSB mixes

YCSB_WORKLOADS = ("load", "a", "b", "c", "e")


def build_store(machine: Machine, n_keys: int = 2000,
                value_bytes: int = 64, seed: int = 99) -> LsmStore:
    """Load-phase: insert ``n_keys`` values in random order."""
    store = LsmStore(machine, value_bytes=value_bytes)
    rng = random.Random(seed)
    keys = list(range(n_keys))
    rng.shuffle(keys)
    for key in keys:
        store.put(key, f"v{key}")
    return store


def run_ycsb(machine: Machine, store: LsmStore, workload: str,
             ops: int = 2000, n_keys: int = 2000, seed: int = 7) -> dict:
    """One YCSB-style mix; returns op counts actually executed."""
    rng = random.Random(seed)
    counts = {"read": 0, "update": 0, "scan": 0, "insert": 0}

    def read():
        store.get(rng.randrange(n_keys))
        counts["read"] += 1

    def update():
        store.put(rng.randrange(n_keys), "u")
        counts["update"] += 1

    def scan():
        lo = rng.randrange(n_keys)
        store.scan(lo, lo + 100, limit=50)
        counts["scan"] += 1

    def insert():
        store.put(n_keys + rng.randrange(1 << 20), "i")
        counts["insert"] += 1

    if workload == "load":
        mix = [(1.0, insert)]
        ops = ops  # pure inserts
    elif workload == "a":
        mix = [(0.5, read), (1.0, update)]
    elif workload == "b":
        mix = [(0.95, read), (1.0, update)]
    elif workload == "c":
        mix = [(1.0, read)]
    elif workload == "e":
        mix = [(0.95, scan), (1.0, insert)]
        ops = max(1, ops // 20)  # scans touch ~100 entries each
    else:
        raise ConfigError(f"unknown YCSB workload {workload!r}; "
                          f"known: {YCSB_WORKLOADS}")
    for _ in range(ops):
        roll = rng.random()
        for threshold, op in mix:
            if roll <= threshold:
                op()
                break
    return counts
