"""The 7 basic query operations of Figure 6.

The paper breaks down the Active energy of seven primitive operations —
select, projection, join, sort, groupby, table scan, index scan — per
database system.  Here each is a small logical plan over the loaded
TPC-H tables; table scan and index scan force their access paths so the
contrast the paper highlights (sequential locality vs pointer chasing,
§3.2) is guaranteed rather than planner-dependent.
"""

from __future__ import annotations

from repro.db.engine import Database
from repro.db.exprs import Between, Col, Const
from repro.db.operators import AggSpec
from repro.db.planner import (
    Aggregate,
    Join,
    Logical,
    Project,
    Scan,
    Sort,
)
from repro.db.types import Row

#: Figure 6's workload order.
BASIC_OPERATIONS = (
    "select",
    "projection",
    "join",
    "sort",
    "groupby",
    "table_scan",
    "index_scan",
)


def basic_operation_plan(name: str) -> Logical:
    """The logical plan of one basic operation (over TPC-H tables)."""
    if name == "select":
        # Moderately selective predicate over the fact table.
        return Scan("lineitem", Between(Col("l_quantity"), 10.0, 24.0))
    if name == "projection":
        return Project(
            Scan("lineitem"),
            (("l_orderkey", Col("l_orderkey")),
             ("gross", Col("l_extendedprice") * (Const(1) - Col("l_discount"))),
             ("l_shipdate", Col("l_shipdate"))),
        )
    if name == "join":
        return Join(
            Scan("lineitem"),
            Scan("orders"),
            Col("l_orderkey"), Col("o_orderkey"),
        )
    if name == "sort":
        return Sort(
            Scan("lineitem"),
            ((Col("l_extendedprice"), True),),
        )
    if name == "groupby":
        return Aggregate(
            Scan("lineitem"),
            (("l_returnflag", Col("l_returnflag")),
             ("l_linestatus", Col("l_linestatus"))),
            (AggSpec("n", "count"),
             AggSpec("total", "sum", Col("l_extendedprice"))),
        )
    if name == "table_scan":
        return Scan("lineitem", access="seq")
    if name == "index_scan":
        return Scan("lineitem", access="index_order")
    raise KeyError(f"unknown basic operation {name!r}")


def run_basic_operation(db: Database, name: str) -> list[Row]:
    """Execute one basic operation; results are materialised and
    returned (display stays disabled, as in the paper's kernels)."""
    return db.execute(basic_operation_plan(name))
