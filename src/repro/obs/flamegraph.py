"""Energy flamegraph: the span tree as a standalone SVG.

The classic flamegraph form, but the x-axis is **Active energy** rather
than samples: a frame's width is its subtree's share of the traced
window's Active energy, children are laid left-to-right inside the
parent, and whatever width the children do not cover is the frame's own
(exclusive) energy.  Root at the bottom, depth grows upward.

Visual style (surface, ink tokens, fonts, hover tooltips) is reused
from :mod:`repro.analysis.svg` so the trace figures look like the
paper-reproduction figures; frame hue encodes the span *category*
(query / operator / io / index), never identity, and every frame
carries a native ``<title>`` tooltip with its exact energies.
"""

from __future__ import annotations

from repro.obs.span import Span, Trace

#: Category -> fill, drawn from the same CVD-checked palette as the
#: stacked-bar figures (see repro.analysis.svg.PALETTE).
CATEGORY_FILLS = {
    "trace": "#52514e",
    "query": "#eb6834",
    "operator": "#2a78d6",
    "io": "#e34948",
    "index": "#008300",
    "sql": "#4a3aa7",
}
_DEFAULT_FILL = "#1baf7a"

_FRAME_H = 22
_MIN_W = 0.8
_WIDTH = 960
_TITLE_H = 34
_PAD = 12


def _depth(span: Span) -> int:
    if not span.children:
        return 1
    return 1 + max(_depth(child) for child in span.children)


def energy_flamegraph_svg(trace: Trace, title: str = "Energy flamegraph") -> str:
    """Render the trace as a flamegraph SVG string."""
    from repro.analysis.svg import INK_PRIMARY, INK_SECONDARY, SURFACE, _FONT, _esc

    total = trace.total_active_j
    depth = _depth(trace.root)
    height = _TITLE_H + depth * (_FRAME_H + 2) + _PAD
    plot_w = _WIDTH - 2 * _PAD
    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{_WIDTH}' "
        f"height='{height}' viewBox='0 0 {_WIDTH} {height}' role='img' "
        f"aria-label='{_esc(title)}'>",
        f"<rect width='{_WIDTH}' height='{height}' fill='{SURFACE}'/>",
        f"<text x='{_PAD}' y='20' {_FONT} font-size='14' font-weight='600' "
        f"fill='{INK_PRIMARY}'>{_esc(title)}</text>",
        f"<text x='{_WIDTH - _PAD}' y='20' {_FONT} font-size='11' "
        f"fill='{INK_SECONDARY}' text-anchor='end'>"
        f"{total:.4e} J Active ({trace.domain})</text>",
    ]

    def emit(span: Span, x: float, width: float, level: int) -> None:
        if width < _MIN_W:
            return
        # Root frame sits at the bottom; children stack upward.
        y = height - _PAD - (level + 1) * (_FRAME_H + 2)
        inclusive = trace.inclusive_active_j(span)
        self_j = trace.active_energy_j(span)
        share = 100.0 * inclusive / total if total > 0 else 0.0
        fill = CATEGORY_FILLS.get(span.category, _DEFAULT_FILL)
        tooltip = (
            f"{span.name} — {inclusive:.3e} J ({share:.1f}%), "
            f"self {self_j:.3e} J, {span.self_busy_s:.3e} s busy"
        )
        parts.append(
            f"<rect x='{x:.2f}' y='{y:.1f}' width='{max(_MIN_W, width - 0.6):.2f}' "
            f"height='{_FRAME_H}' rx='2' fill='{fill}'>"
            f"<title>{_esc(tooltip)}</title></rect>"
        )
        # Label only frames wide enough to hold legible text.
        if width > 7.0 * min(len(span.name), 6):
            max_chars = max(1, int(width / 6.6))
            label = (span.name if len(span.name) <= max_chars
                     else span.name[: max_chars - 1] + "…")
            parts.append(
                f"<text x='{x + 4:.2f}' y='{y + _FRAME_H - 7}' {_FONT} "
                f"font-size='10' fill='{SURFACE}'>{_esc(label)}</text>"
            )
        child_x = x
        for child in span.children:
            child_inclusive = trace.inclusive_active_j(child)
            child_w = (width * child_inclusive / inclusive
                       if inclusive > 0 else 0.0)
            emit(child, child_x, child_w, level + 1)
            child_x += child_w

    emit(trace.root, float(_PAD), float(plot_w), 0)
    parts.append("</svg>")
    return "".join(parts)


def write_flamegraph(trace: Trace, path: str,
                     title: str = "Energy flamegraph") -> None:
    with open(path, "w") as fh:
        fh.write(energy_flamegraph_svg(trace, title))
        fh.write("\n")


def trace_to_folded(trace: Trace) -> str:
    """The trace in Brendan Gregg's folded-stack format.

    One line per span: semicolon-joined stack, a space, then the span's
    *exclusive* Active energy in joules (``repr`` so the round trip is
    exact).  Standard flamegraph tooling (``flamegraph.pl``, speedscope,
    inferno) accepts fractional values, so the output feeds them
    directly — the x-axis becomes joules instead of samples.  Spans with
    zero exclusive energy are kept only when they are leaves, so the
    stack set still covers the whole tree shape.
    """
    lines: list[str] = []

    def visit(span: Span, prefix: tuple) -> None:
        stack = prefix + (span.name.replace(";", ","),)
        self_j = trace.active_energy_j(span)
        if self_j != 0.0 or not span.children:
            lines.append(";".join(stack) + f" {self_j!r}")
        for child in span.children:
            visit(child, stack)

    visit(trace.root, ())
    return "\n".join(lines) + "\n"


def parse_folded(text: str) -> dict:
    """Parse folded-stack text back into ``{(frame, ...): joules}``.

    Inverse of :func:`trace_to_folded` (values merged per stack, as the
    format allows repeats).  The value is whatever follows the last
    space, so frame names may contain spaces.
    """
    out: dict = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        stack_part, _, value = line.rpartition(" ")
        key = tuple(stack_part.split(";"))
        out[key] = out.get(key, 0.0) + float(value)
    return out
