"""Differential energy attribution: *what* regressed between two runs.

A bench gate that prints a bare ratio answers "did it regress"; this
module answers "where".  :func:`load_snapshot` reads any of the repo's
run artifacts —

* a **bench** report (``repro bench`` / ``BENCH_simperf.json``),
* a **serve** report (``repro serve --json``), or
* a **trace** span log (``repro trace --jsonl``)

— and normalises it into per-dimension attributions: energy and time
per *operator*, per *micro-op class*, and per *cache level* (where the
artifact carries them; a bench report carries per-section throughput
and wall time instead).  :func:`diff_snapshots` takes two snapshots of
the same kind and produces ranked Δ tables; :func:`render_diff` prints
them as a text report.

Energy attribution below the operator level uses count-weighted shares:
a span's (or group's) Active energy is split across micro-op classes in
proportion to their instruction counts, and across cache levels in
proportion to *terminal* access counts (each load terminates at exactly
one level: an L1D hit, an L2 hit, an L3 hit, or memory).  That is an
approximation — per-class energies differ — but it is deterministic,
sums exactly to the operator energy, and ranks regressions by the same
signal the paper's Eq. (1) weighs.

Snapshots refuse to compare across kinds or schema versions: a report
produced by a different schema may have renamed or re-scoped the very
field being diffed, so the comparison fails loudly
(:class:`~repro.errors.DiffError`) instead of producing a confident
wrong answer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DiffError

#: Micro-op instruction classes and their PMU counter fields.
MICROOP_FIELDS = {
    "load": "n_load_inst",
    "store": "n_store_inst",
    "add": "n_add",
    "nop": "n_nop",
    "mul": "n_mul",
    "cmp": "n_cmp",
    "branch": "n_branch",
    "other": "n_other",
}

#: Cache levels and the counter holding *terminal* accesses there.
TERMINAL_LEVEL_FIELDS = {
    "L1D": "l1d_hits",
    "L2": "l2_hits",
    "L3": "l3_hits",
    "mem": "n_mem",
}


@dataclass
class Snapshot:
    """One run artifact normalised for diffing."""

    path: str
    kind: str
    schema_version: object
    total_energy_j: Optional[float] = None
    total_time_s: Optional[float] = None
    #: ``{name: {"energy_j": float, "time_s": float}}``
    operators: dict = field(default_factory=dict)
    #: ``{class: {"count": float, "energy_j": float}}``
    microops: dict = field(default_factory=dict)
    #: ``{level: {"count": float, "energy_j": float}}``
    cache_levels: dict = field(default_factory=dict)
    #: Bench only: ``{section: {"mops": float, "wall_s": float}}``
    sections: dict = field(default_factory=dict)


# ------------------------------------------------------------------ loading


def load_snapshot(path: str) -> Snapshot:
    """Read and normalise one artifact (kind auto-detected)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if not text.strip():
        raise DiffError(f"{path}: empty file")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict):
        if doc.get("kind") == "optimizer":
            return _load_optimizer(path, doc)
        if "scan_path" in doc:
            return _load_bench(path, doc)
        if "energy" in doc and "counts" in doc:
            return _load_serve(path, doc)
        if "record" not in doc:
            raise DiffError(
                f"{path}: unrecognised JSON document (expected a bench "
                f"or serve report, or a trace/timeline JSONL file)"
            )
        # A one-record JSONL file parses as a whole-JSON dict; fall
        # through to the line-oriented handling below.
    lines = [line for line in text.splitlines() if line.strip()]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise DiffError(f"{path}: not JSON and not JSONL ({exc})") from exc
    record = header.get("record")
    if record == "trace":
        return _load_trace(path, header, lines[1:])
    if record == "timeline":
        raise DiffError(
            f"{path}: timelines are time series, not attribution "
            f"snapshots; diff the serve reports or traces that "
            f"produced them"
        )
    raise DiffError(f"{path}: unrecognised JSONL record {record!r}")


def _credit_weighted(target: dict, fields_map: dict, counters: dict,
                     energy_j: float) -> None:
    """Split ``energy_j`` across ``fields_map`` keys in proportion to
    their counts; accumulate counts alongside."""
    counts = {key: float(counters.get(fld, 0) or 0)
              for key, fld in fields_map.items()}
    total = sum(counts.values())
    for key, count in counts.items():
        entry = target.setdefault(key, {"count": 0.0, "energy_j": 0.0})
        entry["count"] += count
        if total > 0:
            entry["energy_j"] += energy_j * count / total


def _load_trace(path: str, header: dict, lines: list) -> Snapshot:
    snap = Snapshot(
        path=path,
        kind="trace",
        schema_version=header.get("schema_version", "unversioned"),
        total_energy_j=header.get("total_active_j"),
    )
    total_time = 0.0
    for line in lines:
        record = json.loads(line)
        meta = record.get("meta", {})
        name = meta.get("op") or meta.get("job") or record["name"]
        self_part = record["self"]
        energy = self_part["active_j"]
        time_s = self_part["time_s"]
        total_time += time_s
        op = snap.operators.setdefault(
            name, {"energy_j": 0.0, "time_s": 0.0}
        )
        op["energy_j"] += energy
        op["time_s"] += time_s
        counters = self_part.get("counters", {})
        _credit_weighted(snap.microops, MICROOP_FIELDS, counters, energy)
        _credit_weighted(snap.cache_levels, TERMINAL_LEVEL_FIELDS,
                         counters, energy)
    snap.total_time_s = total_time
    return snap


def _load_serve(path: str, doc: dict) -> Snapshot:
    snap = Snapshot(
        path=path,
        kind="serve",
        schema_version=doc.get("schema_version", "unversioned"),
        total_energy_j=doc["energy"]["total_active_j"],
        total_time_s=doc["clock"]["wall_s"],
    )
    groups = doc.get("telemetry", {}).get("groups", {})
    for name, row in groups.items():
        snap.operators[name] = {
            "energy_j": row["active_j"],
            "time_s": row["time_s"],
        }
        energy = row["active_j"]
        microops = row.get("microops", {})
        _credit_weighted(
            snap.microops,
            {cls: cls for cls in MICROOP_FIELDS},
            microops, energy,
        )
        levels = row.get("cache_levels", {})
        terminal = {
            "L1D": levels.get("L1D", {}).get("hits", 0),
            "L2": levels.get("L2", {}).get("hits", 0),
            "L3": levels.get("L3", {}).get("hits", 0),
            "mem": levels.get("mem", {}).get("accesses", 0),
        }
        _credit_weighted(
            snap.cache_levels,
            {lvl: lvl for lvl in terminal},
            terminal, energy,
        )
    if not groups:
        # No sampler telemetry: fall back to per-tenant attribution so
        # plain serve reports still diff at some granularity.
        for tenant, joules in doc["energy"]["tenant_active_j"].items():
            snap.operators[f"tenant:{tenant}"] = {
                "energy_j": joules, "time_s": 0.0,
            }
    return snap


def _load_bench(path: str, doc: dict) -> Snapshot:
    snap = Snapshot(
        path=path,
        kind="bench",
        schema_version=doc.get("schema_version", "unversioned"),
    )
    walls = doc.get("sections_wall_s", {})
    scan = doc.get("scan_path", {})
    for key, entry in scan.items():
        if key == "fig08_datasize_scan":
            for tier, tier_entry in entry.items():
                snap.sections[f"scan_path.fig08.{tier}"] = {
                    "mops": tier_entry.get("batched_mops"),
                    "wall_s": None,
                }
            continue
        snap.sections[f"scan_path.{key}"] = {
            "mops": entry.get("batched_mops"),
            "wall_s": None,
        }
    row = doc.get("row_load_run", {})
    if row:
        snap.sections["row_load_run"] = {
            "mops": row.get("batched_mops"), "wall_s": None,
        }
    for query, entry in doc.get("tpch", {}).items():
        snap.sections[f"tpch.{query}"] = {
            "mops": None, "wall_s": entry.get("batched_s"),
        }
    serve = doc.get("serve", {})
    if "batched" in serve:  # pre-v4 layout: one flat cross-mode entry
        snap.sections["serve"] = {
            "mops": None,
            "wall_s": serve.get("batched", {}).get("wall_s"),
        }
    else:  # v4+: named sub-benches (tpch, engine), each cross-mode
        for key, entry in serve.items():
            snap.sections[f"serve.{key}"] = {
                "mops": None,
                "wall_s": entry.get("batched", {}).get("wall_s"),
            }
    scale = doc.get("serve_scale", {})
    if scale:
        snap.sections["serve_scale"] = {
            "mops": None,
            "wall_s": scale.get("wall_s"),
        }
    for section, wall in walls.items():
        entry = snap.sections.setdefault(
            section, {"mops": None, "wall_s": None}
        )
        if entry.get("wall_s") is None:
            entry["wall_s"] = wall
    return snap


def _load_optimizer(path: str, doc: dict) -> Snapshot:
    """An optimizer-compare artifact (``repro optimize --compare``).

    Each (engine, query) entry becomes an "operator" row carrying the
    optimized plan's measured joules, so the generic ranked-Δ machinery
    surfaces which query's optimized energy moved between two runs.
    """
    snap = Snapshot(
        path=path,
        kind="optimizer",
        schema_version=doc.get("schema_version", "unversioned"),
    )
    total = 0.0
    for engine, per_engine in doc.get("engines", {}).items():
        for query, entry in per_engine.items():
            energy = entry.get("optimized_j")
            if energy is None:
                continue
            snap.operators[f"{engine}.{query}"] = {
                "energy_j": energy, "time_s": None,
            }
            total += energy
    snap.total_energy_j = total if snap.operators else None
    return snap


# ------------------------------------------------------------------ diffing


def _check_comparable(a: Snapshot, b: Snapshot) -> None:
    if a.kind != b.kind:
        raise DiffError(
            f"cannot diff a {a.kind} snapshot ({a.path}) against a "
            f"{b.kind} snapshot ({b.path})"
        )
    if a.schema_version != b.schema_version:
        raise DiffError(
            f"schema version mismatch: {a.path} is "
            f"{a.schema_version!r}, {b.path} is {b.schema_version!r}; "
            f"regenerate the older snapshot with the current tooling"
        )


def _delta_rows(a_dim: dict, b_dim: dict, value_keys: tuple) -> list:
    rows = []
    for name in sorted(set(a_dim) | set(b_dim)):
        row = {"name": name}
        for key in value_keys:
            va = a_dim.get(name, {}).get(key)
            vb = b_dim.get(name, {}).get(key)
            row[f"a_{key}"] = va
            row[f"b_{key}"] = vb
            row[f"delta_{key}"] = (
                vb - va if va is not None and vb is not None else None
            )
        rows.append(row)
    return rows


def _rank(rows: list, by: str) -> list:
    return sorted(
        rows,
        key=lambda row: (-(abs(row[by]) if row[by] is not None else 0.0),
                         row["name"]),
    )


def diff_snapshots(a: Snapshot, b: Snapshot) -> dict:
    """Ranked per-dimension deltas ``b - a`` (A is the baseline)."""
    _check_comparable(a, b)
    out: dict = {
        "kind": a.kind,
        "a": a.path,
        "b": b.path,
        "totals": {
            "a_energy_j": a.total_energy_j,
            "b_energy_j": b.total_energy_j,
            "delta_energy_j": (
                b.total_energy_j - a.total_energy_j
                if a.total_energy_j is not None
                and b.total_energy_j is not None else None
            ),
            "a_time_s": a.total_time_s,
            "b_time_s": b.total_time_s,
            "delta_time_s": (
                b.total_time_s - a.total_time_s
                if a.total_time_s is not None
                and b.total_time_s is not None else None
            ),
        },
        "dims": {},
    }
    if a.operators or b.operators:
        out["dims"]["operator"] = _rank(
            _delta_rows(a.operators, b.operators, ("energy_j", "time_s")),
            "delta_energy_j",
        )
    if a.microops or b.microops:
        out["dims"]["microop"] = _rank(
            _delta_rows(a.microops, b.microops, ("energy_j", "count")),
            "delta_energy_j",
        )
    if a.cache_levels or b.cache_levels:
        out["dims"]["cache_level"] = _rank(
            _delta_rows(a.cache_levels, b.cache_levels,
                        ("energy_j", "count")),
            "delta_energy_j",
        )
    if a.sections or b.sections:
        rows = _delta_rows(a.sections, b.sections, ("mops", "wall_s"))
        for row in rows:
            va, vb = row["a_mops"], row["b_mops"]
            row["mops_ratio"] = (vb / va if va and vb is not None else None)
        out["dims"]["section"] = sorted(
            rows,
            key=lambda row: (row["mops_ratio"]
                             if row["mops_ratio"] is not None else 1.0,
                             row["name"]),
        )
    return out


def top_regressor(diff: dict) -> Optional[dict]:
    """The single worst-regressing entry of a diff, or None.

    For bench diffs: the section with the lowest B/A throughput ratio
    below 1.0.  For trace/serve diffs: the operator with the largest
    energy increase.
    """
    sections = diff["dims"].get("section")
    if sections:
        worst = None
        for row in sections:
            ratio = row.get("mops_ratio")
            if ratio is not None and ratio < 1.0:
                if worst is None or ratio < worst["mops_ratio"]:
                    worst = row
        return worst
    operators = diff["dims"].get("operator")
    if operators:
        worst = operators[0]
        if worst["delta_energy_j"] and worst["delta_energy_j"] > 0:
            return worst
    return None


def bench_top_regressor(current: dict, baseline: dict) -> Optional[dict]:
    """The worst-regressing section between two in-memory bench docs.

    Used by ``repro bench --check`` to *name* the responsible section
    when the gate fails.  Schema mismatch is tolerated here (the gate
    itself already compared like-for-like fields); only the ranking
    borrows this module's machinery.
    """
    a = _load_bench("<baseline>", baseline)
    b = _load_bench("<current>", current)
    a.schema_version = b.schema_version = "in-memory"
    return top_regressor(diff_snapshots(a, b))


# ---------------------------------------------------------------- rendering


def _fmt(value, unit: str = "") -> str:
    if value is None:
        return "n/a"
    return f"{value:+.3e}{unit}" if unit == " J" else f"{value:.4g}{unit}"


def render_diff(diff: dict, top: int = 10) -> str:
    """The ranked text report ``repro diff`` prints."""
    totals = diff["totals"]
    lines = [
        f"diff ({diff['kind']}): A={diff['a']}  B={diff['b']}",
    ]
    if totals["delta_energy_j"] is not None:
        pct = (100.0 * totals["delta_energy_j"] / totals["a_energy_j"]
               if totals["a_energy_j"] else 0.0)
        lines.append(
            f"total energy: {totals['a_energy_j']:.4e} J -> "
            f"{totals['b_energy_j']:.4e} J "
            f"({totals['delta_energy_j']:+.3e} J, {pct:+.1f}%)"
        )
    if totals["delta_time_s"] is not None:
        lines.append(
            f"total time:   {totals['a_time_s']:.4e} s -> "
            f"{totals['b_time_s']:.4e} s "
            f"({totals['delta_time_s']:+.3e} s)"
        )
    dim_titles = (
        ("operator", "Δ energy by operator", "delta_energy_j", " J"),
        ("microop", "Δ energy by micro-op class", "delta_energy_j", " J"),
        ("cache_level", "Δ energy by cache level", "delta_energy_j", " J"),
    )
    for dim, title, key, unit in dim_titles:
        rows = diff["dims"].get(dim)
        if not rows:
            continue
        lines.append(f"-- {title} (top {min(top, len(rows))}) --")
        for row in rows[:top]:
            extra = ""
            if dim == "operator" and row["delta_time_s"] is not None:
                extra = f"  Δt {row['delta_time_s']:+.3e} s"
            elif dim in ("microop", "cache_level") and (
                row.get("delta_count") is not None
            ):
                extra = f"  Δn {row['delta_count']:+.4g}"
            lines.append(
                f"  {row['name']:<32} {_fmt(row[key], unit)}{extra}"
            )
    sections = diff["dims"].get("section")
    if sections:
        lines.append("-- bench sections (worst ratio first) --")
        for row in sections[:top]:
            ratio = row.get("mops_ratio")
            ratio_part = (f"{ratio:.3f}x" if ratio is not None else " n/a ")
            wall = ""
            if row["delta_wall_s"] is not None:
                wall = f"  Δwall {row['delta_wall_s']:+.3g} s"
            lines.append(
                f"  {row['name']:<28} throughput B/A {ratio_part}"
                f"  ({_fmt(row['a_mops'])} -> {_fmt(row['b_mops'])} "
                f"Mops/s){wall}"
            )
    worst = top_regressor(diff)
    if worst is not None:
        if "mops_ratio" in worst:
            lines.append(
                f"top regressor: {worst['name']} "
                f"({worst['mops_ratio']:.3f}x baseline throughput)"
            )
        else:
            lines.append(
                f"top regressor: {worst['name']} "
                f"({worst['delta_energy_j']:+.3e} J)"
            )
    return "\n".join(lines)
