"""Spans and finished traces: the data model of the observability layer.

A :class:`Span` is one named region of execution (a query, an operator,
a buffer-pool miss, an index build).  While a tracer is active the
machine's work is *partitioned* across spans: every PMU count, every
RAPL joule, and every second of wall clock is credited to exactly one
span — the one executing when the work happened.  A span therefore
carries **self** (exclusive) totals; inclusive totals are the self
totals summed over the subtree.

Because the partition is exact, the per-operator self energies of a
query plan sum to the query's measured Active energy — the attribution
property the paper's whole-workload breakdown lacks (§3 measures one
window per run; spans measure one window per plan node).

A :class:`Trace` wraps the finished span tree together with the RAPL
domain chosen for the run (§2.6's rule applied to the root counters),
the measured background rates, and optionally a calibrated dE table so
each span's counters can be priced into a per-span
:class:`~repro.core.model.EnergyBreakdown`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.sim.pmu import PmuCounters

#: RAPL domain names — must match :mod:`repro.micro.measurement`.
DOMAIN_CORE = "core"
DOMAIN_PACKAGE = "package"
DOMAIN_PACKAGE_DRAM = "package+dram"

#: Span categories used by the built-in instrumentation.
CATEGORY_TRACE = "trace"
CATEGORY_QUERY = "query"
CATEGORY_OPERATOR = "operator"
CATEGORY_IO = "io"
CATEGORY_INDEX = "index"


def domain_energy_j(core_j: float, package_j: float, dram_j: float,
                    domain: str) -> float:
    """Energy of one RAPL *measurement* domain from the three raw reads.

    The package read physically contains the core, so the package
    domain is just the package delta; only DRAM adds a second meter.
    """
    if domain == DOMAIN_CORE:
        return core_j
    if domain == DOMAIN_PACKAGE:
        return package_j
    if domain == DOMAIN_PACKAGE_DRAM:
        return package_j + dram_j
    raise ValueError(f"unknown RAPL domain {domain!r}")


@dataclass
class Span:
    """One region of traced execution with exclusive (self) totals."""

    name: str
    category: str = "span"
    meta: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    #: PMU counter delta credited to this span alone (children excluded).
    self_counters: PmuCounters = field(default_factory=PmuCounters)
    #: Raw RAPL read deltas credited to this span alone, in joules.
    self_core_j: float = 0.0
    self_package_j: float = 0.0
    self_dram_j: float = 0.0
    #: Wall-clock seconds credited to this span alone.
    self_time_s: float = 0.0
    self_busy_s: float = 0.0
    self_idle_s: float = 0.0
    #: Simulated timestamps of the first entry / last exit (None when the
    #: span was opened but never entered, e.g. an operator never pulled).
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None
    #: How many times execution entered the span (pull-pipeline operators
    #: re-enter once per row).
    enters: int = 0

    # ------------------------------------------------------------ traversal

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def n_spans(self) -> int:
        return sum(1 for _ in self.walk())

    # ------------------------------------------------------------ inclusive

    def inclusive_counters(self) -> PmuCounters:
        """Self counters plus every descendant's (the subtree's window)."""
        total = self.self_counters.copy()
        for child in self.children:
            total.accumulate(child.inclusive_counters())
        return total

    def _inclusive(self, attr: str) -> float:
        return sum(getattr(span, attr) for span in self.walk())

    @property
    def inclusive_time_s(self) -> float:
        return self._inclusive("self_time_s")

    @property
    def inclusive_busy_s(self) -> float:
        return self._inclusive("self_busy_s")

    @property
    def inclusive_idle_s(self) -> float:
        return self._inclusive("self_idle_s")

    def self_domain_j(self, domain: str) -> float:
        return domain_energy_j(
            self.self_core_j, self.self_package_j, self.self_dram_j, domain
        )

    def inclusive_domain_j(self, domain: str) -> float:
        return sum(span.self_domain_j(domain) for span in self.walk())


class Trace:
    """A finished span tree plus everything needed to price it.

    ``background`` (a :class:`~repro.micro.measurement.BackgroundRates`)
    turns raw domain joules into Active energy; ``delta_e`` (a
    :class:`~repro.core.model.DeltaE`) additionally lets each span's
    Active energy be decomposed along Eq. (1).
    """

    def __init__(self, root: Span, domain: str, background=None,
                 delta_e=None):
        self.root = root
        self.domain = domain
        self.background = background
        self.delta_e = delta_e

    # ------------------------------------------------------------ energy

    def _background_w(self) -> float:
        if self.background is None:
            return 0.0
        return self.background.rate(self.domain)

    def active_energy_j(self, span: Span) -> float:
        """Active energy credited to ``span`` alone (§2.6: domain energy
        minus background power times the span's wall-clock share)."""
        return (span.self_domain_j(self.domain)
                - self._background_w() * span.self_time_s)

    def inclusive_active_j(self, span: Span) -> float:
        return sum(self.active_energy_j(s) for s in span.walk())

    @property
    def total_active_j(self) -> float:
        """Measured Active energy of the whole traced window."""
        return self.inclusive_active_j(self.root)

    def breakdown(self, span: Span, inclusive: bool = False):
        """Price one span's counters into an Eq. (1) breakdown.

        Requires the trace to have been created with a dE table.
        Returns an :class:`~repro.core.model.EnergyBreakdown`.
        """
        from repro.core.breakdown import price_counters

        if self.delta_e is None:
            raise ValueError("trace has no dE table; pass delta_e to Tracer")
        counters = (span.inclusive_counters() if inclusive
                    else span.self_counters)
        active = (self.inclusive_active_j(span) if inclusive
                  else self.active_energy_j(span))
        return price_counters(counters, self.delta_e, active)

    def active_energy_by_meta(self, key: str) -> dict:
        """Partition the trace's Active energy by a span-meta value.

        Each span's *self* energy is credited to the value of ``key`` on
        the nearest enclosing span that carries it (spans inherit the
        tag downward: a buffer-pool miss inside a tenant's quantum bills
        that tenant).  Untagged energy — idle gaps, scheduler work —
        lands under ``None``.  Because every span is visited exactly
        once, the group sums add up to :attr:`total_active_j` exactly,
        the same partition invariant the span tree itself guarantees.
        """
        groups: dict = {}

        def visit(span: Span, inherited) -> None:
            owner = span.meta.get(key, inherited)
            groups[owner] = groups.get(owner, 0.0) + self.active_energy_j(span)
            for child in span.children:
                visit(child, owner)

        visit(self.root, None)
        return groups

    def active_energy_by_metas(self, keys: tuple) -> dict:
        """Partition Active energy by a *tuple* of span-meta values.

        Multi-key variant of :meth:`active_energy_by_meta`: each span's
        self energy is credited to the tuple of per-key owners, where
        each key inherits downward independently (a ``wasted``-tagged
        repair span inside a request's quantum keeps the request tag but
        overrides the wasted tag).  Visiting every span exactly once
        keeps the invariant: the group sums equal :attr:`total_active_j`
        exactly — which is what lets the serve report split Active
        energy into useful and wasted joules with no residual.
        """
        groups: dict = {}

        def visit(span: Span, inherited: tuple) -> None:
            owner = tuple(
                span.meta.get(key, inherited[i])
                for i, key in enumerate(keys)
            )
            groups[owner] = groups.get(owner, 0.0) + self.active_energy_j(span)
            for child in span.children:
                visit(child, owner)

        visit(self.root, (None,) * len(keys))
        return groups

    # ------------------------------------------------------------ views

    def spans(self) -> Iterator[Span]:
        return self.root.walk()

    def operator_spans(self) -> list[Span]:
        return [s for s in self.spans() if s.category == CATEGORY_OPERATOR]

    def render_tree(self, max_depth: Optional[int] = None) -> str:
        """Human-readable span tree with per-span energy attribution."""
        total = self.total_active_j
        lines = [
            f"trace: domain={self.domain}  "
            f"active={total:.4e} J  wall={self.root.inclusive_time_s:.4e} s  "
            f"spans={self.root.n_spans}"
        ]

        def emit(span: Span, depth: int) -> None:
            if max_depth is not None and depth > max_depth:
                return
            inclusive = self.inclusive_active_j(span)
            share = 100.0 * inclusive / total if total > 0 else 0.0
            self_j = self.active_energy_j(span)
            label = "  " * depth + span.name
            rows = span.meta.get("rows")
            rows_part = f"  rows={rows}" if rows is not None else ""
            lines.append(
                f"{label:<44} {inclusive:.3e} J {share:5.1f}%  "
                f"self {self_j:.3e} J{rows_part}"
            )
            for child in span.children:
                emit(child, depth + 1)

        emit(self.root, 0)
        return "\n".join(lines)
