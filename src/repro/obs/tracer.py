"""Span tracers: the live side of the observability layer.

Two implementations share one duck type:

* :class:`Tracer` — the real thing.  It keeps a stack of open spans and,
  at every transition (span enter/exit), calls
  :meth:`~repro.sim.machine.Machine.settle` and credits the PMU/RAPL/
  clock delta since the previous transition to the span that was
  executing in between.  The partition is exact: every count and every
  joule lands in exactly one span.
* :class:`NullTracer` — the default on every machine.  ``enabled`` is
  False and every method is a no-op, so the hot micro-op path stays
  branch-cheap and an untraced run is bit-identical to the seed
  behaviour (zero counter drift).

Pull-pipeline attribution: operators interleave (a parent's per-row work
happens between its child's yields), so wrapping a whole generator in
one enter/exit would credit the parent's work to the child.
:meth:`Tracer.wrap_rows` instead enters the operator's span around each
``next()`` on the underlying generator — self time accumulates across
re-entries, and whatever a child pulls inside is credited to the child
by the same mechanism one stack level deeper.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from typing import TYPE_CHECKING, Optional

from repro.errors import TraceError
from repro.obs.span import CATEGORY_OPERATOR, Span, Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.machine import Machine

logger = logging.getLogger(__name__)


class _NullSpanContext:
    """Reusable no-op context manager (one instance for every span)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Do-nothing tracer: the default wired into every machine.

    Instrumentation sites test ``tracer.enabled`` (or simply use
    :meth:`span`, whose context manager is a shared no-op), so tracing
    costs nothing when off and touches no machine state — an untraced
    run accrues zero counter drift from the observability layer.
    """

    enabled = False
    __slots__ = ()

    def span(self, name: str, category: str = "span", **meta):
        return _NULL_SPAN

    def open(self, name: str, category: str = "span", **meta) -> None:
        return None

    def enter(self, span) -> None:
        return None

    def exit(self, span) -> None:
        return None

    def wrap_rows(self, op, ctx):
        return op.rows(ctx)


#: Shared instance — stateless, safe to reuse across machines.
NULL_TRACER = NullTracer()


class Tracer:
    """Settle-partitioned span tracer bound to one machine.

    Use as a context manager to install it as ``machine.tracer`` for the
    duration of a workload::

        tracer = Tracer(machine, background=cal.background,
                        delta_e=cal.delta_e)
        with tracer:
            db.sql("SELECT ...")
        print(tracer.trace.render_tree())

    ``background`` and ``delta_e`` are optional pricing context carried
    into the finished :class:`~repro.obs.span.Trace`.
    """

    enabled = True

    def __init__(self, machine: "Machine", background=None, delta_e=None,
                 name: str = "trace"):
        self.machine = machine
        self.background = background
        self.delta_e = delta_e
        self.root = Span(name=name, category="trace")
        self._stack: list[Span] = [self.root]
        self._finished: Optional[Trace] = None
        self._prev_tracer = None
        self._baseline()

    # ------------------------------------------------------------ accounting

    def _baseline(self) -> None:
        """Settle and snapshot: work before this point is not credited."""
        machine = self.machine
        machine.settle()
        # settle() leaves a fresh copy of the live counters in _settled;
        # reusing it saves one full-field copy per transition.
        self._last_counters = machine._settled
        rapl = machine.rapl
        self._last_core = rapl.energy_core()
        self._last_package = rapl.energy_package()
        self._last_dram = rapl.energy_dram()
        self._last_time = machine.time_s
        self._last_busy = machine.busy_s
        self._last_idle = machine.idle_s
        self.root.first_ts = machine.time_s

    def _credit_top(self) -> None:
        """Credit everything since the last transition to the open span."""
        machine = self.machine
        machine.settle()
        top = self._stack[-1]
        settled = machine._settled
        top.self_counters.accumulate(settled.minus(self._last_counters))
        self._last_counters = settled
        rapl = machine.rapl
        core = rapl.energy_core()
        package = rapl.energy_package()
        dram = rapl.energy_dram()
        d_package = package - self._last_package
        top.self_core_j += core - self._last_core
        top.self_package_j += d_package
        top.self_dram_j += dram - self._last_dram
        self._last_core, self._last_package, self._last_dram = (
            core, package, dram
        )
        d_time = machine.time_s - self._last_time
        top.self_time_s += d_time
        top.self_busy_s += machine.busy_s - self._last_busy
        top.self_idle_s += machine.idle_s - self._last_idle
        self._last_time = machine.time_s
        self._last_busy = machine.busy_s
        self._last_idle = machine.idle_s
        timeline = machine.timeline
        if timeline is not None and d_time > 0.0:
            # Feed wasted-tagged work into the timeline's window split.
            # The tag inherits downward, same as the report's partition.
            for span in reversed(self._stack):
                tag = span.meta.get("wasted")
                if tag is not None:
                    timeline.add_wasted(machine.time_s - d_time,
                                        machine.time_s, tag, d_package)
                    break

    # ------------------------------------------------------------ span API

    def open(self, name: str, category: str = "span", **meta) -> Span:
        """Create a span as a child of the currently-open span.

        The span accrues nothing until :meth:`enter`; operators open
        once and re-enter per row.
        """
        span = Span(name=name, category=category, meta=meta)
        self._stack[-1].children.append(span)
        return span

    def enter(self, span: Span) -> None:
        self._credit_top()
        self._stack.append(span)
        span.enters += 1
        if span.first_ts is None:
            span.first_ts = self.machine.time_s

    def exit(self, span: Span) -> None:
        self._credit_top()
        if self._stack[-1] is not span:
            raise TraceError(
                f"span exit mismatch: open={self._stack[-1].name!r}, "
                f"exiting={span.name!r}"
            )
        self._stack.pop()
        span.last_ts = self.machine.time_s

    @contextmanager
    def span(self, name: str, category: str = "span", **meta):
        """Open + enter a span for the duration of a ``with`` block."""
        span = self.open(name, category, **meta)
        self.enter(span)
        try:
            yield span
        finally:
            self.exit(span)

    def wrap_rows(self, op, ctx):
        """Trace one operator of a pull pipeline (see module docstring).

        Yields the operator's rows unchanged; the operator's span
        accumulates exactly the work done inside its own generator
        frame, children excluded.
        """
        span = self.open(op.describe(), category=CATEGORY_OPERATOR,
                         op=type(op).__name__)
        iterator = op.rows(ctx)
        n_rows = 0
        try:
            while True:
                self.enter(span)
                try:
                    row = next(iterator)
                except StopIteration:
                    self.exit(span)
                    return
                except BaseException:
                    self.exit(span)
                    raise
                self.exit(span)
                n_rows += 1
                yield row
        finally:
            span.meta["rows"] = n_rows

    # ------------------------------------------------------------ lifecycle

    def __enter__(self) -> "Tracer":
        self._prev_tracer = self.machine.tracer
        self.machine.tracer = self
        self._baseline()
        return self

    def __exit__(self, *exc) -> bool:
        self.machine.tracer = self._prev_tracer
        if exc[0] is None:
            self.finish()
        return False

    def finish(self) -> Trace:
        """Close the trace and return it (idempotent)."""
        if self._finished is None:
            self._credit_top()
            if len(self._stack) != 1:
                open_names = [s.name for s in self._stack[1:]]
                raise TraceError(f"unclosed spans at finish: {open_names}")
            self.root.last_ts = self.machine.time_s
            from repro.micro.measurement import select_domain

            domain = select_domain(self.root.inclusive_counters())
            self._finished = Trace(self.root, domain,
                                   background=self.background,
                                   delta_e=self.delta_e)
            logger.debug(
                "trace finished: %d spans, domain=%s",
                self.root.n_spans, domain,
            )
        return self._finished

    @property
    def trace(self) -> Trace:
        return self.finish()
