"""Trace exporters: JSONL span logs and Chrome ``trace_event`` JSON.

Two machine-readable formats for one :class:`~repro.obs.span.Trace`:

* **JSONL** — one span per line, pre-order, with ``id``/``parent``
  links, self/inclusive energy, timing, and the non-zero PMU counters.
  Easy to load into pandas/duckdb/jq for analysis.
* **Chrome trace_event** — the ``{"traceEvents": [...]}`` JSON that
  chrome://tracing and Perfetto (https://ui.perfetto.dev) open
  directly.  Spans become complete (``"ph": "X"``) events whose wall
  span runs from first entry to last exit; because a pull pipeline
  re-enters operator spans per row, the event duration is the
  *footprint* of the operator, while the exact exclusive attribution
  travels in ``args`` (energies are in there too — Perfetto timelines
  have no energy axis).

Timestamps are simulated microseconds (trace_event's native unit).
"""

from __future__ import annotations

import json
from typing import Iterator, Union

from repro.obs.span import Span, Trace

PathOrFile = Union[str, "object"]

#: Version stamp in the JSONL header; ``repro diff`` refuses to
#: compare trace logs with different stamps.
TRACE_SCHEMA_VERSION = 1


def _span_records(trace: Trace) -> Iterator[tuple[int, int, Span]]:
    """Yield ``(id, parent_id, span)`` in pre-order; the root has
    parent ``-1``."""
    counter = 0

    def visit(span: Span, parent: int) -> Iterator[tuple[int, int, Span]]:
        nonlocal counter
        span_id = counter
        counter += 1
        yield span_id, parent, span
        for child in span.children:
            yield from visit(child, span_id)

    yield from visit(trace.root, -1)


def span_to_dict(trace: Trace, span: Span, span_id: int,
                 parent_id: int) -> dict:
    """One JSONL record for one span."""
    record = {
        "id": span_id,
        "parent": parent_id,
        "name": span.name,
        "category": span.category,
        "meta": dict(span.meta),
        "enters": span.enters,
        "first_ts_s": span.first_ts,
        "last_ts_s": span.last_ts,
        "self": {
            "time_s": span.self_time_s,
            "busy_s": span.self_busy_s,
            "idle_s": span.self_idle_s,
            "core_j": span.self_core_j,
            "package_j": span.self_package_j,
            "dram_j": span.self_dram_j,
            "active_j": trace.active_energy_j(span),
            "counters": span.self_counters.as_dict(skip_zero=True),
        },
        "inclusive": {
            "time_s": span.inclusive_time_s,
            "active_j": trace.inclusive_active_j(span),
        },
    }
    if trace.delta_e is not None:
        record["self"]["breakdown_j"] = trace.breakdown(span).components()
    return record


def trace_to_jsonl(trace: Trace) -> str:
    """The full trace as JSON Lines text (header line first)."""
    lines = [json.dumps({
        "record": "trace",
        "schema_version": TRACE_SCHEMA_VERSION,
        "domain": trace.domain,
        "total_active_j": trace.total_active_j,
        "n_spans": trace.root.n_spans,
    }, sort_keys=True)]
    for span_id, parent_id, span in _span_records(trace):
        lines.append(json.dumps(
            span_to_dict(trace, span, span_id, parent_id), sort_keys=True
        ))
    return "\n".join(lines) + "\n"


def trace_to_chrome(trace: Trace) -> dict:
    """The trace as a Chrome ``trace_event`` JSON object."""
    events: list[dict] = [
        {"ph": "M", "pid": 1, "tid": 1, "name": "process_name",
         "args": {"name": "repro simulated machine"}},
        {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name",
         "args": {"name": f"query engine ({trace.domain})"}},
    ]
    spans = []
    for span_id, parent_id, span in _span_records(trace):
        if span.first_ts is None or span.last_ts is None:
            continue  # opened but never entered: no wall footprint
        spans.append((span_id, parent_id, span))
    # Viewers require X events sorted by timestamp within a track;
    # pre-order only guarantees parent-before-child, not sibling order
    # once operators interleave.  Tie-break on longer-duration-first so
    # a parent precedes a child that starts the same instant.
    spans.sort(key=lambda item: (item[2].first_ts, -item[2].last_ts))
    for span_id, parent_id, span in spans:
        events.append({
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "name": span.name,
            "cat": span.category,
            "ts": span.first_ts * 1e6,
            "dur": max(0.0, (span.last_ts - span.first_ts) * 1e6),
            "args": {
                "id": span_id,
                "parent": parent_id,
                "self_active_j": trace.active_energy_j(span),
                "inclusive_active_j": trace.inclusive_active_j(span),
                "self_busy_s": span.self_busy_s,
                "enters": span.enters,
                **{k: v for k, v in span.meta.items()
                   if isinstance(v, (str, int, float, bool))},
            },
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "domain": trace.domain,
            "total_active_j": trace.total_active_j,
        },
    }


def _open_for_write(path_or_file: PathOrFile):
    if hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, "w"), True


def write_jsonl(trace: Trace, path_or_file: PathOrFile) -> None:
    """Write the JSONL span log to a path or file object."""
    fh, owned = _open_for_write(path_or_file)
    try:
        fh.write(trace_to_jsonl(trace))
    finally:
        if owned:
            fh.close()


def write_chrome_trace(trace: Trace, path_or_file: PathOrFile) -> None:
    """Write Chrome trace_event JSON to a path or file object."""
    fh, owned = _open_for_write(path_or_file)
    try:
        json.dump(trace_to_chrome(trace), fh)
        fh.write("\n")
    finally:
        if owned:
            fh.close()
