"""Metrics registry: labelled counters, gauges, and histograms.

A deliberately small, dependency-free metrics surface in the Prometheus
style.  Hot simulator code does **not** call into the registry per
event — the existing cheap stat fields (cache hits, pool misses,
prefetcher issues) stay as plain integers, and *collectors* registered
with the registry copy them into gauges when a snapshot is taken.  Only
genuinely cold events (a DVFS governor transition, a buffer-pool disk
read) increment counters directly.

Series identity is ``(name, sorted(labels))``; asking for the same
series twice returns the same object, so call sites can either cache
the instrument or look it up each time.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Mapping, Optional

from repro.errors import ConfigError

#: Default histogram bucket upper bounds: powers of ten spanning
#: nanoseconds/nanojoules to tens of seconds/joules, plus +inf.
DEFAULT_BUCKETS = tuple(10.0 ** e for e in range(-9, 3)) + (math.inf,)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name}: negative increment")
        self.value += amount


class Gauge:
    """A value that can go up and down (set from collectors, usually)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus ``le`` semantics)."""

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count", "sum")

    def __init__(self, name: str, labels: Mapping[str, str],
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = dict(labels)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets or self.buckets[-1] != math.inf:
            self.buckets = self.buckets + (math.inf,)
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket containing the q-th observation).

        Nearest-rank semantics: the q-quantile of n observations is the
        ``max(1, ceil(q*n))``-th smallest, so ``q=0`` is the bucket of
        the minimum (not the first bucket bound, which may be empty) and
        ``q=1`` the bucket of the maximum.  An empty histogram has no
        quantiles and returns NaN.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return math.nan
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            seen += n
            if seen >= rank:
                return bound
        return self.buckets[-1]


def _series_key(name: str, labels: Optional[Mapping[str, str]]) -> tuple:
    return (name, tuple(sorted(labels.items())) if labels else ())


def render_series_name(name: str, labels: Mapping[str, str]) -> str:
    """``name{k=v,...}`` rendering used by snapshots and text output."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Home of every metric series for one machine (or one process)."""

    def __init__(self) -> None:
        self._series: dict[tuple, object] = {}
        self._collectors: list[Callable[[], None]] = []

    # ------------------------------------------------------------ factories

    def _get(self, cls, name: str, labels: Optional[Mapping[str, str]],
             **kwargs):
        key = _series_key(name, labels)
        series = self._series.get(key)
        if series is None:
            series = cls(name, labels or {}, **kwargs)
            self._series[key] = series
        elif not isinstance(series, cls):
            raise ConfigError(
                f"metric {name!r} already registered as "
                f"{type(series).__name__}, not {cls.__name__}"
            )
        return series

    def counter(self, name: str,
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str,
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # ------------------------------------------------------------ collectors

    def add_collector(self, fn: Callable[[], None]) -> None:
        """Register a callback that refreshes gauges at snapshot time."""
        self._collectors.append(fn)

    def collect(self) -> None:
        for fn in self._collectors:
            fn()

    # ------------------------------------------------------------ output

    def series(self) -> list:
        return list(self._series.values())

    def snapshot(self) -> dict:
        """Refresh collectors and return ``{rendered_name: value}``.

        Counter/gauge values are floats; histograms render as a dict
        with ``count``/``sum``/``mean`` and per-bucket counts.
        """
        self.collect()
        out: dict = {}
        for series in self._series.values():
            key = render_series_name(series.name, series.labels)
            if isinstance(series, Histogram):
                out[key] = {
                    "count": series.count,
                    "sum": series.sum,
                    "mean": series.mean,
                    "buckets": {
                        ("+inf" if bound == math.inf else repr(bound)): n
                        for bound, n in zip(series.buckets,
                                            series.bucket_counts)
                    },
                }
            else:
                out[key] = series.value
        return out

    def render(self) -> str:
        """One line per series, sorted — for CLI/debug output."""
        lines = []
        for key, value in sorted(self.snapshot().items()):
            if isinstance(value, dict):
                lines.append(
                    f"{key} count={value['count']} sum={value['sum']:.6g} "
                    f"mean={value['mean']:.6g}"
                )
            else:
                lines.append(f"{key} {value:.6g}")
        return "\n".join(lines)
