"""Timeline recorder: fixed-interval windows over *simulated* time.

A single end-of-run total hides exactly what Niemann et al. showed
matters: energy behaviour is workload-phase-dependent.  The
:class:`TimelineRecorder` turns one run into a time series — contiguous
fixed-width windows over the machine's simulated clock, each capturing
power draw, P-state residency, per-level cache miss rates, prefetcher
activity, queue depth, admission/terminal outcomes, and the
useful/wasted energy split by reason.

This is the sensor input the future online energy controller consumes,
so the row schema (:data:`TIMELINE_FIELDS`) is a versioned contract
(:data:`TIMELINE_SCHEMA_VERSION`) with a golden test.

Mechanics.  The machine calls :meth:`TimelineRecorder.on_advance` from
:meth:`~repro.sim.machine.Machine.settle` and
:meth:`~repro.sim.machine.Machine.idle` whenever simulated time moves.
Each advance delivers one *chunk* — the cumulative-counter delta since
the previous advance, priced at a single P-state (``settle`` runs
before every P-state switch, so a chunk never straddles one).  A chunk
that crosses window boundaries is prorated linearly across the windows
it overlaps: exact for time, busy/idle, residency, and energy (the
chunk's power is constant), an even-rate approximation for event counts
like cache misses (documented; counts within a chunk are not
timestamped individually).

Time axis: windows are over **machine time** — the serial
energy-pricing clock — not the per-core virtual clocks of
:class:`~repro.sim.cores.CoreSet`.  Serve events (admissions,
terminals, queue samples) are recorded against the machine clock at the
moment they are processed, keeping one consistent axis between power
and load.

Energy columns use the **package** RAPL domain throughout:
``active_j = package_j - background_package_w * (busy_s + idle_s)``.
``useful_j + wasted_j == active_j`` holds per window by construction
(useful is the remainder); the wasted feed comes from the telemetry
layer's wasted-tagged spans, background-subtracted the same way.
"""

from __future__ import annotations

import csv
import json
import math
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.machine import Machine

#: Version of the row schema below.  Bump on any field change; the
#: future online controller refuses timelines it does not understand.
TIMELINE_SCHEMA_VERSION = 1

#: Ordered row fields — the contract (golden-tested).
TIMELINE_FIELDS = (
    "window",
    "t_start_s",
    "t_end_s",
    "duration_s",
    "power_w",
    "core_w",
    "dram_w",
    "busy_s",
    "idle_s",
    "l1d_miss_rate",
    "l2_miss_rate",
    "l3_miss_rate",
    "pf_l2_lines",
    "pf_l3_lines",
    "pf_hit_rate",
    "pstate_switches",
    "residency_s",
    "queue_depth_last",
    "queue_depth_max",
    "admitted",
    "completed",
    "failed",
    "deadline_exceeded",
    "rejected",
    "shed",
    "active_j",
    "useful_j",
    "wasted_j",
    "wasted_by_reason_j",
)

#: CSV carries only flat scalars: the two dict-valued fields are
#: replaced by ``pstate_mode`` (the window's dominant P-state).  Full
#: residency and per-reason waste need the JSONL form.
TIMELINE_CSV_FIELDS = tuple(
    field for field in TIMELINE_FIELDS
    if field not in ("residency_s", "wasted_by_reason_j")
) + ("pstate_mode",)

#: Request terminal states folded into the ``rejected`` / ``shed``
#: columns (string literals to keep this module import-light: the
#: machine imports ``repro.obs`` at module scope, and the serve layer
#: imports the machine).
_REJECTED_STATES = ("rejected_queue", "rejected_quota")
_SHED_STATES = ("shed_timeout", "shed_degraded")

#: Cumulative-counter keys tracked per chunk.
_SCALARS = (
    "core_j", "package_j", "dram_j", "busy_s", "idle_s",
    "l1d_hits", "l1d_misses", "l2_hits", "l2_misses",
    "l3_hits", "l3_misses", "pf_l2", "pf_l3",
)


def _new_window() -> dict:
    return {
        "scalars": dict.fromkeys(_SCALARS, 0.0),
        "residency": {},
        "pstate_switches": 0,
        "queue_depth_last": 0,
        "queue_depth_max": 0,
        "events": {},
        "wasted_j": 0.0,
        "wasted_by_reason": {},
    }


class TimelineRecorder:
    """Window accumulator installed as ``machine.timeline``.

    Use as a context manager around the measured region::

        with TimelineRecorder(machine, window_s=0.01, background=bg) as tl:
            server.run()
        write_timeline(tl.rows(), "timeline.jsonl", tl.window_s)
    """

    def __init__(self, machine: "Machine", window_s: float = 0.01,
                 background=None):
        if window_s <= 0:
            raise ConfigError(
                f"timeline window_s must be positive, got {window_s}"
            )
        self.machine = machine
        self.window_s = window_s
        self.background = background
        self._bg_package_w = (background.package_w
                              if background is not None else 0.0)
        self._windows: dict[int, dict] = {}
        self._rows: Optional[list] = None
        self._t0 = 0.0
        self._last_t = 0.0
        self._last: Optional[tuple] = None

    # ------------------------------------------------------------ sampling

    def _cumulatives(self) -> tuple:
        machine = self.machine
        hierarchy = machine.hierarchy
        prefetcher = machine.prefetcher
        values = {
            "core_j": machine.rapl.energy_core(),
            "package_j": machine.rapl.energy_package(),
            "dram_j": machine.rapl.energy_dram(),
            "busy_s": machine.busy_s,
            "idle_s": machine.idle_s,
            "l1d_hits": float(hierarchy.l1d.hits),
            "l1d_misses": float(hierarchy.l1d.misses),
            "l2_hits": 0.0,
            "l2_misses": 0.0,
            "l3_hits": 0.0,
            "l3_misses": 0.0,
            "pf_l2": float(prefetcher.n_pf_l2_issued),
            "pf_l3": float(prefetcher.n_pf_l3_issued),
        }
        if hierarchy.l2 is not None:
            values["l2_hits"] = float(hierarchy.l2.hits)
            values["l2_misses"] = float(hierarchy.l2.misses)
        if hierarchy.l3 is not None:
            values["l3_hits"] = float(hierarchy.l3.hits)
            values["l3_misses"] = float(hierarchy.l3.misses)
        return values, self.machine.residency.snapshot()

    def _window(self, index: int) -> dict:
        window = self._windows.get(index)
        if window is None:
            window = self._windows[index] = _new_window()
        return window

    def _chunks(self, t_a: float, t_b: float):
        """Yield ``(window_index, fraction)`` covering ``[t_a, t_b)``."""
        total = t_b - t_a
        if total <= 0:
            yield max(0, int((t_a - self._t0) / self.window_s)), 1.0
            return
        t = t_a
        while t < t_b:
            index = max(0, int((t - self._t0) / self.window_s))
            edge = self._t0 + (index + 1) * self.window_s
            chunk_end = min(t_b, edge)
            if chunk_end <= t:
                # Float-precision backstop: dump the remainder here
                # rather than looping on a degenerate boundary.
                yield index, (t_b - t) / total
                return
            yield index, (chunk_end - t) / total
            t = chunk_end

    def on_advance(self) -> None:
        """Machine hook: simulated time moved; bank the chunk."""
        now = self.machine.time_s
        if now <= self._last_t:
            return
        current, current_res = self._cumulatives()
        last, last_res = self._last
        delta = {key: current[key] - last[key] for key in _SCALARS}
        delta_res = {
            pstate: seconds - last_res.get(pstate, 0.0)
            for pstate, seconds in current_res.items()
            if seconds != last_res.get(pstate, 0.0)
        }
        for index, fraction in self._chunks(self._last_t, now):
            window = self._window(index)
            scalars = window["scalars"]
            for key, value in delta.items():
                scalars[key] += value * fraction
            residency = window["residency"]
            for pstate, seconds in delta_res.items():
                residency[pstate] = (residency.get(pstate, 0.0)
                                     + seconds * fraction)
        self._last = (current, current_res)
        self._last_t = now

    # ------------------------------------------------------------ events

    def _event_window(self) -> dict:
        return self._window(
            max(0, int((self.machine.time_s - self._t0) / self.window_s))
        )

    def note_pstate_switch(self) -> None:
        self._event_window()["pstate_switches"] += 1

    def count(self, key: str) -> None:
        """Count one serve event (admission outcome or terminal state)
        in the current window."""
        events = self._event_window()["events"]
        events[key] = events.get(key, 0) + 1

    def sample_queue_depth(self, depth: int) -> None:
        window = self._event_window()
        window["queue_depth_last"] = depth
        if depth > window["queue_depth_max"]:
            window["queue_depth_max"] = depth

    def add_wasted(self, t_a: float, t_b: float, reason: str,
                   package_j: float) -> None:
        """Telemetry feed: ``package_j`` raw joules of wasted-tagged work
        over ``[t_a, t_b)``.  Background-subtracted here so the window
        split matches the report's Active-energy semantics."""
        active = package_j - self._bg_package_w * max(0.0, t_b - t_a)
        for index, fraction in self._chunks(t_a, t_b):
            window = self._window(index)
            window["wasted_j"] += active * fraction
            by_reason = window["wasted_by_reason"]
            by_reason[reason] = by_reason.get(reason, 0.0) + active * fraction

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        machine = self.machine
        machine.settle()
        self._t0 = machine.time_s
        self._last_t = machine.time_s
        self._last = self._cumulatives()
        machine.timeline = self

    def __enter__(self) -> "TimelineRecorder":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        if exc[0] is None:
            self.finish()
        else:
            self.machine.timeline = None
        return False

    def finish(self) -> list:
        """Detach from the machine and build the rows (idempotent)."""
        if self._rows is None:
            self.machine.settle()
            self.on_advance()
            self.machine.timeline = None
            self._rows = self._build_rows()
        return self._rows

    def rows(self) -> list:
        return self.finish()

    # ------------------------------------------------------------ rows

    def _build_rows(self) -> list:
        end = self._last_t
        n_windows = max(self._windows.keys(), default=-1) + 1
        if end > self._t0:
            covered = int(math.ceil((end - self._t0) / self.window_s))
            n_windows = max(n_windows, covered)
        rows = []
        for index in range(n_windows):
            window = self._windows.get(index) or _new_window()
            scalars = window["scalars"]
            t_start = self._t0 + index * self.window_s
            t_end = min(self._t0 + (index + 1) * self.window_s, end)
            duration = max(0.0, t_end - t_start)
            events = window["events"]
            covered_s = scalars["busy_s"] + scalars["idle_s"]
            active_j = (scalars["package_j"]
                        - self._bg_package_w * covered_s)
            wasted_j = window["wasted_j"]
            rows.append({
                "window": index,
                "t_start_s": t_start,
                "t_end_s": t_end,
                "duration_s": duration,
                "power_w": (scalars["package_j"] / duration
                            if duration > 0 else 0.0),
                "core_w": (scalars["core_j"] / duration
                           if duration > 0 else 0.0),
                "dram_w": (scalars["dram_j"] / duration
                           if duration > 0 else 0.0),
                "busy_s": scalars["busy_s"],
                "idle_s": scalars["idle_s"],
                "l1d_miss_rate": _rate(scalars["l1d_misses"],
                                       scalars["l1d_hits"]),
                "l2_miss_rate": _rate(scalars["l2_misses"],
                                      scalars["l2_hits"]),
                "l3_miss_rate": _rate(scalars["l3_misses"],
                                      scalars["l3_hits"]),
                "pf_l2_lines": scalars["pf_l2"],
                "pf_l3_lines": scalars["pf_l3"],
                # Demand hit rate at the prefetch-fed levels (L2+L3).
                # Per-line prefetch provenance is not tracked (doing so
                # would perturb the batch-equivalence contract), so this
                # is the observable proxy: when the prefetcher works,
                # demand accesses at the levels it fills start hitting.
                "pf_hit_rate": _rate(
                    scalars["l2_hits"] + scalars["l3_hits"],
                    scalars["l2_misses"] + scalars["l3_misses"],
                ),
                "pstate_switches": window["pstate_switches"],
                "residency_s": {
                    f"P{pstate}": seconds
                    for pstate, seconds in sorted(window["residency"].items())
                },
                "queue_depth_last": window["queue_depth_last"],
                "queue_depth_max": window["queue_depth_max"],
                "admitted": events.get("admitted", 0),
                "completed": events.get("completed", 0),
                "failed": events.get("failed", 0),
                "deadline_exceeded": events.get("deadline_exceeded", 0),
                "rejected": sum(events.get(s, 0) for s in _REJECTED_STATES),
                "shed": sum(events.get(s, 0) for s in _SHED_STATES),
                "active_j": active_j,
                "useful_j": active_j - wasted_j,
                "wasted_j": wasted_j,
                "wasted_by_reason_j": dict(
                    sorted(window["wasted_by_reason"].items())
                ),
            })
        return rows


def _rate(part: float, complement: float) -> Optional[float]:
    total = part + complement
    return part / total if total > 0 else None


# ------------------------------------------------------------ writers


def timeline_to_jsonl(rows: list, window_s: float) -> str:
    """Header record plus one record per window, one JSON doc per line."""
    header = {
        "record": "timeline",
        "schema_version": TIMELINE_SCHEMA_VERSION,
        "window_s": window_s,
        "n_windows": len(rows),
        "fields": list(TIMELINE_FIELDS),
    }
    lines = [json.dumps(header, sort_keys=True)]
    for row in rows:
        doc = {"record": "window"}
        doc.update(row)
        lines.append(json.dumps(doc, sort_keys=True))
    return "\n".join(lines) + "\n"


def _pstate_mode(row: dict) -> Optional[int]:
    residency = row["residency_s"]
    if not residency:
        return None
    label = max(sorted(residency), key=lambda k: residency[k])
    return int(label[1:])


def timeline_to_csv(rows: list) -> str:
    """Flat-scalar CSV form (see :data:`TIMELINE_CSV_FIELDS`)."""
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(TIMELINE_CSV_FIELDS)
    for row in rows:
        record = []
        for field in TIMELINE_CSV_FIELDS:
            if field == "pstate_mode":
                value = _pstate_mode(row)
            else:
                value = row[field]
            record.append("" if value is None else value)
        writer.writerow(record)
    return buffer.getvalue()


def write_timeline(rows: list, path, window_s: float) -> None:
    """Write a finished timeline; ``.csv`` selects CSV, anything else
    the JSONL form (the schema contract's native shape)."""
    text = (timeline_to_csv(rows) if str(path).endswith(".csv")
            else timeline_to_jsonl(rows, window_s))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
