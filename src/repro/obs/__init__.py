"""Observability: span tracing, metrics, and trace export.

The layer the paper's methodology was missing an engine-side half for:
§2 prices micro-ops and §3 breaks a *whole workload* down, but nothing
says which operator in a plan burned the L1D energy.  This package
attributes measured energy to plan nodes:

* :class:`Tracer` / :class:`NullTracer` — span tracer that partitions
  PMU counters, RAPL joules, and the clock across a span tree
  (``NullTracer`` is the no-op default wired into every machine);
* :class:`Span` / :class:`Trace` — the finished tree plus pricing;
* :class:`MetricsRegistry` — labelled counters/gauges/histograms fed by
  machine-level collectors (cache hit rates, pool residency, governor
  transitions);
* :mod:`repro.obs.export` / :mod:`repro.obs.flamegraph` — JSONL span
  logs, Chrome ``trace_event`` JSON (openable in Perfetto), and energy
  flamegraph SVGs.

Import discipline: :mod:`repro.sim.machine` imports this package, so
modules here must not import anything that imports the machine at
module scope (pricing helpers import lazily).
"""

from repro.obs.export import (
    trace_to_chrome,
    trace_to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_series_name,
)
from repro.obs.sampler import (
    NullTelemetry,
    SamplingAggregator,
    TelemetrySummary,
)
from repro.obs.span import Span, Trace
from repro.obs.timeline import (
    TIMELINE_FIELDS,
    TIMELINE_SCHEMA_VERSION,
    TimelineRecorder,
    timeline_to_csv,
    timeline_to_jsonl,
    write_timeline,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "trace_to_chrome",
    "trace_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_series_name",
    "Span",
    "Trace",
    "NULL_TRACER",
    "NullTracer",
    "NullTelemetry",
    "SamplingAggregator",
    "TelemetrySummary",
    "TIMELINE_FIELDS",
    "TIMELINE_SCHEMA_VERSION",
    "TimelineRecorder",
    "Tracer",
    "timeline_to_csv",
    "timeline_to_jsonl",
    "write_timeline",
]


def energy_flamegraph_svg(trace, title: str = "Energy flamegraph") -> str:
    """Lazy re-export of :func:`repro.obs.flamegraph.energy_flamegraph_svg`
    (the flamegraph module touches the analysis layer at call time)."""
    from repro.obs.flamegraph import energy_flamegraph_svg as render

    return render(trace, title)


def write_flamegraph(trace, path, title: str = "Energy flamegraph"):
    """Lazy re-export of :func:`repro.obs.flamegraph.write_flamegraph`."""
    from repro.obs.flamegraph import write_flamegraph as write

    return write(trace, path, title)
