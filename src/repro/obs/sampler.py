"""Sampling aggregator: always-on telemetry that survives serve scale.

The PR 1 span tracer materialises one :class:`~repro.obs.span.Span` per
traced region.  That is the right tool for a single query, but a serve
run at production scale opens millions of quantum spans — the tree alone
would dwarf the simulated heap.  This module provides the always-on
alternative: :class:`SamplingAggregator` implements the same tracer duck
type (``enabled`` / ``span`` / ``open`` / ``enter`` / ``exit`` /
``wrap_rows``) but folds every settle-partitioned delta into **exact
streaming aggregates** instead of keeping spans:

* per **group** ``(phase, operator)`` — where the phase is the span
  category (``serve.quantum``, ``operator``, ``io``, ``fault``, ...) and
  the operator is the span's op/job name — energy, time, PMU counters
  (which carry the per-cache-level access/hit splits), and streaming
  histograms of per-span time and energy;
* per **meta tuple** ``(tenant, request, attempt, wasted)`` — the exact
  partition the serve report's tenant attribution and useful/wasted
  energy split are built on.

Aggregation is *exact*: every joule and every counter increment lands in
exactly one group (the one open when the work happened), so the PR 4
conservation invariant — ``useful_energy_j + wasted_energy_j ==
active_energy_j`` — holds to the joule at **any** exemplar sampling
rate.  Sampling applies only to *exemplars*: a seeded reservoir keeps a
bounded set of representative closed spans for debugging; admitting or
dropping an exemplar never touches the aggregates.

:class:`NullTelemetry` is the third mode (telemetry off): it records
nothing per span (``enabled`` is False, so instrumentation sites skip
their spans entirely) and prices only the whole window at finish, which
is what the obs-overhead CI job benchmarks the sampler against.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigError, TraceError
from repro.obs.metrics import Histogram
from repro.obs.span import domain_energy_j
from repro.seeding import seeded_rng
from repro.sim.pmu import PmuCounters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.machine import Machine

#: Span-meta keys a frame inherits from its parent (the same downward
#: inheritance :meth:`repro.obs.span.Trace.active_energy_by_metas` uses).
META_KEYS = ("tenant", "request", "attempt", "wasted")

#: Cache levels reported in per-group summaries.
CACHE_LEVELS = ("L1D", "L2", "L3", "mem")


class _Frame:
    """One open region: group identity, inherited meta, self totals."""

    __slots__ = ("name", "category", "group", "meta", "first_ts",
                 "time_s", "core_j", "package_j", "dram_j", "enters")

    def __init__(self, name: str, category: str, group: tuple,
                 meta: tuple):
        self.name = name
        self.category = category
        self.group = group
        self.meta = meta
        self.first_ts: Optional[float] = None
        self.time_s = 0.0
        self.core_j = 0.0
        self.package_j = 0.0
        self.dram_j = 0.0
        self.enters = 0


class GroupAggregate:
    """Exact streaming totals for one ``(phase, operator)`` group."""

    __slots__ = ("spans", "enters", "time_s", "busy_s", "idle_s",
                 "core_j", "package_j", "dram_j", "counters",
                 "time_hist", "energy_hist")

    def __init__(self) -> None:
        self.spans = 0
        self.enters = 0
        self.time_s = 0.0
        self.busy_s = 0.0
        self.idle_s = 0.0
        self.core_j = 0.0
        self.package_j = 0.0
        self.dram_j = 0.0
        self.counters = PmuCounters()
        #: Per-closed-span self wall-clock seconds.
        self.time_hist = Histogram("span_time_s", {})
        #: Per-closed-span self package joules.
        self.energy_hist = Histogram("span_package_j", {})

    def cache_levels(self) -> dict:
        """Per-cache-level access/hit counts of this group's work."""
        c = self.counters
        return {
            "L1D": {"accesses": c.n_l1d, "hits": c.l1d_hits},
            "L2": {"accesses": c.n_l2, "hits": c.l2_hits},
            "L3": {"accesses": c.n_l3, "hits": c.l3_hits},
            "mem": {"accesses": c.n_mem, "hits": 0},
        }

    def microops(self) -> dict:
        """Instruction counts per micro-op class of this group's work."""
        c = self.counters
        return {
            "load": c.n_load_inst,
            "store": c.n_store_inst,
            "add": c.n_add,
            "nop": c.n_nop,
            "mul": c.n_mul,
            "cmp": c.n_cmp,
            "branch": c.n_branch,
            "other": c.n_other,
        }


class Exemplar:
    """A reservoir-sampled closed span (aggregates never depend on it)."""

    __slots__ = ("name", "category", "group", "meta", "first_ts", "last_ts",
                 "time_s", "package_j", "enters")

    def __init__(self, frame: _Frame, last_ts: float):
        self.name = frame.name
        self.category = frame.category
        self.group = frame.group
        self.meta = frame.meta
        self.first_ts = frame.first_ts
        self.last_ts = last_ts
        self.time_s = frame.time_s
        self.package_j = frame.package_j
        self.enters = frame.enters

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "operator": self.group[1],
            "meta": {k: v for k, v in zip(META_KEYS, self.meta)
                     if v is not None},
            "first_ts_s": self.first_ts,
            "last_ts_s": self.last_ts,
            "self_time_s": self.time_s,
            "self_package_j": self.package_j,
            "enters": self.enters,
        }


class TelemetrySummary:
    """The finished output of a sampling run.

    Quacks like :class:`~repro.obs.span.Trace` for everything the serve
    report needs — ``domain``, ``total_active_j``,
    ``active_energy_by_meta``, ``active_energy_by_metas`` — but is built
    from the exact streaming aggregates, not a span tree.
    """

    def __init__(self, domain: str, background, groups: dict,
                 meta_energy: dict, exemplars: list,
                 exemplar_rate: float, exemplars_offered: int):
        self.domain = domain
        self.background = background
        #: ``{(phase, operator): GroupAggregate}``
        self.groups = groups
        #: ``{(tenant, request, attempt, wasted):
        #:    [core_j, package_j, dram_j, time_s]}``
        self.meta_energy = meta_energy
        self.exemplars = exemplars
        self.exemplar_rate = exemplar_rate
        self.exemplars_offered = exemplars_offered

    # ------------------------------------------------------------ energy

    def _background_w(self) -> float:
        if self.background is None:
            return 0.0
        return self.background.rate(self.domain)

    def _active(self, entry: list) -> float:
        core_j, package_j, dram_j, time_s = entry
        return (domain_energy_j(core_j, package_j, dram_j, self.domain)
                - self._background_w() * time_s)

    @property
    def total_active_j(self) -> float:
        """Measured Active energy of the whole window (exact sum of the
        meta-partition — the same partition the split reports)."""
        return sum(self._active(entry)
                   for _, entry in sorted(self.meta_energy.items(),
                                          key=lambda kv: _order(kv[0])))

    def active_energy_by_meta(self, key: str) -> dict:
        """Partition Active energy by one inherited meta key."""
        index = META_KEYS.index(key)
        groups: dict = {}
        for meta, entry in sorted(self.meta_energy.items(),
                                  key=lambda kv: _order(kv[0])):
            owner = meta[index]
            groups[owner] = groups.get(owner, 0.0) + self._active(entry)
        return groups

    def active_energy_by_metas(self, keys: tuple) -> dict:
        """Partition Active energy by a tuple of inherited meta keys
        (exactly :meth:`repro.obs.span.Trace.active_energy_by_metas`)."""
        indices = [META_KEYS.index(key) for key in keys]
        groups: dict = {}
        for meta, entry in sorted(self.meta_energy.items(),
                                  key=lambda kv: _order(kv[0])):
            owner = tuple(meta[i] for i in indices)
            groups[owner] = groups.get(owner, 0.0) + self._active(entry)
        return groups

    def request_energy_j(self) -> dict:
        """Active joules per request id (attempts and tags summed)."""
        per_request: dict = {}
        for meta, entry in sorted(self.meta_energy.items(),
                                  key=lambda kv: _order(kv[0])):
            request = meta[META_KEYS.index("request")]
            if request is None:
                continue
            per_request[request] = (per_request.get(request, 0.0)
                                    + self._active(entry))
        return per_request

    # ------------------------------------------------------------ views

    def group_table(self) -> dict:
        """JSON-ready per-group aggregate table, sorted by energy."""
        rows = {}
        for (phase, operator), agg in self.groups.items():
            active = (domain_energy_j(agg.core_j, agg.package_j,
                                      agg.dram_j, self.domain)
                      - self._background_w() * agg.time_s)
            rows[f"{phase}:{operator}"] = {
                "phase": phase,
                "operator": operator,
                "spans": agg.spans,
                "enters": agg.enters,
                "time_s": agg.time_s,
                "busy_s": agg.busy_s,
                "idle_s": agg.idle_s,
                "active_j": active,
                "span_time_s": _hist_summary(agg.time_hist),
                "span_package_j": _hist_summary(agg.energy_hist),
                "cache_levels": agg.cache_levels(),
                "microops": agg.microops(),
            }
        return dict(sorted(rows.items(),
                           key=lambda kv: -kv[1]["active_j"]))

    def render_table(self, top: int = 20) -> str:
        """Human-readable ranked group table."""
        lines = [
            f"sampled telemetry: domain={self.domain}  "
            f"active={self.total_active_j:.4e} J  "
            f"groups={len(self.groups)}  "
            f"exemplars={len(self.exemplars)}/{self.exemplars_offered} "
            f"(rate {self.exemplar_rate:g})"
        ]
        for name, row in list(self.group_table().items())[:top]:
            lines.append(
                f"  {name:<40} {row['active_j']:.3e} J  "
                f"{row['time_s']:.3e} s  spans={row['spans']}"
            )
        return "\n".join(lines)


def _order(meta: tuple) -> tuple:
    """Deterministic sort key over heterogeneous meta tuples."""
    return tuple((v is None, str(v)) for v in meta)


def _hist_summary(hist: Histogram) -> dict:
    return {
        "count": hist.count,
        "mean": hist.mean,
        "p50": _nan_none(hist.quantile(0.50)),
        "p95": _nan_none(hist.quantile(0.95)),
        "p99": _nan_none(hist.quantile(0.99)),
    }


def _nan_none(value: float):
    return None if isinstance(value, float) and math.isnan(value) else value


class SamplingAggregator:
    """Settle-partitioned streaming aggregator bound to one machine.

    Same context-manager lifecycle as :class:`~repro.obs.tracer.Tracer`::

        sampler = SamplingAggregator(machine, background=bg, seed=seed)
        with sampler:
            server.run()
        summary = sampler.summary

    ``trace_operators`` controls :meth:`wrap_rows`: when False (the
    serve default) operator pulls pass straight through and operator
    work is credited to the enclosing quantum's group — the per-row
    settle that makes full tracing unaffordable at scale never happens.
    When True (the ``repro trace --telemetry sampler`` mode) operators
    are re-entered per row exactly like the full tracer, so the group
    table shows per-operator energy.
    """

    enabled = True

    def __init__(self, machine: "Machine", background=None, seed: int = 0,
                 exemplar_rate: float = 0.1, reservoir_size: int = 64,
                 trace_operators: bool = False, timeline=None,
                 name: str = "sampled"):
        if not 0.0 <= exemplar_rate <= 1.0:
            raise ConfigError(
                f"exemplar_rate must be in [0, 1], got {exemplar_rate}"
            )
        if reservoir_size < 1:
            raise ConfigError(
                f"reservoir_size must be >= 1, got {reservoir_size}"
            )
        self.machine = machine
        self.background = background
        self.exemplar_rate = exemplar_rate
        self.reservoir_size = reservoir_size
        self.trace_operators = trace_operators
        self.timeline = timeline
        self._rng = seeded_rng(seed, "obs.sampler")
        root = _Frame(name, "trace", ("trace", name), (None,) * len(META_KEYS))
        self._stack: list[_Frame] = [root]
        self.groups: dict[tuple, GroupAggregate] = {}
        self.meta_energy: dict[tuple, list] = {}
        self.exemplars: list[Exemplar] = []
        self.exemplars_offered = 0
        self._finished: Optional[TelemetrySummary] = None
        self._prev_tracer = None
        self._baseline()

    # ------------------------------------------------------------ accounting

    def _baseline(self) -> None:
        machine = self.machine
        machine.settle()
        self._last_counters = machine._settled
        rapl = machine.rapl
        self._last_core = rapl.energy_core()
        self._last_package = rapl.energy_package()
        self._last_dram = rapl.energy_dram()
        self._last_time = machine.time_s
        self._last_busy = machine.busy_s
        self._last_idle = machine.idle_s
        self._stack[0].first_ts = machine.time_s

    def _credit_top(self) -> None:
        """Fold everything since the last transition into the open
        frame's group and meta aggregates (the exact-partition step)."""
        machine = self.machine
        machine.settle()
        frame = self._stack[-1]
        settled = machine._settled
        delta = settled.minus(self._last_counters)
        self._last_counters = settled
        rapl = machine.rapl
        core = rapl.energy_core()
        package = rapl.energy_package()
        dram = rapl.energy_dram()
        d_core = core - self._last_core
        d_package = package - self._last_package
        d_dram = dram - self._last_dram
        self._last_core, self._last_package, self._last_dram = (
            core, package, dram
        )
        now = machine.time_s
        d_time = now - self._last_time
        d_busy = machine.busy_s - self._last_busy
        d_idle = machine.idle_s - self._last_idle
        self._last_time = now
        self._last_busy = machine.busy_s
        self._last_idle = machine.idle_s

        frame.time_s += d_time
        frame.core_j += d_core
        frame.package_j += d_package
        frame.dram_j += d_dram

        agg = self.groups.get(frame.group)
        if agg is None:
            agg = self.groups[frame.group] = GroupAggregate()
        agg.time_s += d_time
        agg.busy_s += d_busy
        agg.idle_s += d_idle
        agg.core_j += d_core
        agg.package_j += d_package
        agg.dram_j += d_dram
        agg.counters.accumulate(delta)

        entry = self.meta_energy.get(frame.meta)
        if entry is None:
            entry = self.meta_energy[frame.meta] = [0.0, 0.0, 0.0, 0.0]
        entry[0] += d_core
        entry[1] += d_package
        entry[2] += d_dram
        entry[3] += d_time

        timeline = self.timeline
        if timeline is not None and d_time > 0.0:
            wasted = frame.meta[META_KEYS.index("wasted")]
            if wasted is not None:
                timeline.add_wasted(now - d_time, now, wasted, d_package)

    # ------------------------------------------------------------ span API

    def _make_frame(self, name: str, category: str, meta: dict) -> _Frame:
        parent = self._stack[-1]
        inherited = tuple(
            meta.get(key, parent.meta[i])
            for i, key in enumerate(META_KEYS)
        )
        operator = meta.get("op") or meta.get("job") or name
        return _Frame(name, category, (category, operator), inherited)

    def open(self, name: str, category: str = "span", **meta) -> _Frame:
        return self._make_frame(name, category, meta)

    def enter(self, frame: _Frame) -> None:
        self._credit_top()
        self._stack.append(frame)
        frame.enters += 1
        if frame.first_ts is None:
            frame.first_ts = self.machine.time_s
        agg = self.groups.get(frame.group)
        if agg is None:
            agg = self.groups[frame.group] = GroupAggregate()
        agg.enters += 1

    def exit(self, frame: _Frame) -> None:
        self._credit_top()
        if self._stack[-1] is not frame:
            raise TraceError(
                f"span exit mismatch: open={self._stack[-1].name!r}, "
                f"exiting={frame.name!r}"
            )
        self._stack.pop()

    def _close(self, frame: _Frame) -> None:
        """A span will not be re-entered: observe its self totals into
        the group histograms and offer it to the exemplar reservoir."""
        agg = self.groups.get(frame.group)
        if agg is None:
            agg = self.groups[frame.group] = GroupAggregate()
        agg.spans += 1
        agg.time_hist.observe(frame.time_s)
        agg.energy_hist.observe(frame.package_j)
        # Reservoir admission: one RNG draw per closed span regardless
        # of outcome, so the stream of draws (and therefore which spans
        # become exemplars) is a pure function of the seed and the
        # workload — never of the reservoir's current contents.
        admit = self._rng.random() < self.exemplar_rate
        slot = self._rng.randrange(max(1, self.exemplars_offered + 1))
        if admit:
            self.exemplars_offered += 1
            exemplar = Exemplar(frame, self.machine.time_s)
            if len(self.exemplars) < self.reservoir_size:
                self.exemplars.append(exemplar)
            elif slot < self.reservoir_size:
                self.exemplars[slot] = exemplar

    @contextmanager
    def span(self, name: str, category: str = "span", **meta):
        frame = self._make_frame(name, category, meta)
        self.enter(frame)
        try:
            yield frame
        finally:
            self.exit(frame)
            self._close(frame)

    def wrap_rows(self, op, ctx):
        """Operator tracing (see class docstring): pass-through unless
        ``trace_operators`` asked for per-row attribution."""
        if not self.trace_operators:
            return op.rows(ctx)
        return self._wrap_rows(op, ctx)

    def _wrap_rows(self, op, ctx):
        frame = self._make_frame(
            op.describe(), "operator", {"op": type(op).__name__}
        )
        iterator = op.rows(ctx)
        try:
            while True:
                self.enter(frame)
                try:
                    row = next(iterator)
                except StopIteration:
                    self.exit(frame)
                    return
                except BaseException:
                    self.exit(frame)
                    raise
                self.exit(frame)
                yield row
        finally:
            self._close(frame)

    # ------------------------------------------------------------ lifecycle

    def __enter__(self) -> "SamplingAggregator":
        self._prev_tracer = self.machine.tracer
        self.machine.tracer = self
        self._baseline()
        return self

    def __exit__(self, *exc) -> bool:
        self.machine.tracer = self._prev_tracer
        if exc[0] is None:
            self.finish()
        return False

    def finish(self) -> TelemetrySummary:
        """Close the run and return the summary (idempotent)."""
        if self._finished is None:
            self._credit_top()
            if len(self._stack) != 1:
                open_names = [f.name for f in self._stack[1:]]
                raise TraceError(f"unclosed spans at finish: {open_names}")
            self._close(self._stack[0])
            from repro.micro.measurement import select_domain

            total = PmuCounters()
            for agg in self.groups.values():
                total.accumulate(agg.counters)
            domain = select_domain(total)
            self._finished = TelemetrySummary(
                domain, self.background, self.groups, self.meta_energy,
                self.exemplars, self.exemplar_rate, self.exemplars_offered,
            )
        return self._finished

    @property
    def summary(self) -> TelemetrySummary:
        return self.finish()


class NullTelemetry:
    """Telemetry ``off``: whole-window totals only, zero per-span cost.

    ``enabled`` is False, so every instrumentation site skips its span
    work entirely — this is the baseline the obs-overhead CI job holds
    the sampler to.  The summary still answers the report's questions,
    crediting everything to the untagged system bucket.
    """

    enabled = False

    def __init__(self, machine: "Machine", background=None):
        self.machine = machine
        self.background = background
        self._finished: Optional[TelemetrySummary] = None
        self._prev_tracer = None
        self._baseline()

    def _baseline(self) -> None:
        machine = self.machine
        machine.settle()
        self._start_counters = machine.pmu.snapshot()
        rapl = machine.rapl
        self._last_core = rapl.energy_core()
        self._last_package = rapl.energy_package()
        self._last_dram = rapl.energy_dram()
        self._last_time = machine.time_s

    # Tracer duck type: all no-ops (sites check ``enabled`` or use the
    # shared null span, exactly as with NullTracer).
    def span(self, name: str, category: str = "span", **meta):
        from repro.obs.tracer import _NULL_SPAN

        return _NULL_SPAN

    def open(self, name: str, category: str = "span", **meta) -> None:
        return None

    def enter(self, frame) -> None:
        return None

    def exit(self, frame) -> None:
        return None

    def wrap_rows(self, op, ctx):
        return op.rows(ctx)

    def __enter__(self) -> "NullTelemetry":
        self._prev_tracer = self.machine.tracer
        self.machine.tracer = self
        self._baseline()
        return self

    def __exit__(self, *exc) -> bool:
        self.machine.tracer = self._prev_tracer
        if exc[0] is None:
            self.finish()
        return False

    def finish(self) -> TelemetrySummary:
        if self._finished is None:
            machine = self.machine
            machine.settle()
            from repro.micro.measurement import select_domain

            delta = machine.pmu.counters.minus(self._start_counters)
            domain = select_domain(delta)
            rapl = machine.rapl
            meta_energy = {
                (None,) * len(META_KEYS): [
                    rapl.energy_core() - self._last_core,
                    rapl.energy_package() - self._last_package,
                    rapl.energy_dram() - self._last_dram,
                    machine.time_s - self._last_time,
                ]
            }
            self._finished = TelemetrySummary(
                domain, self.background, {}, meta_energy, [], 0.0, 0,
            )
        return self._finished

    @property
    def summary(self) -> TelemetrySummary:
        return self.finish()
